#!/usr/bin/env python
"""Write BENCH_launch.json: the repo's performance trajectory baseline.

Run via ``make bench-json``.  Captures, for every registered system:

* ``tree_launches_per_s``  - the seed's engine (tree-walking
  interpreter, no warm-boot snapshots), the historical baseline;
* ``cold_launches_per_s``  - compiled engine, first contact with each
  config (probe/capture boots included);
* ``warm_launches_per_s``  - compiled engine replaying from warm-boot
  snapshots (the steady state of functional-test driving);

plus the cold 7-system campaign wall-clock under both engines, the
speedup, and the run's cache/boot counters.  Future PRs append their
own runs by regenerating the file and comparing against the committed
numbers.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.inject.campaign import Campaign  # noqa: E402
from repro.inject.harness import InjectionHarness  # noqa: E402
from repro.pipeline.cache import PipelineCaches, SnapshotCache  # noqa: E402
from repro.runtime.interpreter import InterpreterOptions  # noqa: E402
from repro.systems.registry import iter_systems  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_launch.json"

TREE_BASELINE = InterpreterOptions(
    max_steps=400_000,
    max_virtual_seconds=120.0,
    engine="tree",
    warm_boot=False,
)
COMPILED = InterpreterOptions(max_steps=400_000, max_virtual_seconds=120.0)

LAUNCH_REPS = 3


def dump_payload(payload: dict) -> str:
    """Canonical serialisation for every BENCH_*.json artifact: sorted
    keys, two-space indent, trailing newline.  Key order never depends
    on insertion order, so two dumps of equal payloads are
    byte-identical and regenerated files diff cleanly."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_payload(path: Path, payload: dict) -> None:
    path.write_text(dump_payload(payload), encoding="utf-8")


def _launch_pass(harness, system) -> int:
    """One startup launch plus every functional test; returns the
    number of launches driven."""
    harness.launch(system.default_config)
    for test in system.tests:
        harness.launch(system.default_config, test.requests)
    return 1 + len(system.tests)


def bench_system_launches(system) -> dict:
    out: dict[str, float] = {}

    # Tree baseline: the seed's per-launch cost.
    harness = InjectionHarness(system, options=TREE_BASELINE)
    started = time.perf_counter()
    launches = sum(_launch_pass(harness, system) for _ in range(LAUNCH_REPS))
    out["tree_launches_per_s"] = launches / (time.perf_counter() - started)

    # Cold: compiled engine meeting each config for the first time -
    # fresh boot records every pass.
    started = time.perf_counter()
    launches = 0
    for _ in range(LAUNCH_REPS):
        launches += _launch_pass(
            InjectionHarness(system, options=COMPILED), system
        )
    out["cold_launches_per_s"] = launches / (time.perf_counter() - started)

    # Warm: one harness keeps its boot records, so repeated passes
    # replay from snapshots (no launch cache - every launch computes).
    harness = InjectionHarness(system, options=COMPILED)
    _launch_pass(harness, system)  # warm the records
    started = time.perf_counter()
    launches = sum(_launch_pass(harness, system) for _ in range(LAUNCH_REPS))
    out["warm_launches_per_s"] = launches / (time.perf_counter() - started)

    out["launches_per_pass"] = 1 + len(system.tests)
    return {key: round(value, 2) for key, value in out.items()}


def bench_campaigns() -> dict:
    caches = PipelineCaches()
    for system in iter_systems(None):
        Campaign(system, inference_cache=caches.inference).run_spex()

    def sweep(harness_options, snapshot_cache):
        duration = 0.0
        misconfigurations = 0
        for system in iter_systems(None):
            campaign = Campaign(
                system,
                inference_cache=caches.inference,
                harness_options=harness_options,
                snapshot_cache=snapshot_cache,
            )
            started = time.perf_counter()
            report = campaign.run()
            duration += time.perf_counter() - started
            misconfigurations += report.misconfigurations_tested
        return duration, misconfigurations

    tree_time, misconfigs = sweep(TREE_BASELINE, None)
    snapshot_cache = SnapshotCache()
    new_time, _ = sweep(None, snapshot_cache)
    return {
        "misconfigurations": misconfigs,
        "tree_wall_time_s": round(tree_time, 3),
        "wall_time_s": round(new_time, 3),
        "tree_throughput_misconfigs_per_s": round(misconfigs / tree_time, 2),
        "throughput_misconfigs_per_s": round(misconfigs / new_time, 2),
        "speedup": round(tree_time / new_time, 2),
        "boot_stats": snapshot_cache.boot_stats.snapshot(),
    }


def main() -> int:
    payload = {
        "generated_unix": int(time.time()),
        "engines": {
            "baseline": "tree-walking interpreter, no warm-boot snapshots",
            "current": "closure-compiled launch plans + warm-boot snapshots",
        },
        "systems": {},
    }
    for system in iter_systems(None):
        payload["systems"][system.name] = bench_system_launches(system)
        print(f"{system.name}: {payload['systems'][system.name]}")
    payload["campaign"] = bench_campaigns()
    print(f"campaign: {payload['campaign']}")
    write_payload(OUTPUT, payload)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
