#!/usr/bin/env python
"""Write BENCH_launch.json: the repo's performance trajectory baseline.

Run via ``make bench-json``.  Captures, for every registered system:

* ``tree_launches_per_s``  - the seed's engine (tree-walking
  interpreter, no warm-boot snapshots), the historical baseline;
* ``engines.<name>.cold_launches_per_s`` - that launch engine meeting
  each config for the first time (probe/capture boots included);
* ``engines.<name>.warm_launches_per_s`` - that engine replaying from
  warm-boot snapshots (the steady state of functional-test driving);

one row per real engine (``compiled``, ``codegen``), plus the cold
8-system campaign wall-clock under tree/compiled/codegen, the
speedups, and the run's cache/boot counters.  Future PRs append their
own runs by regenerating the file and comparing against the committed
numbers.

``make bench-check`` (``--check``) re-measures warm throughput and
compares it against the committed file: any system/engine row more
than ``REGRESSION_TOLERANCE`` below the committed number is reported,
and - opt-in via ``BENCH_GUARD=1``, because absolute numbers are
machine-dependent - fails the run, so perf wins stop silently eroding.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.inject.campaign import Campaign  # noqa: E402
from repro.inject.harness import InjectionHarness  # noqa: E402
from repro.pipeline.cache import PipelineCaches, SnapshotCache  # noqa: E402
from repro.runtime.interpreter import InterpreterOptions  # noqa: E402
from repro.systems.registry import iter_systems  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_launch.json"
CHAOS_OUTPUT = REPO_ROOT / "BENCH_chaos.json"

#: chaos-check: a faulted-and-recovered fleet run may cost this much
#: more wall clock than its fault-free twin before the (advisory,
#: BENCH_GUARD-gated) check reports a regression.
CHAOS_OVERHEAD_LIMIT = 0.15

TREE_BASELINE = InterpreterOptions(
    max_steps=400_000,
    max_virtual_seconds=120.0,
    engine="tree",
    warm_boot=False,
)
COMPILED = InterpreterOptions(max_steps=400_000, max_virtual_seconds=120.0)

#: Launch engines benchmarked per system (tree is the separate
#: historical baseline row).
ENGINES = ("compiled", "codegen")

LAUNCH_REPS = 3

#: bench-check: a warm row may sit this far below the committed number
#: before it counts as a regression (20%).
REGRESSION_TOLERANCE = 0.20


def dump_payload(payload: dict) -> str:
    """Canonical serialisation for every BENCH_*.json artifact: sorted
    keys, two-space indent, trailing newline.  Key order never depends
    on insertion order, so two dumps of equal payloads are
    byte-identical and regenerated files diff cleanly."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_payload(path: Path, payload: dict) -> None:
    path.write_text(dump_payload(payload), encoding="utf-8")


def _launch_pass(harness, system) -> int:
    """One startup launch plus every functional test; returns the
    number of launches driven."""
    harness.launch(system.default_config)
    for test in system.tests:
        harness.launch(system.default_config, test.requests)
    return 1 + len(system.tests)


def _bench_engine(system, engine: str) -> dict:
    out: dict[str, float] = {}

    # Cold: the engine meeting each config for the first time - fresh
    # boot records every pass.
    started = time.perf_counter()
    launches = 0
    for _ in range(LAUNCH_REPS):
        launches += _launch_pass(
            InjectionHarness(system, options=COMPILED, engine=engine),
            system,
        )
    out["cold_launches_per_s"] = launches / (time.perf_counter() - started)

    # Warm: one harness keeps its boot records, so repeated passes
    # replay from snapshots (no launch cache - every launch computes).
    harness = InjectionHarness(system, options=COMPILED, engine=engine)
    _launch_pass(harness, system)  # warm the records
    started = time.perf_counter()
    launches = sum(_launch_pass(harness, system) for _ in range(LAUNCH_REPS))
    out["warm_launches_per_s"] = launches / (time.perf_counter() - started)
    return {key: round(value, 2) for key, value in out.items()}


def bench_system_launches(system) -> dict:
    # Tree baseline: the seed's per-launch cost.
    harness = InjectionHarness(system, options=TREE_BASELINE)
    started = time.perf_counter()
    launches = sum(_launch_pass(harness, system) for _ in range(LAUNCH_REPS))
    tree = launches / (time.perf_counter() - started)

    return {
        "tree_launches_per_s": round(tree, 2),
        "launches_per_pass": 1 + len(system.tests),
        "engines": {
            engine: _bench_engine(system, engine) for engine in ENGINES
        },
    }


def bench_warm_only(system) -> dict:
    """bench-check's fast path: warm rows only, per engine."""
    out = {}
    for engine in ENGINES:
        harness = InjectionHarness(system, options=COMPILED, engine=engine)
        _launch_pass(harness, system)
        _launch_pass(harness, system)  # records warm after two passes
        started = time.perf_counter()
        launches = sum(
            _launch_pass(harness, system) for _ in range(LAUNCH_REPS)
        )
        out[engine] = round(launches / (time.perf_counter() - started), 2)
    return out


def bench_campaigns() -> dict:
    caches = PipelineCaches()
    for system in iter_systems(None):
        Campaign(system, inference_cache=caches.inference).run_spex()

    def sweep(harness_options, snapshot_cache, engine=None):
        duration = 0.0
        misconfigurations = 0
        for system in iter_systems(None):
            campaign = Campaign(
                system,
                inference_cache=caches.inference,
                harness_options=harness_options,
                snapshot_cache=snapshot_cache,
                engine=engine,
            )
            started = time.perf_counter()
            report = campaign.run()
            duration += time.perf_counter() - started
            misconfigurations += report.misconfigurations_tested
        return duration, misconfigurations

    tree_time, misconfigs = sweep(TREE_BASELINE, None)
    snapshot_cache = SnapshotCache()
    new_time, _ = sweep(None, snapshot_cache)
    codegen_cache = SnapshotCache()
    codegen_time, _ = sweep(None, codegen_cache, engine="codegen")
    return {
        "misconfigurations": misconfigs,
        "tree_wall_time_s": round(tree_time, 3),
        "wall_time_s": round(new_time, 3),
        "codegen_wall_time_s": round(codegen_time, 3),
        "tree_throughput_misconfigs_per_s": round(misconfigs / tree_time, 2),
        "throughput_misconfigs_per_s": round(misconfigs / new_time, 2),
        "codegen_throughput_misconfigs_per_s": round(
            misconfigs / codegen_time, 2
        ),
        "speedup": round(tree_time / new_time, 2),
        "codegen_speedup": round(tree_time / codegen_time, 2),
        "boot_stats": snapshot_cache.boot_stats.snapshot(),
    }


# -- chaos: recovery overhead ------------------------------------------------


def _fleet_parity_view(summary: dict) -> dict:
    """A fleet summary with every timing-derived field dropped: what
    must be bit-identical between a fault-free run and a
    faulted-and-recovered one."""
    view = json.loads(json.dumps(summary))
    for key in ("wall_time", "throughput", "cache_stats"):
        view.pop(key, None)
    for system in view.get("systems", []):
        system.pop("duration", None)
        system.pop("checker_from_cache", None)
    return view


def bench_chaos() -> dict:
    """Measure what recovery costs: the same fleet run fault-free and
    under an injected-fault schedule with retries, wall clock and
    report parity compared."""
    from repro.chaos import ChaosSchedule
    from repro.checker.fleet import run_fleet
    from repro.obs import get_registry
    from repro.resilience import RetryPolicy

    systems = ["mysql", "postgresql"]
    size, seed, chunk_size = 384, 3, 32
    caches = PipelineCaches()
    # Warm inference + checker compilation once, outside both timed
    # runs, so the comparison measures validation, not compilation.
    run_fleet(
        systems=systems, size=8, seed=seed, executor="serial",
        chunk_size=chunk_size, caches=caches,
    )

    started = time.perf_counter()
    baseline = run_fleet(
        systems=systems, size=size, seed=seed, executor="serial",
        chunk_size=chunk_size, caches=caches,
    )
    fault_free_s = time.perf_counter() - started

    # seed 3 at 5% fires exactly two first-attempt faults over the 24
    # chunks (deterministic - the schedule is a pure hash), so the run
    # provably exercises recovery while staying under the limit.
    chaos = ChaosSchedule(seed=3, error_rate=0.05, stall_rate=0.05,
                          stall_seconds=0.002)
    policy = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)
    before = get_registry().snapshot()["counters"]
    started = time.perf_counter()
    chaotic = run_fleet(
        systems=systems, size=size, seed=seed, executor="serial",
        chunk_size=chunk_size, caches=caches,
        chaos=chaos, retry_policy=policy,
    )
    chaos_s = time.perf_counter() - started
    after = get_registry().snapshot()["counters"]

    parity = _fleet_parity_view(
        baseline.summary_dict()
    ) == _fleet_parity_view(chaotic.summary_dict())
    overhead = (chaos_s - fault_free_s) / fault_free_s
    return {
        "fleet": {
            "systems": systems,
            "size": size,
            "chunks": (size // chunk_size) * len(systems),
            "fault_free_s": round(fault_free_s, 3),
            "chaos_s": round(chaos_s, 3),
            "overhead_fraction": round(overhead, 4),
            "parity": parity,
            "retries": after.get("resilience.retries", 0)
            - before.get("resilience.retries", 0),
            "failed_shards": len(chaotic.failed_shards),
            "chaos_schedule": {
                "seed": chaos.seed,
                "error_rate": chaos.error_rate,
                "stall_rate": chaos.stall_rate,
                "stall_seconds": chaos.stall_seconds,
            },
        },
        "overhead_limit": CHAOS_OVERHEAD_LIMIT,
    }


def check_chaos() -> int:
    """chaos --check: fresh recovery overhead vs the committed limit.

    Parity failures always fail (determinism is not machine-
    dependent); overhead beyond `CHAOS_OVERHEAD_LIMIT` fails only
    under `BENCH_GUARD=1`, like bench-check."""
    fresh = bench_chaos()["fleet"]
    print(
        f"chaos-check: fault-free {fresh['fault_free_s']}s vs chaotic "
        f"{fresh['chaos_s']}s (+{fresh['overhead_fraction']:.1%}, "
        f"{fresh['retries']} retries, parity={fresh['parity']})"
    )
    if not fresh["parity"]:
        print("chaos-check: FAILED - recovered run diverged from baseline")
        return 1
    if fresh["overhead_fraction"] > CHAOS_OVERHEAD_LIMIT:
        print(
            f"chaos-check: recovery overhead {fresh['overhead_fraction']:.1%}"
            f" exceeds the {CHAOS_OVERHEAD_LIMIT:.0%} limit"
        )
        if os.environ.get("BENCH_GUARD") == "1":
            return 1
        print("(advisory only; set BENCH_GUARD=1 to fail on overhead)")
    else:
        print("chaos-check: recovery overhead within limit")
    return 0


def _committed_warm_rows(row: dict) -> dict[str, float]:
    """Warm throughput per engine from one system's committed row,
    tolerating the pre-engine-matrix schema (flat keys = compiled)."""
    engines = row.get("engines")
    if engines:
        return {
            engine: stats["warm_launches_per_s"]
            for engine, stats in engines.items()
            if "warm_launches_per_s" in stats
        }
    if "warm_launches_per_s" in row:
        return {"compiled": row["warm_launches_per_s"]}
    return {}


def check_regressions() -> int:
    """bench-check: fresh warm throughput vs the committed file.

    Always prints the comparison; only a `BENCH_GUARD=1` environment
    turns regressions beyond `REGRESSION_TOLERANCE` into a non-zero
    exit (the numbers are machine-dependent, so the guard is opt-in).
    """
    if not OUTPUT.exists():
        print(f"no committed {OUTPUT.name}; run `make bench-json` first")
        return 1
    committed = json.loads(OUTPUT.read_text(encoding="utf-8"))
    regressions = []
    for system in iter_systems(None):
        committed_row = committed.get("systems", {}).get(system.name)
        if committed_row is None:
            continue
        fresh = bench_warm_only(system)
        for engine, old_warm in _committed_warm_rows(committed_row).items():
            new_warm = fresh.get(engine)
            if new_warm is None:
                continue
            floor = old_warm * (1.0 - REGRESSION_TOLERANCE)
            verdict = "OK" if new_warm >= floor else "REGRESSED"
            print(
                f"{system.name}/{engine}: warm {old_warm:.1f} -> "
                f"{new_warm:.1f} launches/s [{verdict}]"
            )
            if new_warm < floor:
                regressions.append(
                    f"{system.name}/{engine}: {old_warm:.1f} -> "
                    f"{new_warm:.1f} launches/s "
                    f"(> {REGRESSION_TOLERANCE:.0%} below committed)"
                )
    if not regressions:
        print("bench-check: no warm-throughput regressions")
        return 0
    print(f"bench-check: {len(regressions)} warm-throughput regression(s):")
    for line in regressions:
        print(f"  {line}")
    if os.environ.get("BENCH_GUARD") == "1":
        return 1
    print("(advisory only; set BENCH_GUARD=1 to fail on regressions)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if "--chaos" in args:
        if "--check" in args:
            return check_chaos()
        payload = {
            "generated_unix": int(time.time()),
            "description": (
                "recovery overhead: the same fleet run fault-free vs "
                "under an injected-fault schedule with retries"
            ),
        }
        payload.update(bench_chaos())
        write_payload(CHAOS_OUTPUT, payload)
        print(f"chaos: {payload['fleet']}")
        print(f"wrote {CHAOS_OUTPUT}")
        return 0
    if "--check" in args:
        return check_regressions()
    payload = {
        "generated_unix": int(time.time()),
        "engines": {
            "baseline": "tree-walking interpreter, no warm-boot snapshots",
            "compiled": "closure-compiled launch plans + warm-boot snapshots",
            "codegen": (
                "source-generated Python module + zero-copy snapshot restore"
            ),
        },
        "systems": {},
    }
    for system in iter_systems(None):
        payload["systems"][system.name] = bench_system_launches(system)
        print(f"{system.name}: {payload['systems'][system.name]}")
    payload["campaign"] = bench_campaigns()
    print(f"campaign: {payload['campaign']}")
    write_payload(OUTPUT, payload)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
