#!/usr/bin/env python
"""Dead-code lint for the repo, wired into `make lint` / `make test`.

The authoritative checks are built on `ast` and need no third-party
install (the CI image carries none), targeting the defect classes that
have actually bitten this codebase:

* ``dead-branch`` - an ``if`` whose taken and fallthrough paths both
  ``return`` the *same* expression, making the condition dead.  The
  `stop_at_first_failure` bug in ``repro.inject.harness`` (both sides
  of the ``if`` returned ``verdict``) is the motivating instance.
* ``self-compare`` - ``x == x`` / ``x is x`` comparisons, which are
  tautologies (``!=`` is deliberately exempt: it is the NaN idiom).
* ``assert-tuple`` - ``assert (expr, "msg")``, a non-empty tuple that
  is always truthy.
* ``mutable-default`` - a function parameter whose default is a
  mutable literal or constructor (``[]``, ``{}``, ``set()``,
  ``list()``, ``dict()``): the default is created once and shared by
  every call, the classic accumulating-state bug.  Dataclass
  ``field(default_factory=...)`` is the idiom this codebase uses
  instead and is naturally exempt (it is not a parameter default).
* ``regex-recompile`` - ``re.compile(...)`` inside a loop or inside a
  function/method body, where the same pattern is recompiled on every
  call/iteration.  ``ProcessResult.logs_mention_word`` recompiling its
  word-boundary pattern per call (on the injection hot path) is the
  motivating instance.  Compiles at module scope are the idiom;
  functions decorated with ``functools.lru_cache``/``functools.cache``
  are exempt (compile-once-per-input is the point of the cache).
* ``imperative-system`` - a subject-system module under
  ``src/repro/systems/`` constructing ``SubjectSystem(...)`` directly
  instead of declaring a ``SystemSpec`` and compiling it via
  ``SPEC.build()``.  Imperative builders drift: ground-truth entries,
  decoders, and manual excerpts get appended ad hoc and the spec
  invariants (every truth names a template param, every decoder is
  recognised) go unchecked.  ``base.py`` (defines the class),
  ``spec.py`` (the compiler - the one sanctioned call site) and the
  systems not yet migrated are allowlisted; shrink the allowlist as
  migrations land.
* ``dynamic-exec`` - an ``exec(...)`` or ``eval(...)`` call in library
  code under ``src/repro/``.  Dynamic code execution hides control
  flow from every static check in this file and is an injection
  hazard; the one sanctioned site is the source-codegen launch engine
  (``runtime/codegen.py``), which exists precisely to compile
  generated launch modules.  Grow the allowlist only for another
  engine of that kind.
* ``bare-print`` - a ``print(...)`` call in library code under
  ``src/repro/``.  Library modules have two sanctioned output
  channels: human-facing text flows through the CLI layer
  (``reporting/cli.py``, the one allowlisted module) and telemetry
  flows through ``repro.obs`` counters/histograms/spans.  A stray
  ``print`` in a pillar corrupts piped ``--json`` output and is
  invisible to the metrics snapshot.
* ``wall-clock`` - a ``time.time()`` call in library code under
  ``src/repro/``.  Wall-clock timestamps drift with NTP and break
  deterministic tests; intervals use ``time.perf_counter()`` /
  ``time.monotonic()`` and trace timestamps come from the tracer's
  injected clock (``repro.obs.Tracer(clock=...)``).  The allowlist is
  empty on purpose - grow it only for a module that genuinely needs
  calendar time.
* ``silent-exception`` - a handler in library code under
  ``src/repro/`` that swallows everything: a bare ``except:``, or an
  ``except Exception:``/``except BaseException:`` whose body is only
  ``pass``/``...``.  Swallowed faults are how recovery paths rot
  silently - the resilience layer's whole contract is that failures
  are *observed* (a retry, a quarantine record, a ``resilience.*``
  counter), never discarded.  Narrow handlers (``except OSError:
  pass``) stay legal: naming the type is the author proving they
  know what they are ignoring.  The allowlist is empty on purpose.

When ruff or pyflakes *is* installed, ``--external`` additionally runs
it (ruff restricted to F-codes) for broader coverage; absence of both
is never an error, so the default `make test` path stays hermetic.

Usage::

    python tools/lint.py [--external] [paths...]

Default paths: src tools benchmarks tests examples.  Exit status 1 if
any finding is reported.
"""

from __future__ import annotations

import argparse
import ast
import shutil
import subprocess
import sys
from pathlib import Path

DEFAULT_PATHS = ["src", "tools", "benchmarks", "tests", "examples"]


def iter_python_files(paths: list[str]) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    return out


def _stmt_lists(tree: ast.AST):
    for node in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            stmts = getattr(node, attr, None)
            if isinstance(stmts, list) and stmts and isinstance(
                stmts[0], ast.stmt
            ):
                yield stmts


def _is_lone_return(stmts: list[ast.stmt]) -> ast.Return | None:
    if len(stmts) == 1 and isinstance(stmts[0], ast.Return):
        return stmts[0]
    return None


def _same_node(a: ast.AST | None, b: ast.AST | None) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return ast.dump(a) == ast.dump(b)


def check_tree(path: Path, tree: ast.AST) -> list[tuple[Path, int, str, str]]:
    findings = []

    def report(node: ast.AST, code: str, message: str) -> None:
        findings.append((path, node.lineno, code, message))

    for stmts in _stmt_lists(tree):
        for current, following in zip(stmts, stmts[1:] + [None]):
            if not isinstance(current, ast.If):
                continue
            taken = _is_lone_return(current.body)
            if taken is None:
                continue
            if current.orelse:
                other = _is_lone_return(current.orelse)
            elif isinstance(following, ast.Return):
                other = following
            else:
                other = None
            if other is not None and _same_node(taken.value, other.value):
                report(
                    current,
                    "dead-branch",
                    "both paths of this `if` return the same expression; "
                    "the condition is dead",
                )

    for finding in _find_regex_recompiles(tree):
        findings.append((path, finding[0], "regex-recompile", finding[1]))

    for finding in _find_imperative_system_builds(path, tree):
        findings.append((path, finding[0], "imperative-system", finding[1]))

    for line, code, message in _find_observability_escapes(path, tree):
        findings.append((path, line, code, message))

    for line, message in _find_silent_exceptions(path, tree):
        findings.append((path, line, "silent-exception", message))

    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Eq, ast.Is))
            and _same_node(node.left, node.comparators[0])
            # Calls/attributes may be effectful or non-deterministic;
            # only literal self-comparison of plain names is flagged.
            and isinstance(node.left, (ast.Name, ast.Constant))
        ):
            findings.append(
                (
                    path,
                    node.lineno,
                    "self-compare",
                    "comparison of an expression with itself is always "
                    "the same verdict",
                )
            )
        if isinstance(node, ast.Assert) and isinstance(node.test, ast.Tuple):
            if node.test.elts:
                findings.append(
                    (
                        path,
                        node.lineno,
                        "assert-tuple",
                        "assert on a non-empty tuple is always true "
                        "(parenthesized assert with message?)",
                    )
                )
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for default in [
                *node.args.defaults,
                *(d for d in node.args.kw_defaults if d is not None),
            ]:
                if _is_mutable_default(default):
                    findings.append(
                        (
                            path,
                            default.lineno,
                            "mutable-default",
                            f"default argument of {node.name}() is "
                            "mutable and shared across calls; use None "
                            "and create it inside the function",
                        )
                    )

    return findings


def _is_re_compile(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "compile"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "re"
    )


_CACHE_DECORATORS = {"lru_cache", "cache"}


def _is_cached_function(node: ast.AST) -> bool:
    """Decorated with functools.lru_cache / functools.cache (bare or
    called, bare name or attribute)?"""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Attribute) and target.attr in _CACHE_DECORATORS:
            return True
        if isinstance(target, ast.Name) and target.id in _CACHE_DECORATORS:
            return True
    return False


_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _find_regex_recompiles(tree: ast.AST) -> list[tuple[int, str]]:
    """`re.compile` calls that re-run per call or per iteration.

    A compile is flagged when it sits inside a loop (anywhere) or
    inside a function/method that is not cache-decorated; module-scope
    compiles - including comprehension-built tables at module scope -
    are the idiom and pass.
    """
    findings: list[tuple[int, str]] = []

    def visit(node: ast.AST, in_function: bool, in_loop: bool) -> None:
        if _is_re_compile(node):
            if in_loop:
                findings.append(
                    (
                        node.lineno,
                        "re.compile inside a loop recompiles the "
                        "pattern every iteration; hoist it out (module "
                        "scope or functools.lru_cache)",
                    )
                )
            elif in_function:
                findings.append(
                    (
                        node.lineno,
                        "re.compile inside a function recompiles the "
                        "pattern on every call; hoist it to module "
                        "scope or wrap the function in "
                        "functools.lru_cache",
                    )
                )
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Decorators and parameter defaults run once, at def time,
            # in the *enclosing* scope - visit them under the current
            # context, not as per-call code.
            for deco in node.decorator_list:
                visit(deco, in_function, in_loop)
            for default in [
                *node.args.defaults,
                *(d for d in node.args.kw_defaults if d is not None),
            ]:
                visit(default, in_function, in_loop)
            if _is_cached_function(node):
                return  # compile-once-per-input: that is the cache's job
            for stmt in node.body:
                visit(stmt, True, False)  # new function scope: loop resets
            return
        child_in_loop = in_loop or isinstance(node, _LOOPS)
        for child in ast.iter_child_nodes(node):
            visit(child, in_function, child_in_loop)

    visit(tree, False, False)
    return findings


# Modules under src/repro/systems/ permitted to call SubjectSystem(...)
# directly: the class definition site, the SystemSpec compiler (the one
# sanctioned construction site), and systems not yet migrated to the
# declarative layer.  Shrink this set as migrations land; never grow it
# for a new system - new systems declare a SystemSpec.
IMPERATIVE_SYSTEM_ALLOWLIST = {
    "base.py",
    "spec.py",
    "postgresql.py",
    "storage_a.py",
}


def _is_system_module(path: Path) -> bool:
    parts = path.parts
    return len(parts) >= 3 and parts[-2] == "systems" and parts[-3] == "repro"


def _find_imperative_system_builds(
    path: Path, tree: ast.AST
) -> list[tuple[int, str]]:
    """``SubjectSystem(...)`` calls in non-allowlisted system modules.

    Declarative modules build a ``SystemSpec`` and compile it; a direct
    ``SubjectSystem`` call in a system module bypasses the spec layer's
    validation and is flagged.
    """
    if not _is_system_module(path) or path.name in IMPERATIVE_SYSTEM_ALLOWLIST:
        return []
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == "SubjectSystem":
            findings.append(
                (
                    node.lineno,
                    "system module constructs SubjectSystem imperatively; "
                    "declare a SystemSpec and register SPEC.build() "
                    "instead (see docs/ADDING_A_SYSTEM.md)",
                )
            )
    return findings


# Modules under src/repro/ (repo-relative, posix) permitted to call
# print() directly: the CLI is the sanctioned human-output surface.
# Everything else routes human-facing text through reporting/cli.py
# and telemetry through repro.obs.
BARE_PRINT_ALLOWLIST = {
    "reporting/cli.py",
}

# Modules under src/repro/ permitted to call time.time().  Empty on
# purpose: intervals use time.perf_counter()/time.monotonic() and
# trace timestamps come from the tracer's injected clock.  Grow this
# only for a module that genuinely needs calendar time.
WALL_CLOCK_ALLOWLIST: set[str] = set()

# Modules under src/repro/ permitted to call exec()/eval(): only the
# source-codegen launch engine, whose whole job is compiling generated
# launch modules.  Everything else expresses dynamism through plain
# dispatch (dicts of callables, closures).
DYNAMIC_EXEC_ALLOWLIST = {
    "runtime/codegen.py",
}

# Modules under src/repro/ permitted to silently swallow broad
# exceptions.  Empty on purpose: a failure is either handled (a real
# body), narrowed (a named exception type), or it propagates.
SILENT_EXCEPT_ALLOWLIST: set[str] = set()


def _repro_relative(path: Path) -> str | None:
    """Path below ``src/repro/`` (posix), or None outside the library.

    Scoping mirrors `_is_system_module`: tests, tools and benchmarks
    print and read clocks legitimately; only library modules are held
    to the repro.obs discipline.
    """
    parts = path.parts
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            return "/".join(parts[i + 2:])
    return None


def _find_observability_escapes(
    path: Path, tree: ast.AST
) -> list[tuple[int, str, str]]:
    """``print(...)``, ``time.time()`` and ``exec``/``eval`` calls in
    library modules.

    Returns ``(line, code, message)`` triples - this detector owns
    three codes (``bare-print``, ``wall-clock`` and ``dynamic-exec``).
    """
    rel = _repro_relative(path)
    if rel is None:
        return []
    findings: list[tuple[int, str, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if (
            isinstance(target, ast.Name)
            and target.id == "print"
            and rel not in BARE_PRINT_ALLOWLIST
        ):
            findings.append(
                (
                    node.lineno,
                    "bare-print",
                    "print() in library code; route human-facing text "
                    "through the CLI layer and telemetry through "
                    "repro.obs counters/spans",
                )
            )
        elif (
            isinstance(target, ast.Attribute)
            and target.attr == "time"
            and isinstance(target.value, ast.Name)
            and target.value.id == "time"
            and rel not in WALL_CLOCK_ALLOWLIST
        ):
            findings.append(
                (
                    node.lineno,
                    "wall-clock",
                    "time.time() in library code; use "
                    "time.perf_counter()/time.monotonic() for intervals "
                    "and the repro.obs injected clock for trace "
                    "timestamps",
                )
            )
        elif (
            isinstance(target, ast.Name)
            and target.id in ("exec", "eval")
            and rel not in DYNAMIC_EXEC_ALLOWLIST
        ):
            findings.append(
                (
                    node.lineno,
                    "dynamic-exec",
                    f"{target.id}() in library code; dynamic execution "
                    "is reserved for the codegen launch engine "
                    "(runtime/codegen.py) - use plain dispatch instead",
                )
            )
    return findings


_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _handler_type_name(handler: ast.ExceptHandler) -> str | None:
    """The handled exception's bare name ("Exception" for ``except
    Exception:`` / ``except builtins.Exception:``), or None for a bare
    ``except:``.  Tuples report the first broad member, if any."""
    node = handler.type
    if node is None:
        return None
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name):
            name = candidate.id
        elif isinstance(candidate, ast.Attribute):
            name = candidate.attr
        else:
            continue
        if name in _BROAD_EXCEPTIONS:
            return name
    # Every member is a named, non-broad type: the narrow idiom.
    return "-narrow-"


def _body_is_silent(body: list[ast.stmt]) -> bool:
    """Only ``pass`` and bare ``...`` statements: nothing is recorded,
    re-raised, returned or logged."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and stmt.value.value is Ellipsis:
            continue
        return False
    return True


def _find_silent_exceptions(
    path: Path, tree: ast.AST
) -> list[tuple[int, str]]:
    """Bare ``except:`` handlers (always), and broad
    ``except Exception/BaseException:`` handlers whose body swallows
    the fault without doing anything."""
    rel = _repro_relative(path)
    if rel is None or rel in SILENT_EXCEPT_ALLOWLIST:
        return []
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = _handler_type_name(node)
        if caught is None:
            findings.append(
                (
                    node.lineno,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt/SystemExit; name the exception "
                    "type being handled",
                )
            )
        elif caught in _BROAD_EXCEPTIONS and _body_is_silent(node.body):
            findings.append(
                (
                    node.lineno,
                    f"`except {caught}: pass` swallows every fault "
                    "silently; handle it, record it (repro.obs / a "
                    "FailedShard), or narrow the exception type",
                )
            )
    return findings


_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


def run_builtin(files: list[Path]) -> int:
    failures = 0
    for path in files:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            print(f"{path}:{exc.lineno}: syntax-error: {exc.msg}")
            failures += 1
            continue
        for found_path, line, code, message in check_tree(path, tree):
            print(f"{found_path}:{line}: {code}: {message}")
            failures += 1
    return failures


def run_external(paths: list[str]) -> int:
    """Run ruff (F-codes) or pyflakes when available; 0 when neither
    is installed - the built-in checks remain the hermetic baseline."""
    if shutil.which("ruff"):
        return subprocess.call(["ruff", "check", "--select", "F", *paths])
    try:
        import pyflakes  # noqa: F401
    except ImportError:
        print("lint: no external linter installed (ruff/pyflakes); skipped")
        return 0
    return subprocess.call([sys.executable, "-m", "pyflakes", *paths])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS)
    parser.add_argument(
        "--external",
        action="store_true",
        help="also run ruff/pyflakes if installed",
    )
    options = parser.parse_args(argv)
    paths = options.paths or DEFAULT_PATHS
    files = iter_python_files(paths)
    if not files:
        print(f"lint: no python files under {paths}", file=sys.stderr)
        return 2
    failures = run_builtin(files)
    status = 1 if failures else 0
    if options.external:
        status = max(status, 1 if run_external(paths) else 0)
    if failures:
        print(f"lint: {failures} finding(s) in {len(files)} files")
    else:
        print(f"lint: ok ({len(files)} files)")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
