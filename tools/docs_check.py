#!/usr/bin/env python3
"""Execute every Python code block in README.md and the docs/ guides
(SERVING, ADDING_A_SYSTEM, OBSERVABILITY, ROBUSTNESS) against the
live library.

Documentation drifts when examples reference imports, functions or
parameters that were since renamed; this gate runs each fenced
``python`` block in its own namespace (in file order) and fails with
the block's location on the first error.  Wired to `make docs-check`.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [
    "README.md",
    "docs/SERVING.md",
    "docs/ADDING_A_SYSTEM.md",
    "docs/OBSERVABILITY.md",
    "docs/ROBUSTNESS.md",
]


def extract_python_blocks(text: str) -> list[tuple[int, str]]:
    """(start line, code) of every ```python fence, non-greedy."""
    blocks = []
    lines = text.splitlines()
    in_block = False
    start = 0
    buffer: list[str] = []
    for i, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block and stripped == "```python":
            in_block = True
            start = i + 1
            buffer = []
        elif in_block and stripped == "```":
            in_block = False
            blocks.append((start, "\n".join(buffer)))
        elif in_block:
            buffer.append(line)
    if in_block:
        raise SystemExit(f"unterminated ```python fence at line {start}")
    return blocks


def run_blocks(path: Path) -> int:
    text = path.read_text(encoding="utf-8")
    blocks = extract_python_blocks(text)
    failures = 0
    for lineno, code in blocks:
        namespace: dict = {"__name__": "__docs_check__"}
        try:
            exec(compile(code, f"{path.name}:{lineno}", "exec"), namespace)
        except Exception as exc:  # noqa: BLE001 - report and continue
            failures += 1
            print(f"FAIL {path.name}:{lineno}: {exc!r}", file=sys.stderr)
        else:
            print(f"ok   {path.name}:{lineno} ({len(code.splitlines())} lines)")
    print(f"{path.name}: {len(blocks)} block(s), {failures} failure(s)")
    return failures


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures = 0
    for name in DOC_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            print(f"FAIL missing documentation file: {name}", file=sys.stderr)
            failures += 1
            continue
        failures += run_blocks(path)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
