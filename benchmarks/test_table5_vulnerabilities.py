"""Table 5: vulnerabilities by reaction category + code locations.

Shape assertions mirror the paper's headline findings rather than the
absolute counts (our systems are miniatures): silent violation is the
dominant reaction class overall; every open-source system shows
crash/early-termination-style reactions; Storage-A shows neither
crashes nor early terminations; VSFTP crashes the most.
"""

from conftest import emit

from repro.inject.reactions import ReactionCategory as RC


def _counts(evaluation):
    return {
        res.system.name: res.campaign.counts_by_category()
        for res in evaluation.results()
    }


def test_table5a_vulnerabilities(benchmark, evaluation):
    table = benchmark(evaluation.table5a)
    emit(table)
    counts = _counts(evaluation)
    totals = {}
    for cat in RC:
        totals[cat] = sum(c.get(cat, 0) for c in counts.values())

    # Silent violation dominates (378 of 743 in the paper).
    assert totals[RC.SILENT_VIOLATION] == max(
        v for k, v in totals.items() if k is not RC.GOOD
    )
    # Storage-A's defensive style: no crashes, no early terminations.
    assert counts["storage_a"].get(RC.CRASH_HANG, 0) == 0
    assert counts["storage_a"].get(RC.EARLY_TERMINATION, 0) == 0
    # VSFTP has the most crashes among the open-source systems.
    crash = {k: v.get(RC.CRASH_HANG, 0) for k, v in counts.items()}
    assert crash["vsftpd"] == max(crash.values())
    # Every open-source system exposes at least one severe reaction.
    for name in ("apache", "mysql", "openldap", "vsftpd", "squid"):
        severe = counts[name].get(RC.CRASH_HANG, 0) + counts[name].get(
            RC.EARLY_TERMINATION, 0
        )
        assert severe >= 1, name
    # Squid exposes the most vulnerabilities among open-source systems
    # (221 of 743 in the paper).
    totals_by_system = {
        res.system.name: res.campaign.total() for res in evaluation.results()
    }
    open_source = {
        k: v for k, v in totals_by_system.items() if k != "storage_a"
    }
    assert max(open_source, key=open_source.get) in ("squid", "mysql")


def test_table5b_code_locations(benchmark, evaluation):
    table = benchmark(evaluation.table5b)
    emit(table)
    for res in evaluation.results():
        # A location can cover several vulnerabilities, never the
        # reverse (448 locations for 743 vulnerabilities in the paper).
        assert len(res.campaign.unique_code_locations()) <= res.campaign.total()
