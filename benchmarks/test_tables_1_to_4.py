"""Benches regenerating Tables 1-4 (survey, rules, taxonomy, systems)."""

from conftest import emit

from repro.systems.corpus import convention_counts, survey_entries, validate


def test_table1_conventions(benchmark, evaluation):
    table = benchmark(evaluation.table1)
    emit(table)
    counts = convention_counts()
    # Paper Table 1: 9 structure, 4 comparison, 4 container, 1 hybrid.
    assert counts == {
        "structure": 9,
        "comparison": 4,
        "container": 4,
        "hybrid": 1,
    }
    assert all(validate(e) for e in survey_entries())


def test_table2_generation_rules(benchmark, evaluation):
    table = benchmark(evaluation.table2)
    emit(table)
    assert "control-dependency" in table
    assert "value-relationship" in table


def test_table3_reaction_taxonomy(benchmark, evaluation):
    table = benchmark(evaluation.table3)
    emit(table)
    for reaction in (
        "crash/hang",
        "early termination",
        "functional failure",
        "silent violation",
        "silent ignorance",
    ):
        assert reaction in table


def test_table4_systems(benchmark, evaluation):
    table = benchmark(evaluation.table4)
    emit(table)
    # Storage-A's concrete numbers stay confidential (the "-" cells).
    assert "Storage-A" in table and "Commercial" in table
    # Squid's annotation burden is the smallest, as in the paper.
    loa = {
        res.system.display_name: res.spex.lines_of_annotation
        for res in evaluation.results()
    }
    assert loa["Squid"] == min(loa.values())
