"""Telemetry overhead: the always-on side must be nearly free.

`repro.obs` counters and sampled histograms live on the harness's hot
launch path, so this benchmark pins the cost: warm launch throughput
with telemetry enabled must stay within ``MAX_OVERHEAD`` (5%) of
disabled, and a campaign pipeline run must produce **bit-identical**
vulnerability sets and cache-stats footers either way — telemetry can
never change results, only record them.  Numbers land in
``BENCH_obs.json`` via the canonical `tools/bench_json.py` writer.
"""

import sys
import time
from pathlib import Path

import pytest

from conftest import emit

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_json import write_payload  # noqa: E402

from repro.inject.harness import InjectionHarness  # noqa: E402
from repro.obs import set_enabled  # noqa: E402
from repro.pipeline import CampaignPipeline  # noqa: E402
from repro.systems import get_system  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_obs.json"

SYSTEM = "vsftpd"
PASSES = 150
TRIALS = 3
MAX_OVERHEAD = 0.05


def _launch_pass(harness, system) -> int:
    """One startup launch plus every functional test (the warm
    steady state the launch engine optimises for)."""
    harness.launch(system.default_config)
    for test in system.tests:
        harness.launch(system.default_config, test.requests)
    return 1 + len(system.tests)


def _throughput(harness, system) -> float:
    started = time.perf_counter()
    launches = sum(_launch_pass(harness, system) for _ in range(PASSES))
    return launches / (time.perf_counter() - started)


@pytest.fixture(scope="module")
def warm_harness():
    system = get_system(SYSTEM)
    harness = InjectionHarness(system)
    _launch_pass(harness, system)  # learn the boot boundary
    return harness, system


def test_enabled_warm_launch_throughput_within_budget(warm_harness):
    """Alternate enabled/disabled trials on one warm harness and keep
    each mode's best rate — noise only ever slows a trial down, so
    best-of-N isolates the telemetry cost from scheduler jitter."""
    harness, system = warm_harness
    enabled_best = 0.0
    disabled_best = 0.0
    for _ in range(TRIALS):
        enabled_best = max(enabled_best, _throughput(harness, system))
        previous = set_enabled(False)
        try:
            disabled_best = max(disabled_best, _throughput(harness, system))
        finally:
            set_enabled(previous)
    overhead = (disabled_best - enabled_best) / disabled_best
    emit(
        f"obs overhead: enabled {enabled_best:.0f} launches/s vs "
        f"disabled {disabled_best:.0f} launches/s -> "
        f"{overhead * 100:+.1f}% (budget {MAX_OVERHEAD * 100:.0f}%)"
    )
    assert enabled_best > 0 and disabled_best > 0
    assert overhead <= MAX_OVERHEAD

    write_payload(
        OUTPUT,
        {
            "generated_unix": int(time.time()),
            "workload": {
                "system": SYSTEM,
                "passes": PASSES,
                "trials": TRIALS,
                "launches_per_pass": 1 + len(system.tests),
            },
            "enabled_launches_per_s": round(enabled_best, 2),
            "disabled_launches_per_s": round(disabled_best, 2),
            "overhead_fraction": round(overhead, 4),
            "max_overhead_fraction": MAX_OVERHEAD,
        },
    )
    emit(f"wrote {OUTPUT}")


def test_telemetry_never_changes_pipeline_results():
    """Verdicts and the cache-stats footer are bit-identical with
    telemetry on and off; only the recording differs."""
    enabled_report = CampaignPipeline(systems=[SYSTEM]).run()
    previous = set_enabled(False)
    try:
        disabled_report = CampaignPipeline(systems=[SYSTEM]).run()
    finally:
        set_enabled(previous)
    assert (
        disabled_report.vulnerability_sets()
        == enabled_report.vulnerability_sets()
    )
    assert disabled_report.cache_stats == enabled_report.cache_stats
