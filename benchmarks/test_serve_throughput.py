"""Always-on validation service throughput.

The serve tier's reason to exist: a resident service skips SPEX
inference and checker compilation on every request, so sustained
validation throughput under concurrent clients must dwarf the cold
CLI path (`python -m repro.reporting.cli check`), which pays the full
pipeline per invocation.  The measured ratio is recorded in
``BENCH_serve.json`` via the canonical `tools/bench_json.py` writer.
"""

import asyncio
import subprocess
import sys
import time
from pathlib import Path

import pytest

from conftest import emit

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_json import write_payload  # noqa: E402

from repro.serve import BackgroundServer, ServeClient  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_serve.json"

N_CLIENTS = 8
CHECKS_PER_CLIENT = 150
COLD_CLI_REPS = 3
REQUIRED_SPEEDUP = 20.0

# A small rotation so the service sees clean, flagged, and unknown-
# parameter work rather than one memo-friendly input.
CONFIGS = [
    "ft_min_word_len = 5\n",
    "ft_min_word_len = 99\nmade_up_param = 1\n",
    "port = 70000\n",
    "ft_min_word_len = 6\nmax_connections = 151\n",
]


@pytest.fixture(scope="module")
def cold_cli_rate(tmp_path_factory):
    """Checks/second through the cold CLI: one full process + SPEX +
    compile + validate per configuration file."""
    path = tmp_path_factory.mktemp("serve-bench") / "probe.cnf"
    path.write_text(CONFIGS[1])
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    argv = [
        sys.executable, "-m", "repro.reporting.cli",
        "check", "mysql", str(path), "--json",
    ]
    started = time.perf_counter()
    for _ in range(COLD_CLI_REPS):
        completed = subprocess.run(
            argv, env=env, cwd=REPO_ROOT, capture_output=True, text=True
        )
        assert completed.returncode == 1, completed.stderr  # flagged
    duration = time.perf_counter() - started
    return COLD_CLI_REPS / duration, duration


def test_sustained_serve_throughput_vs_cold_cli(cold_cli_rate):
    cli_rate, cli_duration = cold_cli_rate

    with BackgroundServer(systems=["mysql"]) as handle:

        async def one_client(index: int) -> int:
            client = await ServeClient.connect(handle.host, handle.port)
            try:
                for i in range(CHECKS_PER_CLIENT):
                    text = CONFIGS[(index + i) % len(CONFIGS)]
                    response = await client.check(
                        "mysql", text, config_id=f"bench-{index}"
                    )
                    assert response.revision == i + 1
                return CHECKS_PER_CLIENT
            finally:
                await client.close()

        async def drive() -> int:
            totals = await asyncio.gather(
                *(one_client(i) for i in range(N_CLIENTS))
            )
            return sum(totals)

        started = time.perf_counter()
        checks = asyncio.run(drive())
        serve_duration = time.perf_counter() - started

    serve_rate = checks / serve_duration
    speedup = serve_rate / cli_rate
    emit(
        f"serve: {checks} checks by {N_CLIENTS} concurrent clients in "
        f"{serve_duration:.2f}s ({serve_rate:.0f} checks/s) vs cold CLI "
        f"{cli_rate:.2f} checks/s ({COLD_CLI_REPS} runs in "
        f"{cli_duration:.2f}s) - {speedup:.0f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP

    write_payload(
        OUTPUT,
        {
            "generated_unix": int(time.time()),
            "workload": {
                "system": "mysql",
                "clients": N_CLIENTS,
                "checks_per_client": CHECKS_PER_CLIENT,
                "distinct_configs": len(CONFIGS),
            },
            "cold_cli_checks_per_s": round(cli_rate, 2),
            "serve_checks_per_s": round(serve_rate, 2),
            "speedup": round(speedup, 1),
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    emit(f"wrote {OUTPUT}")
