"""Always-on validation service throughput.

The serve tier's reason to exist: a resident service skips SPEX
inference and checker compilation on every request, so sustained
validation throughput under concurrent clients must dwarf the cold
CLI path (`python -m repro.reporting.cli check`), which pays the full
pipeline per invocation.  The measured ratio is recorded in
``BENCH_serve.json`` via the canonical `tools/bench_json.py` writer.
"""

import asyncio
import subprocess
import sys
import time
from pathlib import Path

import pytest

from conftest import emit

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_json import write_payload  # noqa: E402

from repro.serve import BackgroundServer, ServeClient  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_serve.json"

N_CLIENTS = 8
CHECKS_PER_CLIENT = 150
COLD_CLI_REPS = 3
REQUIRED_SPEEDUP = 20.0

# A small rotation so the service sees clean, flagged, and unknown-
# parameter work rather than one memo-friendly input.
CONFIGS = [
    "ft_min_word_len = 5\n",
    "ft_min_word_len = 99\nmade_up_param = 1\n",
    "port = 70000\n",
    "ft_min_word_len = 6\nmax_connections = 151\n",
]

# The declarative nginx system rides the same service; its rotation
# leans on access-control diagnostics (denied directory, bad mode).
NGINX_CLIENTS = 4
NGINX_CHECKS_PER_CLIENT = 75
NGINX_CONFIGS = [
    "worker_processes 4\n",
    "root /data/restricted_dir\nuser www-data\n",
    "upload_store_mode 899\n",
    "listen 8080\nkeepalive_timeout 65\n",
]


@pytest.fixture(scope="module")
def cold_cli_rate(tmp_path_factory):
    """Checks/second through the cold CLI: one full process + SPEX +
    compile + validate per configuration file."""
    path = tmp_path_factory.mktemp("serve-bench") / "probe.cnf"
    path.write_text(CONFIGS[1])
    env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
    argv = [
        sys.executable, "-m", "repro.reporting.cli",
        "check", "mysql", str(path), "--json",
    ]
    started = time.perf_counter()
    for _ in range(COLD_CLI_REPS):
        completed = subprocess.run(
            argv, env=env, cwd=REPO_ROOT, capture_output=True, text=True
        )
        assert completed.returncode == 1, completed.stderr  # flagged
    duration = time.perf_counter() - started
    return COLD_CLI_REPS / duration, duration


def _measure_serve(
    system: str,
    configs: list[str],
    n_clients: int,
    checks_per_client: int,
) -> tuple[int, float, int]:
    """(total checks, wall seconds, flagged responses) for one system
    served to `n_clients` concurrent clients."""
    with BackgroundServer(systems=[system]) as handle:

        async def one_client(index: int) -> int:
            client = await ServeClient.connect(handle.host, handle.port)
            flagged = 0
            try:
                for i in range(checks_per_client):
                    text = configs[(index + i) % len(configs)]
                    response = await client.check(
                        system, text, config_id=f"bench-{system}-{index}"
                    )
                    assert response.revision == i + 1
                    if response.flagged:
                        flagged += 1
                return flagged
            finally:
                await client.close()

        async def drive() -> int:
            totals = await asyncio.gather(
                *(one_client(i) for i in range(n_clients))
            )
            return sum(totals)

        started = time.perf_counter()
        flagged = asyncio.run(drive())
        duration = time.perf_counter() - started
    return n_clients * checks_per_client, duration, flagged


def test_sustained_serve_throughput_vs_cold_cli(cold_cli_rate):
    cli_rate, cli_duration = cold_cli_rate

    checks, serve_duration, _ = _measure_serve(
        "mysql", CONFIGS, N_CLIENTS, CHECKS_PER_CLIENT
    )
    serve_rate = checks / serve_duration
    speedup = serve_rate / cli_rate
    emit(
        f"serve: {checks} checks by {N_CLIENTS} concurrent clients in "
        f"{serve_duration:.2f}s ({serve_rate:.0f} checks/s) vs cold CLI "
        f"{cli_rate:.2f} checks/s ({COLD_CLI_REPS} runs in "
        f"{cli_duration:.2f}s) - {speedup:.0f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP

    # The declarative eighth system through the same service; half its
    # rotation carries access-control mistakes, so flagged responses
    # prove those diagnostics survive the serve tier under concurrency.
    nginx_checks, nginx_duration, nginx_flagged = _measure_serve(
        "nginx", NGINX_CONFIGS, NGINX_CLIENTS, NGINX_CHECKS_PER_CLIENT
    )
    nginx_rate = nginx_checks / nginx_duration
    emit(
        f"serve[nginx]: {nginx_checks} checks in {nginx_duration:.2f}s "
        f"({nginx_rate:.0f} checks/s), {nginx_flagged} flagged "
        "(access-control rotation)"
    )
    assert nginx_flagged == nginx_checks // 2

    write_payload(
        OUTPUT,
        {
            "generated_unix": int(time.time()),
            "workload": {
                "system": "mysql",
                "clients": N_CLIENTS,
                "checks_per_client": CHECKS_PER_CLIENT,
                "distinct_configs": len(CONFIGS),
            },
            "cold_cli_checks_per_s": round(cli_rate, 2),
            "serve_checks_per_s": round(serve_rate, 2),
            "speedup": round(speedup, 1),
            "required_speedup": REQUIRED_SPEEDUP,
            "systems": [
                {
                    "system": "mysql",
                    "clients": N_CLIENTS,
                    "checks": checks,
                    "checks_per_s": round(serve_rate, 2),
                    "flagged": None,
                },
                {
                    "system": "nginx",
                    "clients": NGINX_CLIENTS,
                    "checks": nginx_checks,
                    "checks_per_s": round(nginx_rate, 2),
                    "flagged": nginx_flagged,
                },
            ],
        },
    )
    emit(f"wrote {OUTPUT}")
