"""Throughput benches for the toolchain itself: front-end, IR,
dataflow, inference, and a full injection campaign."""

from conftest import emit

from repro.core import SpexEngine
from repro.inject.campaign import Campaign
from repro.ir import build_ir
from repro.lang.program import Program
from repro.runtime.process import run_program
from repro.systems import get_system


def test_parse_and_link(benchmark):
    system = get_system("mysql")
    program = benchmark(
        lambda: Program.from_sources(system.sources, name=system.name)
    )
    assert program.has_function("main")


def test_build_ir(benchmark):
    system = get_system("mysql")
    program = Program.from_sources(system.sources, name=system.name)
    module = benchmark(build_ir, program)
    assert module.has_function("main")


def test_spex_inference(benchmark):
    system = get_system("mysql")

    def infer():
        return SpexEngine(system.program(), system.annotations).run()

    report = benchmark.pedantic(infer, rounds=3, iterations=1)
    assert len(report.constraints) > 30
    emit(f"SPEX on mysql-mini: {len(report.constraints)} constraints")


def test_interpreter_startup(benchmark):
    system = get_system("openldap")
    program = system.program()

    def launch():
        os_model = system.make_os()
        system.install_config(os_model, system.default_config)
        return run_program(
            program, os_model, argv=[system.name, system.config_path]
        )

    result = benchmark(launch)
    assert result.exited_ok


def test_full_campaign_openldap(benchmark):
    system = get_system("openldap")

    def campaign():
        return Campaign(system).run()

    report = benchmark.pedantic(campaign, rounds=1, iterations=1)
    emit(
        f"Campaign on openldap-mini: {report.misconfigurations_tested} "
        f"misconfigurations tested, {report.total()} vulnerabilities "
        "(the paper's full runs stayed under 10 hours; the miniature "
        "fleet runs in seconds)"
    )
    assert report.total() >= 10
