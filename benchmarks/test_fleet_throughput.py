"""Fleet-scale config-checking benchmarks.

Demonstrates the third pillar's throughput and fidelity claims over
all registered systems:

* ≥ 10,000 synthetic user configs validate in one fleet run, with
  throughput (configs/sec) reported;
* the compiled-checker cache makes warm re-runs skip every compile
  (hit rate reported and asserted);
* thread and process executors produce bit-identical fleet results,
  and the process executor beats serial wall-clock when the hardware
  has cores to offer (asserted only on multi-core hosts - on one core
  a process pool is fork overhead plus the same work);
* checker precision against planted ground truth is 1.0, recall is
  high, and a seeded sample of flagged configs is confirmed
  misbehaving under the injection harness.
"""

import os
import time

import pytest

from conftest import emit

from repro.checker import run_fleet
from repro.pipeline import PipelineCaches

SIZE_PER_SYSTEM = 1500  # x7 systems = 10,500 configs
AGREEMENT_SAMPLE = 25


def _summary(report):
    return [
        (
            r.name,
            r.corpus_size,
            r.planted,
            r.flagged,
            r.errors,
            r.warnings,
            sorted(r.by_kind.items()),
            r.scores,
        )
        for r in report.results
    ]


@pytest.fixture(scope="module")
def caches():
    return PipelineCaches()


@pytest.fixture(scope="module")
def cold_serial(caches):
    started = time.perf_counter()
    report = run_fleet(
        size=SIZE_PER_SYSTEM,
        seed=0,
        executor="serial",
        caches=caches,
        agreement_sample=AGREEMENT_SAMPLE,
    )
    return report, time.perf_counter() - started


def test_fleet_scale_and_throughput(cold_serial):
    report, duration = cold_serial
    assert report.total_configs >= 10_000
    assert len(report.results) == 8
    emit(
        f"Fleet: {report.total_configs} configs over "
        f"{len(report.results)} systems in {duration:.2f}s "
        f"({report.throughput():.0f} configs/s, serial)"
    )
    assert report.throughput() > 0


def test_precision_recall_against_planted_truth(cold_serial):
    report, _ = cold_serial
    scores = report.scores()
    # Clean fleet members equal the calibrated vendor template, so a
    # false positive would mean the checker blames a blameless user.
    assert scores.false_positives == 0
    assert scores.precision == 1.0
    assert scores.recall is not None and scores.recall >= 0.85
    for result in report.results:
        assert result.scores.precision == 1.0
        assert result.scores.recall >= 0.7
    emit(
        "Fleet precision/recall vs planted mistakes: "
        f"P={scores.precision:.3f} R={scores.recall:.3f} "
        f"(TP={scores.true_positives}, FN={scores.false_negatives})"
    )


def test_flagged_sample_misbehaves_under_interpreter(cold_serial):
    report, _ = cold_serial
    agreement = report.agreement
    assert agreement is not None
    assert agreement.sampled == AGREEMENT_SAMPLE
    # The ground-truth loop re-runs each sampled flagged config under
    # the injection harness; the checker's word holds when the system
    # observably misbehaves (or pinpoints the mistake).  The rare
    # remainder are latent mistakes today's runtime tolerates (the
    # measured rate is ~0.9; 0.75 absorbs sampling variance).
    assert agreement.confirmed_fraction >= 0.75
    emit(
        f"Interpreter agreement: {agreement.confirmed}/"
        f"{agreement.sampled} flagged configs confirmed misbehaving, "
        f"{agreement.refuted} tolerated"
    )


@pytest.fixture(scope="module")
def warm_serial(cold_serial, caches):
    """A fully warm serial re-run: checkers and inference cached, so
    its duration is pure corpus-generation + validation work - the
    fair reference for executor speedup comparisons."""
    started = time.perf_counter()
    report = run_fleet(
        size=SIZE_PER_SYSTEM, seed=0, executor="serial", caches=caches
    )
    return report, time.perf_counter() - started


def test_warm_rerun_hits_checker_cache(cold_serial, warm_serial, caches):
    cold_report, _ = cold_serial
    warm, warm_duration = warm_serial
    assert _summary(warm) == _summary(cold_report)
    assert all(r.checker_from_cache for r in warm.results)
    stats = warm.cache_stats["checkers"]
    assert stats["hits"] >= 7
    hit_rate = stats["hits"] / max(1, stats["hits"] + stats["misses"])
    emit(
        f"Warm fleet re-run: {warm_duration:.2f}s, checker cache "
        f"{stats['hits']} hits / {stats['misses']} misses "
        f"({100 * hit_rate:.0f}% hit rate)"
    )


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_executor_parity_and_speedup(
    cold_serial, warm_serial, caches, executor
):
    cold_report, _ = cold_serial
    _, serial_duration = warm_serial
    started = time.perf_counter()
    report = run_fleet(
        size=SIZE_PER_SYSTEM, seed=0, executor=executor, caches=caches
    )
    duration = time.perf_counter() - started
    assert _summary(report) == _summary(cold_report)
    speedup = serial_duration / max(duration, 1e-9)
    emit(
        f"{executor} executor: {duration:.2f}s vs warm serial "
        f"{serial_duration:.2f}s ({speedup:.2f}x), identical fleet "
        "results"
    )
    if executor == "process" and (os.cpu_count() or 1) >= 2:
        # Real parallelism must pay for its forks; on one core a
        # process pool is the same work plus fork overhead, so the
        # speedup claim is only meaningful with cores to spare.
        assert speedup >= 1.0
