"""Shared fixtures for the benchmark suite.

The full evaluation (SPEX + injection campaign + lint for all seven
systems) is computed once per session; the per-table benchmarks then
time their rendering/aggregation step and print the regenerated
table so the run's output can be compared against the paper.
"""

from pathlib import Path

import pytest

from repro.reporting import Evaluation

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Every test under benchmarks/ carries the `bench` marker, so the
    inner loop can deselect the whole tier with ``-m "not bench"``
    (see `make test-fast`)."""
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def evaluation():
    ev = Evaluation.shared()
    ev.results()  # warm every per-system result once
    return ev


def emit(text: str) -> None:
    """Print a regenerated table/figure under the benchmark output."""
    print("\n" + text)
