"""Shared fixtures for the benchmark suite.

The full evaluation (SPEX + injection campaign + lint for all seven
systems) is computed once per session; the per-table benchmarks then
time their rendering/aggregation step and print the regenerated
table so the run's output can be compared against the paper.
"""

import pytest

from repro.reporting import Evaluation


@pytest.fixture(scope="session")
def evaluation():
    ev = Evaluation.shared()
    ev.results()  # warm every per-system result once
    return ev


def emit(text: str) -> None:
    """Print a regenerated table/figure under the benchmark output."""
    print("\n" + text)
