"""Ablation benches for the design choices DESIGN.md calls out.

1. MAY-belief threshold (§2.2.4): sweep the confidence cutoff and
   show the 0.75 default filters the listen/listen_ipv6-style false
   dependencies while keeping the true ones.
2. Value-relationship transitivity depth (§2.2.5): hops 0/1/2.
3. No symbolic execution (§2.2): events grow linearly with branches
   while path counts grow exponentially - the reason SPEX pattern-
   matches on dataflow instead of enumerating paths.
4. Injection optimizations (§3.1): stop-at-first-failure and
   shortest-test-first reduce executed test runs.
"""

from conftest import emit

from repro.analysis import GlobalSeed, TaintEngine, UsageEvent
from repro.core import SpexEngine, SpexOptions
from repro.inject.harness import InjectionHarness
from repro.ir import build_ir
from repro.lang.program import Program
from repro.systems import get_system


def _spex_with(system_name: str, **option_kwargs):
    system = get_system(system_name)
    options = SpexOptions(**option_kwargs)
    engine = SpexEngine(system.program(), system.annotations, options=options)
    return engine.run()


class TestMayBeliefAblation:
    def test_threshold_sweep(self, benchmark):
        def sweep():
            counts = {}
            for threshold in (0.25, 0.5, 0.75, 1.0):
                report = _spex_with("vsftpd", maybelief_threshold=threshold)
                counts[threshold] = len(report.constraints.control_deps())
            return counts

        counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit(
            "Ablation (MAY-belief threshold on VSFTP): "
            + ", ".join(f"{t} -> {n} deps" for t, n in sorted(counts.items()))
        )
        # Lower thresholds admit the alternative-guard false positives
        # (listen/listen_ipv6 both at confidence 0.5).
        assert counts[0.25] > counts[0.75]
        # And the paper's listen_port example is filtered at 0.75:
        report = _spex_with("vsftpd", maybelief_threshold=0.5)
        low = {
            (c.param, c.dep_param) for c in report.constraints.control_deps()
        }
        report = _spex_with("vsftpd", maybelief_threshold=0.75)
        high = {
            (c.param, c.dep_param) for c in report.constraints.control_deps()
        }
        assert ("listen_port", "listen_ipv6") in low - high


class TestTransitivityAblation:
    def test_transit_depth(self, benchmark):
        def sweep():
            out = {}
            for hops in (0, 1, 2):
                report = _spex_with("mysql", value_rel_transit_hops=hops)
                out[hops] = len(report.constraints.value_rels())
            return out

        counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
        emit(
            "Ablation (value-rel transitivity on MySQL): "
            + ", ".join(f"depth {h} -> {n} rels" for h, n in sorted(counts.items()))
        )
        # Depth 1 (the paper's "one intermediate variable") is needed
        # for the ft_min/ft_max relation; depth 2 adds nothing here.
        assert counts[1] >= 1
        assert counts[2] >= counts[1]


class TestPathExplosionAblation:
    def _branchy(self, n: int) -> str:
        checks = "\n".join(
            f"    if (v > {i}) {{ total = total + {i}; }}" for i in range(n)
        )
        return f"""
        int v;
        int total;
        int f() {{
        {checks}
            return total;
        }}
        """

    def test_events_linear_paths_exponential(self, benchmark):
        def measure():
            rows = []
            for n in (4, 8, 12):
                program = Program.from_sources({"t.c": self._branchy(n)})
                module = build_ir(program)
                result = TaintEngine(module, [GlobalSeed("v", "v")]).run()
                events = len(result.events_of(UsageEvent))
                rows.append((n, events, 2**n))
            return rows

        rows = benchmark.pedantic(measure, rounds=1, iterations=1)
        emit(
            "Ablation (no symbolic execution): "
            + "; ".join(
                f"{n} branches: {events} usage events vs {paths} paths"
                for n, events, paths in rows
            )
        )
        for n, events, paths in rows:
            assert events <= 4 * n  # linear in branches
        assert rows[-1][2] == 4096  # the path count SPEX avoids


class TestInjectionOptimizationAblation:
    def test_stop_at_first_failure_saves_runs(self, benchmark):
        system = get_system("openldap")
        config = system.default_config.replace(
            "sockbuf_max_incoming 262144", "sockbuf_max_incoming -1"
        )
        from repro.inject.generators import Misconfiguration
        from repro.core.constraints import BasicTypeConstraint
        from repro.lang.source import Location

        misconf = Misconfiguration(
            settings=(("sockbuf_max_incoming", "-1"),),
            constraint=BasicTypeConstraint(
                "sockbuf_max_incoming", Location("slapd.c", 0, 0)
            ),
            rule="bench",
            description="bench",
        )

        def run(stop: bool, sort: bool):
            harness = InjectionHarness(
                system, stop_at_first_failure=stop, sort_shortest_first=sort
            )
            return harness.test_misconfiguration(misconf)

        optimized = benchmark.pedantic(
            run, args=(True, True), rounds=3, iterations=1
        )
        unoptimized = run(False, False)
        emit(
            "Ablation (injection optimizations on OpenLDAP): "
            f"optimized runs {optimized.tests_run} test(s) "
            f"({len(optimized.failed_tests)} failure(s) recorded), naive "
            f"runs {unoptimized.tests_run} "
            f"({len(unoptimized.failed_tests)} failure(s) recorded)"
        )
        # Shortest-first runs 'ping' (0.5s nominal) first and stops at
        # its failure: a single run instead of the whole suite.  The
        # full-suite mode must actually keep driving the remaining
        # tests - strictly more runs on a failing injection - and
        # record every failure it sees along the way.
        assert optimized.tests_run == 1
        assert unoptimized.tests_run == len(system.tests)
        assert unoptimized.tests_run > optimized.tests_run
        assert len(unoptimized.failed_tests) >= len(optimized.failed_tests)
        # The optimized mode's single observed failure is among the
        # full roster the naive mode recorded (the two modes walk the
        # suite in different orders, so only containment is invariant).
        assert optimized.reaction.failed_test in unoptimized.failed_tests
        assert unoptimized.is_vulnerability and optimized.is_vulnerability
