"""Tables 9-12: real-world benefit, constraint counts, accuracy."""

from conftest import emit


def test_table9_realworld_benefit(benchmark, evaluation):
    table = benchmark(evaluation.table9)
    emit(table)
    replays = evaluation._replays()
    # The paper's headline: 24%-38% of historical parameter
    # misconfigurations could have been avoided.
    for name, rep in replays.items():
        assert 0.20 <= rep.avoidable_fraction <= 0.45, (
            name,
            rep.avoidable_fraction,
        )


def test_table10_breakdown(benchmark, evaluation):
    table = benchmark(evaluation.table10)
    emit(table)
    replays = evaluation._replays()
    for rep in replays.values():
        buckets = rep.bucket_counts()
        assert sum(buckets.values()) == rep.sampled
        # All four non-benefit buckets are populated, as in Table 10.
        assert buckets["cross_sw"] > 0
        assert buckets["conform"] > 0
        assert buckets["good"] > 0


def test_table11_constraints(benchmark, evaluation):
    table = benchmark(evaluation.table11)
    emit(table)
    counts = {
        res.system.name: res.spex.constraint_counts()
        for res in evaluation.results()
    }
    # Basic types are inferred for (nearly) every parameter; semantic
    # types only where known APIs are contacted - so fewer (§4.3).
    for name, c in counts.items():
        assert c["basic"] >= c["semantic"], name
    # OpenLDAP infers no control dependencies (N/A row of Table 12).
    assert counts["openldap"]["ctrl_dep"] == 0
    # VSFTP has by far the most control dependencies (68 in Table 11).
    deps = {k: c["ctrl_dep"] for k, c in counts.items()}
    assert deps["vsftpd"] == max(deps.values())
    # MySQL carries the flagship value relationship (ft word lengths).
    assert counts["mysql"]["value_rel"] >= 1
    total = sum(sum(c.values()) for c in counts.values())
    assert total > 250  # a few hundred constraints across the fleet


def test_table12_accuracy(benchmark, evaluation):
    table = benchmark(evaluation.table12)
    emit(table)
    by_name = {res.system.name: res.accuracy for res in evaluation.results()}
    # Overall accuracy above 90% for most systems (§4.3)...
    high = [
        name
        for name, acc in by_name.items()
        if acc.overall() is not None and acc.overall() >= 0.9
    ]
    assert len(high) >= 4
    # ... with OpenLDAP's pointer aliasing halving value-relationship
    # accuracy (50.0% in the paper's row).
    assert by_name["openldap"].accuracy("value_rel") == 0.5
    # VSFTP's control-dependency accuracy is the lowest (63.9% paper).
    dep_accs = {
        name: acc.accuracy("ctrl_dep")
        for name, acc in by_name.items()
        if acc.accuracy("ctrl_dep") is not None
    }
    assert min(dep_accs, key=dep_accs.get) == "vsftpd"
