"""Launch-engine benchmark: closure compilation + warm-boot snapshots.

The acceptance bar for the compile-and-replay engine: a *cold*
(launch-cache-empty) 8-system campaign must run at >= 3x the launch
throughput of the tree-walking baseline (the seed's engine: tree
dispatch, no snapshots), while producing bit-identical verdicts and
`Vulnerability` sets.  Inference is pre-warmed and shared so both
sweeps time the injection loop, not SPEX.
"""

import pickle
import time

import pytest

from conftest import emit

from repro.inject.campaign import Campaign
from repro.inject.harness import InjectionHarness
from repro.pipeline.cache import PipelineCaches, SnapshotCache
from repro.runtime.interpreter import InterpreterOptions
from repro.runtime.snapshot import BootSnapshot
from repro.systems.registry import get_system, iter_systems

# The harness's default budgets, pinned so both engines run identical
# interpreter options apart from the engine/warm-boot knobs.
TREE_BASELINE = InterpreterOptions(
    max_steps=400_000,
    max_virtual_seconds=120.0,
    engine="tree",
    warm_boot=False,
)

SPEEDUP_FLOOR = 3.0

# The codegen engine + zero-copy restore must at least double the
# closure engine's seed-era warm throughput on the slowest system.
WARM_SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def inference():
    caches = PipelineCaches()
    for system in iter_systems(None):
        Campaign(system, inference_cache=caches.inference).run_spex()
    return caches.inference


def _sweep(inference, harness_options=None, snapshot_cache=None):
    """One cold 8-system campaign sweep; launch caches stay empty so
    every single launch is really executed."""
    duration = 0.0
    verdict_streams = {}
    vulnerability_sets = {}
    misconfigurations = 0
    for system in iter_systems(None):
        campaign = Campaign(
            system,
            inference_cache=inference,
            harness_options=harness_options,
            snapshot_cache=snapshot_cache,
        )
        started = time.perf_counter()
        report = campaign.run()
        duration += time.perf_counter() - started
        misconfigurations += report.misconfigurations_tested
        vulnerability_sets[system.name] = frozenset(report.vulnerabilities)
        verdict_streams[system.name] = [
            (
                verdict.misconfiguration.settings,
                verdict.misconfiguration.rule,
                verdict.reaction.category,
                verdict.reaction.pinpointed,
                verdict.reaction.detail,
                verdict.tests_run,
                verdict.failed_tests,
            )
            for verdict in report.verdicts
        ]
    return duration, misconfigurations, vulnerability_sets, verdict_streams


def test_cold_campaign_3x_throughput_with_identical_results(inference):
    tree_time, tree_mis, tree_vulns, tree_verdicts = _sweep(
        inference, harness_options=TREE_BASELINE
    )
    snapshot_cache = SnapshotCache()
    new_time, new_mis, new_vulns, new_verdicts = _sweep(
        inference, snapshot_cache=snapshot_cache
    )

    assert new_mis == tree_mis
    # Bit-identical outcomes: every verdict (reaction category,
    # pinpointing, detail, test counts, failure roster) and therefore
    # every Vulnerability set matches the tree-walking baseline.
    assert new_verdicts == tree_verdicts
    assert new_vulns == tree_vulns

    tree_throughput = tree_mis / tree_time
    new_throughput = new_mis / new_time
    speedup = new_throughput / tree_throughput
    stats = snapshot_cache.boot_stats
    emit(
        "Launch engine, cold 8-system campaign "
        f"({tree_mis} misconfigurations):\n"
        f"  tree baseline      {tree_time:6.2f}s  "
        f"{tree_throughput:7.1f} misconfigs/s\n"
        f"  compiled+snapshots {new_time:6.2f}s  "
        f"{new_throughput:7.1f} misconfigs/s\n"
        f"  speedup {speedup:.2f}x (floor {SPEEDUP_FLOOR}x); "
        f"boots {stats.boots}, captures {stats.captures}, "
        f"resumes {stats.resumes}"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled launch engine is only {speedup:.2f}x the tree "
        f"baseline (floor {SPEEDUP_FLOOR}x)"
    )


class _LegacySnapshot(BootSnapshot):
    """The seed's resume path, replicated byte-for-byte: one full
    `pickle.loads` of the boot blob per resume, `global_types` rebuilt
    from the program.  PR 9 replaced this with the fixup-scanned
    copy-on-write restore; this subclass keeps the old cost measurable
    so the warm-floor comparison stays honest on any machine."""

    def materialize(self, program):
        state = pickle.loads(self.blob)
        state["global_types"] = {
            name: decl.type for name, decl in program.globals.items()
        }
        return state


def _launch_pass(harness, system):
    """One startup launch plus every functional test."""
    harness.launch(system.default_config)
    for test in system.tests:
        harness.launch(system.default_config, test.requests)
    return 1 + len(system.tests)


def _warm_throughput(system, engine, legacy_restore=False, passes=25):
    harness = InjectionHarness(system, engine=engine)
    _launch_pass(harness, system)  # probe: learns the boot boundary
    _launch_pass(harness, system)  # capture: takes the snapshot
    if legacy_restore:
        argv = [system.name, system.config_path]
        record, _, _ = harness._boot_record(system.default_config, argv)
        record.snapshot = _LegacySnapshot(
            boundary=record.snapshot.boundary,
            blob=record.snapshot.to_blob(),
        )
    launches = 0
    started = time.perf_counter()
    for _ in range(passes):
        launches += _launch_pass(harness, system)
    return launches / (time.perf_counter() - started)


def test_codegen_doubles_the_warm_launch_floor():
    """storage_a is the fleet's warm-throughput floor (its boot bundle
    is array-heavy, so the seed's per-resume `pickle.loads` dominated
    every warm launch).  The codegen engine riding the zero-copy
    restore must clear 2x the closure engine's seed-era warm
    throughput on it, measured head-to-head in this process."""
    system = get_system("storage_a")
    legacy = _warm_throughput(system, "compiled", legacy_restore=True)
    codegen = _warm_throughput(system, "codegen")
    speedup = codegen / legacy
    emit(
        "Warm launch floor (storage_a):\n"
        f"  closure + pickle restore (seed)  {legacy:7.1f} launches/s\n"
        f"  codegen + zero-copy restore      {codegen:7.1f} launches/s\n"
        f"  speedup {speedup:.2f}x (floor {WARM_SPEEDUP_FLOOR}x)"
    )
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"codegen warm launches are only {speedup:.2f}x the closure "
        f"engine's seed-era throughput (floor {WARM_SPEEDUP_FLOOR}x)"
    )


def test_warm_snapshots_amortize_boots(inference):
    """Across a campaign, full boots stay bounded by the unique-config
    count (speculative capture merges probe+capture for most configs)
    while every extra launch of a booting config is a resume."""
    snapshot_cache = SnapshotCache()
    for system in iter_systems(None):
        Campaign(
            system, inference_cache=inference, snapshot_cache=snapshot_cache
        ).run()
    stats = snapshot_cache.boot_stats
    emit(
        f"Snapshot amortization: {stats.boots} boots, "
        f"{stats.captures} captures, {stats.resumes} resumes"
    )
    assert stats.resumes > stats.boots
    assert stats.captures > 0
