"""Launch-engine benchmark: closure compilation + warm-boot snapshots.

The acceptance bar for the compile-and-replay engine: a *cold*
(launch-cache-empty) 7-system campaign must run at >= 3x the launch
throughput of the tree-walking baseline (the seed's engine: tree
dispatch, no snapshots), while producing bit-identical verdicts and
`Vulnerability` sets.  Inference is pre-warmed and shared so both
sweeps time the injection loop, not SPEX.
"""

import time

import pytest

from conftest import emit

from repro.inject.campaign import Campaign
from repro.pipeline.cache import PipelineCaches, SnapshotCache
from repro.runtime.interpreter import InterpreterOptions
from repro.systems.registry import iter_systems

# The harness's default budgets, pinned so both engines run identical
# interpreter options apart from the engine/warm-boot knobs.
TREE_BASELINE = InterpreterOptions(
    max_steps=400_000,
    max_virtual_seconds=120.0,
    engine="tree",
    warm_boot=False,
)

SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def inference():
    caches = PipelineCaches()
    for system in iter_systems(None):
        Campaign(system, inference_cache=caches.inference).run_spex()
    return caches.inference


def _sweep(inference, harness_options=None, snapshot_cache=None):
    """One cold 7-system campaign sweep; launch caches stay empty so
    every single launch is really executed."""
    duration = 0.0
    verdict_streams = {}
    vulnerability_sets = {}
    misconfigurations = 0
    for system in iter_systems(None):
        campaign = Campaign(
            system,
            inference_cache=inference,
            harness_options=harness_options,
            snapshot_cache=snapshot_cache,
        )
        started = time.perf_counter()
        report = campaign.run()
        duration += time.perf_counter() - started
        misconfigurations += report.misconfigurations_tested
        vulnerability_sets[system.name] = frozenset(report.vulnerabilities)
        verdict_streams[system.name] = [
            (
                verdict.misconfiguration.settings,
                verdict.misconfiguration.rule,
                verdict.reaction.category,
                verdict.reaction.pinpointed,
                verdict.reaction.detail,
                verdict.tests_run,
                verdict.failed_tests,
            )
            for verdict in report.verdicts
        ]
    return duration, misconfigurations, vulnerability_sets, verdict_streams


def test_cold_campaign_3x_throughput_with_identical_results(inference):
    tree_time, tree_mis, tree_vulns, tree_verdicts = _sweep(
        inference, harness_options=TREE_BASELINE
    )
    snapshot_cache = SnapshotCache()
    new_time, new_mis, new_vulns, new_verdicts = _sweep(
        inference, snapshot_cache=snapshot_cache
    )

    assert new_mis == tree_mis
    # Bit-identical outcomes: every verdict (reaction category,
    # pinpointing, detail, test counts, failure roster) and therefore
    # every Vulnerability set matches the tree-walking baseline.
    assert new_verdicts == tree_verdicts
    assert new_vulns == tree_vulns

    tree_throughput = tree_mis / tree_time
    new_throughput = new_mis / new_time
    speedup = new_throughput / tree_throughput
    stats = snapshot_cache.boot_stats
    emit(
        "Launch engine, cold 7-system campaign "
        f"({tree_mis} misconfigurations):\n"
        f"  tree baseline      {tree_time:6.2f}s  "
        f"{tree_throughput:7.1f} misconfigs/s\n"
        f"  compiled+snapshots {new_time:6.2f}s  "
        f"{new_throughput:7.1f} misconfigs/s\n"
        f"  speedup {speedup:.2f}x (floor {SPEEDUP_FLOOR}x); "
        f"boots {stats.boots}, captures {stats.captures}, "
        f"resumes {stats.resumes}"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled launch engine is only {speedup:.2f}x the tree "
        f"baseline (floor {SPEEDUP_FLOOR}x)"
    )


def test_warm_snapshots_amortize_boots(inference):
    """Across a campaign, full boots stay bounded by the unique-config
    count (speculative capture merges probe+capture for most configs)
    while every extra launch of a booting config is a resume."""
    snapshot_cache = SnapshotCache()
    for system in iter_systems(None):
        Campaign(
            system, inference_cache=inference, snapshot_cache=snapshot_cache
        ).run()
    stats = snapshot_cache.boot_stats
    emit(
        f"Snapshot amortization: {stats.boots} boots, "
        f"{stats.captures} captures, {stats.resumes} resumes"
    )
    assert stats.resumes > stats.boots
    assert stats.captures > 0
