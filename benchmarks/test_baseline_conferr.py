"""SPEX-INJ vs the ConfErr baseline (paper §6).

The paper positions SPEX-INJ as complementary to ConfErr: guided by
inferred constraints, its injections are program- and constraint-
specific ("values exactly covering in and out of the specific range"),
while ConfErr makes generic alterations.  The bench measures
vulnerabilities exposed per injection on the OpenLDAP miniature.
"""

from conftest import emit

from repro.inject.conferr import run_conferr_baseline
from repro.inject.reactions import ReactionCategory as RC
from repro.systems import get_system


def test_conferr_vs_spex_guided(benchmark, evaluation):
    system = get_system("openldap")

    def baseline():
        return run_conferr_baseline(system)

    misconfs, verdicts = benchmark.pedantic(baseline, rounds=1, iterations=1)
    baseline_vulns = [v for v in verdicts if v.is_vulnerability]
    baseline_rate = len(baseline_vulns) / max(1, len(misconfs))

    spex_campaign = evaluation.result("openldap").campaign
    spex_vuln_verdicts = [
        v for v in spex_campaign.verdicts if v.is_vulnerability
    ]
    spex_rate = len(spex_vuln_verdicts) / max(
        1, spex_campaign.misconfigurations_tested
    )

    emit(
        "Baseline comparison on openldap-mini:\n"
        f"  ConfErr  : {len(misconfs):3d} injections -> "
        f"{len(baseline_vulns):3d} bad reactions "
        f"({100 * baseline_rate:.0f}% hit rate)\n"
        f"  SPEX-INJ : {spex_campaign.misconfigurations_tested:3d} injections -> "
        f"{len(spex_vuln_verdicts):3d} bad reactions "
        f"({100 * spex_rate:.0f}% hit rate)"
    )
    # The guided injector is more productive per injection...
    assert spex_rate > baseline_rate
    # ...and only SPEX-INJ reaches the crash class on this system:
    # generic typos never produce listener-threads > 16.
    baseline_crashes = [
        v
        for v in baseline_vulns
        if v.reaction.category is RC.CRASH_HANG
    ]
    spex_crashes = [
        v
        for v in spex_vuln_verdicts
        if v.reaction.category is RC.CRASH_HANG
    ]
    assert spex_crashes
    assert len(baseline_crashes) <= len(spex_crashes)
