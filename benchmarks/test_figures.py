"""Figure panels 3, 5, 6, 7: the paper's worked examples, live."""

from conftest import emit


def test_figure3_inference_examples(benchmark, evaluation):
    text = benchmark(evaluation.figure3)
    emit(text)
    assert "<missing" not in text
    assert "log.filesize: 32-bit integer" in text
    assert "ft_stopword_file: FILE" in text
    assert "valid range [4, 255]" in text
    assert "commit_siblings takes effect only when fsync != 0" in text
    assert "ft_max_word_len > ft_min_word_len" in text


def test_figure5_injection_examples(benchmark, evaluation):
    text = benchmark(evaluation.figure5)
    emit(text)
    assert "<no verdict" not in text
    assert "crash/hang" in text  # the MySQL stopword-directory crash
    assert "silent ignorance" in text  # fsync ∧ commit_siblings
    assert "functional failure" in text  # ft_min > ft_max


def test_figure6_errorprone_examples(benchmark, evaluation):
    text = benchmark(evaluation.figure6)
    emit(text)
    assert "innodb_file_format_check" in text
    assert "MaxMemFree=KB" in text
    assert "sscanf" in text


def test_figure7_vulnerability_examples(benchmark, evaluation):
    text = benchmark(evaluation.figure7)
    emit(text)
    assert "<no verdict" not in text
    assert "performance_schema_events_waits_history_size" in text
    assert "ThreadLimit" in text
    assert "virtual_use_local_privs" in text


def test_figure2_listener_threads_crash(benchmark, evaluation):
    """Figure 2's motivating example: listener-threads > 16 segfaults
    with nothing but 'Segmentation fault' on the console."""
    from repro.inject.harness import InjectionHarness
    from repro.systems import get_system

    system = get_system("openldap")
    harness = InjectionHarness(system)
    config = system.default_config.replace(
        "listener-threads 1", "listener-threads 32"
    )
    result = benchmark.pedantic(
        harness.launch, args=(config,), rounds=3, iterations=1
    )
    emit(
        "Figure 2: listener-threads 32 -> "
        f"{result.status.value} ({result.fault_signal}); logs: "
        + "; ".join(r.text for r in result.logs)
    )
    assert result.crashed
    assert result.fault_signal == "SIGSEGV"
    assert any("Segmentation fault" in r.text for r in result.logs)
