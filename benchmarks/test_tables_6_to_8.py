"""Tables 6-8: error-prone configuration design distributions."""

from conftest import emit

from repro.knowledge import Unit


def test_table6_case_sensitivity(benchmark, evaluation):
    table = benchmark(evaluation.table6)
    emit(table)
    by_name = {res.system.name: res.lint.case_sensitivity for res in evaluation.results()}
    # Squid is the only system with a case-sensitive share near half
    # (85 vs 76 in the paper) - everyone else is insensitive-dominant.
    squid = by_name["squid"]
    assert len(squid.sensitive) >= len(squid.insensitive)
    for name in ("storage_a", "apache", "mysql"):
        finding = by_name[name]
        assert finding.inconsistent  # mixed requirements (Figure 6a)
        assert len(finding.insensitive) > len(finding.sensitive)
    # VSFTP and PostgreSQL are fully insensitive/consistent.
    assert not by_name["vsftpd"].sensitive
    assert not by_name["postgresql"].sensitive


def test_table7_units(benchmark, evaluation):
    table = benchmark(evaluation.table7)
    emit(table)
    storage = next(
        res for res in evaluation.results() if res.system.name == "storage_a"
    )
    sizes = storage.lint.units.distribution("size")
    times = storage.lint.units.distribution("time")
    # Storage-A's unit zoo: all four size units and at least four
    # time units in use (B-dominant, like the paper's row).
    assert set(sizes) == {Unit.BYTES, Unit.KILOBYTES, Unit.MEGABYTES, Unit.GIGABYTES}
    assert sizes[Unit.BYTES] == max(sizes.values())
    assert len(times) >= 4
    # ... mitigated by unit-suffix naming (§5.2).
    assert len(storage.lint.units.unit_named) >= 5
    # Apache's KB outlier among byte-sized parameters (Figure 6b).
    apache = next(res for res in evaluation.results() if res.system.name == "apache")
    a_sizes = apache.lint.units.distribution("size")
    assert a_sizes.get(Unit.KILOBYTES) == 1
    assert a_sizes.get(Unit.BYTES, 0) > 1


def test_table8_errorprone(benchmark, evaluation):
    table = benchmark(evaluation.table8)
    emit(table)
    lints = {res.system.name: res.lint for res in evaluation.results()}
    # Squid dominates silent overruling (73 parameters in the paper).
    overruling = {k: len(v.overruling.params) for k, v in lints.items()}
    assert overruling["squid"] == max(overruling.values())
    assert overruling["squid"] >= 5
    # Unsafe transformation APIs: Squid/Storage-A/Apache/VSFTP use
    # them, MySQL/PostgreSQL/OpenLDAP do not (Table 8).
    unsafe = {k: len(v.unsafe.affected) for k, v in lints.items()}
    for name in ("squid", "storage_a", "apache", "vsftpd"):
        assert unsafe[name] > 0, name
    for name in ("mysql", "postgresql", "openldap"):
        assert unsafe[name] == 0, name
    # VSFTP has the most undocumented control dependencies (47).
    undoc_deps = {k: len(v.undocumented.control_deps) for k, v in lints.items()}
    assert undoc_deps["vsftpd"] == max(undoc_deps.values())
