"""Intra-campaign sharding and launch-cache benchmarks.

PR 1 parallelized *across* systems; these benches demonstrate the
next layer down over all seven registered systems:

* intra-campaign thread and process execution (batches of one
  campaign fanned over an executor) produce `Vulnerability` sets
  identical to the serial loop on every system;
* the content-addressed launch cache turns repeated interpreter runs
  into hits - a launch-warm sweep is measurably faster on every
  multi-test system, and the hit counters surface in the
  `PipelineReport`.

Inference is shared across all sweeps (it is executor-independent),
so each sweep times the injection loop, not re-inference; the
thread/process sweeps get *cold* launch caches so the executors do
real concurrent interpreter work.
"""

import os
import time

import pytest

from conftest import emit

from repro.pipeline import CampaignPipeline, PipelineCaches


def _timed(pipeline):
    started = time.perf_counter()
    report = pipeline.run()
    return report, time.perf_counter() - started


@pytest.fixture(scope="module")
def base_caches():
    """Caches with inference pre-warmed for every system, so every
    timed sweep - including the serial reference - measures the
    injection loop only."""
    from repro.inject.campaign import Campaign
    from repro.systems.registry import iter_systems

    caches = PipelineCaches()
    for system in iter_systems(None):
        Campaign(system, inference_cache=caches.inference).run_spex()
    return caches


@pytest.fixture(scope="module")
def cold_serial(base_caches):
    """The reference: one launch-cold serial sweep, every batch in-line."""
    pipeline = CampaignPipeline(caches=base_caches, reuse_campaigns=False)
    report, duration = _timed(pipeline)
    emit(
        f"Intra-campaign serial (cold): {duration:.2f}s, "
        f"{report.total_misconfigurations()} misconfigurations, "
        f"{report.total_vulnerabilities()} vulnerabilities over "
        f"{len(report.runs)} systems"
    )
    return report, duration


def _sharded_sweep(base_caches, batch_executor):
    # Fresh campaign/launch caches, shared inference: the sweep
    # re-executes every campaign and every launch, sharded.
    caches = PipelineCaches(inference=base_caches.inference)
    pipeline = CampaignPipeline(
        caches=caches,
        reuse_campaigns=False,
        batch_executor=batch_executor,
        max_workers=4,
    )
    return _timed(pipeline)


@pytest.mark.parametrize("batch_executor", ["thread", "process"])
def test_intracampaign_sharding_parity(cold_serial, base_caches, batch_executor):
    reference, serial_duration = cold_serial
    report, duration = _sharded_sweep(base_caches, batch_executor)
    assert len(report.runs) == 8
    assert report.vulnerability_sets() == reference.vulnerability_sets()
    assert (
        report.total_misconfigurations()
        == reference.total_misconfigurations()
    )
    per_system = {run.name: run.report.total() for run in report.runs}
    reference_counts = {
        run.name: run.report.total() for run in reference.runs
    }
    assert per_system == reference_counts
    emit(
        f"Intra-campaign {batch_executor} sharding: {duration:.2f}s vs "
        f"serial {serial_duration:.2f}s ({os.cpu_count()} cores), "
        f"identical vulnerability sets across {len(report.runs)} systems"
    )


def test_launch_warm_sweep_speedup_on_multi_test_systems(
    cold_serial, base_caches
):
    cold, cold_duration = cold_serial
    pipeline = CampaignPipeline(caches=base_caches, reuse_campaigns=False)
    warm, duration = _timed(pipeline)
    assert warm.vulnerability_sets() == cold.vulnerability_sets()
    # The warm sweep re-executed every campaign (reuse_campaigns is
    # off) but served every interpreter launch from the cache - the
    # PipelineReport's footer stats carry the evidence.
    launches = warm.cache_stats["launches"]
    assert launches["hits"] > 0
    speedup = cold_duration / max(duration, 1e-9)
    per_system = []
    for cold_run, warm_run in zip(cold.runs, warm.runs):
        per_system.append(
            f"{cold_run.name} {cold_run.duration:.2f}s->"
            f"{warm_run.duration:.3f}s"
        )
        # Every registered system drives a multi-test functional
        # suite; a launch-warm campaign must beat its cold self.  The
        # per-system check only binds where the cold run is big enough
        # for the comparison to be scheduler-noise-proof; the
        # aggregate 2x floor below covers the rest.
        if cold_run.duration > 0.5:
            assert warm_run.duration < cold_run.duration, cold_run.name
    emit(
        f"Launch-cache warm sweep: {cold_duration:.2f}s cold -> "
        f"{duration:.2f}s warm ({speedup:.1f}x); per-system: "
        + "; ".join(per_system)
    )
    assert speedup >= 2.0
