"""Scaling benchmarks for the batched campaign pipeline.

Demonstrates the two throughput claims of the pipeline subsystem over
*all* registered systems:

* a warm (cached) pipeline re-run is at least 2x faster than the cold
  serial sweep - in practice orders of magnitude, since every campaign
  is served from the content-addressed cache;
* every executor (serial, thread, process) produces identical
  vulnerability sets, so parallel speed costs no fidelity.
"""

import time

import pytest

from conftest import emit

from repro.pipeline import CampaignPipeline


def _timed_run(pipeline, **kwargs):
    started = time.perf_counter()
    report = pipeline.run(**kwargs)
    return report, time.perf_counter() - started


@pytest.fixture(scope="module")
def cold_serial():
    """One cold serial sweep over every registered system; the module's
    reference for both the speedup and the parity checks."""
    pipeline = CampaignPipeline(executor="serial")
    report, duration = _timed_run(pipeline)
    return pipeline, report, duration


def test_cached_rerun_at_least_2x_faster(cold_serial):
    pipeline, cold_report, cold_duration = cold_serial
    warm_report, warm_duration = _timed_run(pipeline)

    assert warm_report.cached_count() == len(warm_report.runs)
    assert (
        warm_report.vulnerability_sets() == cold_report.vulnerability_sets()
    )
    assert (
        warm_report.total_misconfigurations()
        == cold_report.total_misconfigurations()
    )
    speedup = cold_duration / max(warm_duration, 1e-9)
    emit(
        f"Pipeline over {len(cold_report.runs)} systems: cold serial "
        f"{cold_duration:.2f}s, cached re-run {warm_duration:.4f}s "
        f"({speedup:.0f}x); {cold_report.total_vulnerabilities()} "
        "vulnerabilities in both"
    )
    assert speedup >= 2.0


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_executor_parity_over_all_systems(cold_serial, executor):
    _, cold_report, cold_duration = cold_serial
    # Worker count defaults to the hardware: on a many-core box the
    # process pool is the fast path, on one core it degrades to
    # roughly serial plus fork overhead - parity must hold either way.
    pipeline = CampaignPipeline(executor=executor)
    report, duration = _timed_run(pipeline)

    assert report.vulnerability_sets() == cold_report.vulnerability_sets()
    counts = {run.name: run.report.total() for run in report.runs}
    cold_counts = {
        run.name: run.report.total() for run in cold_report.runs
    }
    assert counts == cold_counts
    emit(
        f"{executor} executor: {duration:.2f}s vs serial "
        f"{cold_duration:.2f}s, identical vulnerability sets across "
        f"{len(counts)} systems"
    )
