#!/usr/bin/env python3
"""Trace demo: run one injection campaign with spans enabled and emit
the resulting NDJSON trace on stdout.

Installs an `NdjsonSink`-backed tracer as the process tracer, runs a
full vsftpd campaign, and restores the previous tracer.  Each line is
one completed span (children before parents; keys sorted) — pipe it
into `jq` or any NDJSON tool:

    make trace-demo | head
    make trace-demo | python -c "import json,sys; \
        print(max(json.loads(l)['duration'] for l in sys.stdin))"

The span taxonomy is documented in docs/OBSERVABILITY.md.

Run:  python examples/trace_demo.py
"""

import os
import sys

from repro.inject import Campaign
from repro.obs import NdjsonSink, Tracer, set_tracer
from repro.systems import get_system

SYSTEM = "vsftpd"


def main() -> int:
    previous = set_tracer(Tracer(sink=NdjsonSink(sys.stdout)))
    try:
        report = Campaign(get_system(SYSTEM)).run()
    except BrokenPipeError:
        # Downstream (`| head`) closed the pipe mid-trace; swap stdout
        # for devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        set_tracer(previous)
    print(
        f"traced {SYSTEM} campaign: "
        f"{report.misconfigurations_tested} misconfigurations tested, "
        f"{report.total()} vulnerabilities",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
