#!/usr/bin/env python3
"""Regenerate the paper's entire evaluation section (§4).

Runs SPEX, the injection campaigns, the design lint and the
historical-case replay for all seven subject systems and prints every
table (1-12) and figure panel (3, 5, 6, 7) of the paper.

Run:  python examples/reproduce_paper.py          (takes ~30s)
"""

import time

from repro.reporting import Evaluation


def main() -> None:
    started = time.time()
    evaluation = Evaluation.shared()
    print(evaluation.all_tables())
    print()
    print(f"(regenerated in {time.time() - started:.1f}s)")


if __name__ == "__main__":
    main()
