#!/usr/bin/env python3
"""Harden a server against misconfigurations with SPEX-INJ (§3.1).

Runs the full pipeline on the OpenLDAP miniature: infer constraints,
generate misconfigurations that violate them, launch the server under
each one, classify the reactions, and print the error report a
developer would receive - including the Figure 2 crash
(listener-threads > 16 segfaulting with no usable log message).

Run:  python examples/harden_server.py
"""

from repro.inject.campaign import Campaign
from repro.inject.harness import InjectionHarness
from repro.inject.reactions import ReactionCategory
from repro.systems import get_system


def main() -> None:
    system = get_system("openldap")
    print(f"Subject system : {system.display_name} ({system.loc()} LoC)")

    harness = InjectionHarness(system)
    print(f"Baseline sanity: {'PASS' if harness.baseline_ok() else 'FAIL'}")
    print()

    # The Figure 2 motivating example, replayed directly.
    config = system.default_config.replace(
        "listener-threads 1", "listener-threads 32"
    )
    result = harness.launch(config)
    print("Figure 2 replay: listener-threads 32")
    print(f"  status : {result.status.value} ({result.fault_signal})")
    print(f"  logs   : {[r.text for r in result.logs]}")
    print("  -> the only output is the shell's crash notice; nothing")
    print("     points at the parameter. Users report this as a bug.")
    print()

    report = Campaign(system).run()
    print(
        f"Campaign: {report.misconfigurations_tested} misconfigurations "
        f"tested, {report.total()} vulnerabilities exposed, "
        f"{len(report.unique_code_locations())} code locations to patch"
    )
    print()
    print("Error reports (what SPEX-INJ hands the developers):")
    for vuln in report.vulnerabilities:
        print(f"  {vuln.describe()}")
        print(f"      code location: {vuln.code_location}")

    severe = [
        v
        for v in report.vulnerabilities
        if v.category is ReactionCategory.CRASH_HANG
    ]
    print()
    print(f"Severe (crash/hang) vulnerabilities: {len(severe)}")


if __name__ == "__main__":
    main()
