#!/usr/bin/env python3
"""Quickstart: infer configuration constraints from source code.

A minimal end-to-end use of the public API: write a small C-like
program with a configuration mapping table, annotate the mapping
interface (three lines, Figure 4 style), run SPEX, and print the
inferred constraints - including a range, a control dependency and a
value relationship.

Run:  python examples/quickstart.py
"""

from repro.core import SpexEngine
from repro.lang.program import Program

SOURCE = r"""
// A tiny daemon with four configuration parameters.
struct config_int { char *name; int *var; int def; };

int worker_threads = 4;
int queue_low_watermark = 16;
int queue_high_watermark = 256;
int stats_enable = 0;
int stats_interval = 60;

struct config_int options[] = {
    { "worker_threads", &worker_threads, 4 },
    { "queue_low_watermark", &queue_low_watermark, 16 },
    { "queue_high_watermark", &queue_high_watermark, 256 },
    { "stats_enable", &stats_enable, 0 },
    { "stats_interval", &stats_interval, 60 },
};

int start_workers() {
    if (worker_threads < 1) {
        worker_threads = 1;            // silent clamp: range constraint
    } else if (worker_threads > 64) {
        fprintf(stderr, "too many worker threads\n");
        exit(1);                       // invalid region: range constraint
    }
    return worker_threads;
}

int check_queue(int depth) {
    // Both watermarks compared against one intermediate variable:
    // SPEX infers queue_low_watermark < queue_high_watermark.
    if (depth >= queue_low_watermark && depth < queue_high_watermark) {
        return 1;
    }
    return 0;
}

int stats_tick() {
    if (stats_enable != 0) {
        // stats_interval only matters when stats are on: a control
        // dependency (stats_enable, 0, !=) -> stats_interval.
        sleep(stats_interval);
    }
    return 0;
}

int main(int argc, char **argv) {
    start_workers();
    check_queue(32);
    stats_tick();
    return 0;
}
"""

ANNOTATIONS = """
{ @STRUCT = options
  @PAR = [config_int, 1]
  @VAR = [config_int, 2] }
"""


def main() -> None:
    program = Program.from_sources({"daemon.c": SOURCE}, name="quickstart")
    report = SpexEngine(program, ANNOTATIONS).run()

    print(f"Parameters discovered : {sorted(report.parameters)}")
    print(f"Lines of annotation   : {report.lines_of_annotation}")
    print(f"Constraints inferred  : {len(report.constraints)}")
    print()
    for kind, constraints in (
        ("Basic types", report.constraints.basic_types()),
        ("Semantic types", report.constraints.semantic_types()),
        ("Ranges", report.constraints.ranges()),
        ("Control dependencies", report.constraints.control_deps()),
        ("Value relationships", report.constraints.value_rels()),
    ):
        print(f"{kind}:")
        for constraint in constraints:
            print(f"  - {constraint.describe()}")
        print()


if __name__ == "__main__":
    main()
