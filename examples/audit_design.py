#!/usr/bin/env python3
"""Audit configuration design for error-prone patterns (§3.2).

Runs the five design-lint detectors over the Squid and Apache
miniatures and prints the Figure 6-class findings: case-sensitivity
inconsistency, unit-granularity inconsistency, silent overruling,
unsafe transformation APIs, and undocumented constraints.

Run:  python examples/audit_design.py
"""

from repro.inject.campaign import Campaign
from repro.lint import lint_system
from repro.systems import get_system


def audit(name: str) -> None:
    system = get_system(name)
    spex = Campaign(system).run_spex()
    lint = lint_system(system, spex)

    print(f"=== {system.display_name} ===")
    cs = lint.case_sensitivity
    verdict = "INCONSISTENT" if cs.inconsistent else "consistent"
    print(f"Case sensitivity: {len(cs.sensitive)} sensitive vs "
          f"{len(cs.insensitive)} insensitive -> {verdict}")
    if cs.inconsistent:
        print(f"  fix candidates (minority side): {cs.minority}")

    for dimension in ("size", "time"):
        dist = lint.units.distribution(dimension)
        if not dist:
            continue
        text = ", ".join(f"{n} in {u}" for u, n in sorted(dist.items(), key=str))
        flag = " <- INCONSISTENT" if len(dist) > 1 else ""
        print(f"Units ({dimension}): {text}{flag}")

    if lint.overruling.params:
        print(f"Silently overruled parameters (Figure 6c): "
              f"{', '.join(lint.overruling.params)}")
    if lint.unsafe.affected:
        apis = sorted({a for s in lint.unsafe.params.values() for a in s})
        print(f"Unsafe transformation APIs ({', '.join(apis)}) behind "
              f"{len(lint.unsafe.affected)} parameters")
    undoc = lint.undocumented
    print(f"Undocumented constraints: {len(undoc.ranges)} ranges, "
          f"{len(undoc.control_deps)} control deps, "
          f"{len(undoc.value_rels)} value relationships")
    print(f"Total error-prone findings: {lint.error_prone_count()}")
    print()


def main() -> None:
    for name in ("squid", "apache"):
        audit(name)


if __name__ == "__main__":
    main()
