"""Process-level run results: what SPEX-INJ's harness observes."""

from __future__ import annotations

import enum
import functools
import re
from dataclasses import dataclass, field

from repro.lang.program import Program
from repro.lang.source import Location
from repro.runtime.codegen import codegen_plan_for
from repro.runtime.compile import plan_for
from repro.runtime.faults import ExitProcess, HangFault, MachineFault
from repro.runtime.interpreter import Interpreter, InterpreterOptions
from repro.runtime.os_model import EmulatedOS, LogRecord


class ProcessStatus(enum.Enum):
    EXITED = "exited"
    CRASHED = "crashed"
    HUNG = "hung"


@functools.lru_cache(maxsize=1024)
def _word_pattern(needle: str) -> "re.Pattern[str]":
    """Compiled word-bounded search pattern for one needle.

    Pinpointing probes the same handful of needles (parameter names,
    injected values, "line N") against every launch of a campaign;
    the LRU makes the compile per-needle instead of per-call.
    """
    return re.compile(
        r"(?<![0-9A-Za-z_])" + re.escape(needle) + r"(?![0-9A-Za-z_])",
        re.IGNORECASE,
    )


@dataclass
class ProcessResult:
    """Externally observable outcome of one subject-system run."""

    status: ProcessStatus
    exit_code: int | None = None
    fault_signal: str | None = None
    fault_reason: str | None = None
    fault_location: Location | None = None
    logs: list[LogRecord] = field(default_factory=list)
    responses: list[str] = field(default_factory=list)
    steps: int = 0
    interpreter: Interpreter | None = None
    # Memo of the joined log text, keyed by the log list's identity and
    # length so appends (and list replacement) invalidate it.
    _log_text: str | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _log_text_key: tuple[int, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def crashed(self) -> bool:
        return self.status is ProcessStatus.CRASHED

    @property
    def hung(self) -> bool:
        return self.status is ProcessStatus.HUNG

    @property
    def exited_ok(self) -> bool:
        return self.status is ProcessStatus.EXITED and self.exit_code == 0

    def log_text(self) -> str:
        key = (id(self.logs), len(self.logs))
        if self._log_text is None or self._log_text_key != key:
            self._log_text = "\n".join(
                f"[{r.stream}] {r.text}" for r in self.logs
            )
            self._log_text_key = key
        return self._log_text

    def logs_mention_word(self, needle: str) -> bool:
        """Case-insensitive log search where the match must not sit
        inside a longer alphanumeric token: "line 1" does not match
        "line 12", and an injected value of "10" does not match
        "3100".  The only log-matching API on purpose - a plain
        substring variant gave pinpointing false credit (a 2-character
        value matches almost any log line)."""
        if not needle:
            return False
        pattern = _word_pattern(needle)
        return any(pattern.search(record.text) for record in self.logs)


def capture_outcome(interp: Interpreter, thunk) -> ProcessResult:
    """Run `thunk` (which drives `interp`) and capture the process
    outcome - the single fault-to-result mapping shared by the plain
    launch path below and the warm-boot paths in
    `repro.runtime.snapshot`."""
    os_model = interp.os
    try:
        code = thunk()
        result = ProcessResult(status=ProcessStatus.EXITED, exit_code=code)
    except MachineFault as fault:
        os_model.log("console", fault.console_message)
        result = ProcessResult(
            status=ProcessStatus.CRASHED,
            fault_signal=fault.signal_name,
            fault_reason=fault.reason,
            fault_location=fault.location,
        )
    except HangFault as hang:
        result = ProcessResult(
            status=ProcessStatus.HUNG,
            fault_reason=hang.reason,
        )
    except ExitProcess as exit_:
        result = ProcessResult(status=ProcessStatus.EXITED, exit_code=exit_.code)
    result.logs = list(os_model.logs)
    result.responses = list(os_model.responses)
    result.steps = interp.steps
    result.interpreter = interp
    return result


def run_program(
    program: Program,
    os_model: EmulatedOS | None = None,
    argv: list[str] | None = None,
    options: InterpreterOptions | None = None,
    plan=None,
) -> ProcessResult:
    """Execute a program's main() and capture the process outcome.

    With `options.engine == "compiled"` (the default) the program's
    memoized `LaunchPlan` executes the function bodies; with
    `"codegen"` its generated-source `CodegenPlan` does.  Pass a
    `plan` explicitly only to share a pre-fetched plan on a hot path.
    """
    os_model = os_model if os_model is not None else EmulatedOS()
    options = options if options is not None else InterpreterOptions()
    if plan is None:
        if options.engine == "compiled":
            plan = plan_for(program)
        elif options.engine == "codegen":
            plan = codegen_plan_for(program)
    interp = Interpreter(program, os_model, options, plan=plan)
    return capture_outcome(interp, lambda: interp.run_main(argv))
