"""Closure compilation of MiniC programs - the launch engine's layer 1.

The tree-walking interpreter re-dispatches on ``type(node)`` through
``_STMT_DISPATCH``/``_EXPR_DISPATCH`` dict lookups for every statement
and expression of every launch.  ``compile_program`` lowers a linked
:class:`~repro.lang.program.Program` **once** into bound Python
closures: each AST node becomes a closure with its children, operator,
literal value, callee and location already resolved into closure
cells, so executing a statement is one Python call instead of a
dispatch chain.  The per-statement step-budget check (`_tick`) is
folded directly into the compiled statement closures.

Plans are memoized per ``Program`` (piggybacking on
``SubjectSystem.program()`` memoization): every launch of a system
shares one compile.  A ``Program`` is treated as immutable once
compiled - ``add_source`` after ``plan_for`` is outside the contract
(call bindings would go stale).

Parity contract: a compiled run is bit-identical to a tree-walking run
- same results, logs, responses, `steps` counts, and step-sensitive
faults.  Value-level semantics (`binop`, `deref_value`, `index_value`,
`cast_value`, ...) are shared module functions in
`repro.runtime.interpreter`, so only control flow and dispatch are
re-stated here; the differential parity suite
(`tests/runtime/test_engine_parity.py`) enforces the rest.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    BoolLiteral,
    Break,
    Call,
    CallIndirect,
    Cast,
    CharLiteral,
    Conditional,
    Continue,
    DoWhile,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    Identifier,
    If,
    IncDec,
    Index,
    InitList,
    IntLiteral,
    Member,
    NullLiteral,
    Return,
    SizeOf,
    Stmt,
    StringLiteral,
    Switch,
    Unary,
    VarDecl,
    While,
)
from repro.lang import types as ct
from repro.lang.program import Program
from repro.runtime.builtins import REGISTRY
from repro.runtime.faults import (
    HangFault,
    SegmentationFault,
    StackOverflowFault,
)
from repro.runtime.interpreter import (
    Frame,
    InterpreterError,
    _BreakSignal,
    _ContinueSignal,
    _int_of,
    _ReturnSignal,
    _StaticMarker,
    _values_equal,
    binop,
    cast_value,
    deref_value,
    index_slot,
    index_value,
    sizeof_value,
    struct_from,
)
from repro.runtime.values import (
    ArrayValue,
    ElemSlot,
    FieldSlot,
    FunctionRef,
    Pointer,
    coerce,
    truthy,
    zero_value,
)

# Unique "absent" sentinel for single-probe dict lookups (a MiniC
# variable can legitimately hold any Python value, including None).
_MISSING = object()


@dataclass
class LaunchPlan:
    """One program's compiled form, shared by all of its launches.

    `bodies` maps function name -> body runner (``fn(rt) -> None``,
    raising `_ReturnSignal` for explicit returns); `main_steps` holds
    main's *top-level* statement closures individually, so the
    warm-boot snapshot engine (`repro.runtime.snapshot`) can execute
    and checkpoint between them.

    `globals_pure` is true when no global initializer contains a call:
    then the post-global-init interpreter state is a pure function of
    the program (no OS reads, no ticks), and the snapshot engine fills
    `globals_template` with a privatized, purity-scanned state bundle
    (`snapshot.StateBundleCopier`) so later launches restore
    copy-on-write instead of re-running `_init_globals`.
    """

    program: Program
    bodies: dict[str, Callable]
    main_steps: tuple
    globals_pure: bool = False
    globals_template: object = None


_PLANS_LOCK = threading.Lock()


def plan_for(program: Program) -> LaunchPlan:
    """The memoized compiled plan of a program (compiles on first use).

    The plan is stored on the `Program` instance itself, so its
    lifetime piggybacks on `SubjectSystem.program()` memoization: all
    launches of a registered system share one compile, and the plan
    dies with the program.
    """
    plan = getattr(program, "_launch_plan", None)
    if plan is None:
        with _PLANS_LOCK:
            plan = getattr(program, "_launch_plan", None)
            if plan is None:
                plan = compile_program(program)
                program._launch_plan = plan
    return plan


def compile_program(program: Program) -> LaunchPlan:
    """Lower every function body of a program into closures."""
    compiler = _Compiler(program)
    bodies: dict[str, Callable] = {}
    runners: dict[str, Callable] = {}
    main_steps: tuple = ()
    for name, fn in program.functions.items():
        if fn.body is None:
            continue
        steps = tuple(compiler.stmt(s) for s in fn.body.statements)
        runner = _body_runner(steps)
        bodies[name] = runner
        runners[name] = runner
        if name == "main":
            main_steps = steps
    # Second pass: fill the invoke cells compiled `Call` closures read
    # through, now that every body runner exists (recursion and
    # forward calls need the two-phase wiring).
    for name, cell in compiler.invoke_cells.items():
        fn = program.functions[name]
        cell[0] = _compile_invoke(fn, runners[name])
    return LaunchPlan(
        program=program,
        bodies=bodies,
        main_steps=main_steps,
        globals_pure=_globals_are_pure(program),
    )


def _globals_are_pure(program: Program) -> bool:
    """No global initializer contains a (direct or indirect) call -
    the precondition for sharing one post-global-init state template
    across launches."""
    return not any(
        decl.init is not None and _contains_call(decl.init)
        for decl in program.globals.values()
    )


def _contains_call(expr: Expr) -> bool:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (Call, CallIndirect)):
            return True
        if not isinstance(node, Expr):
            continue
        for field_info in dataclass_fields(node):
            value = getattr(node, field_info.name)
            if isinstance(value, Expr):
                stack.append(value)
            elif isinstance(value, list):
                stack.extend(v for v in value if isinstance(v, Expr))
    return False


def _compile_invoke(fn, body_runner: Callable) -> Callable:
    """The compiled call protocol of one function.

    Mirrors `Interpreter.call_function` (depth check, frame setup,
    parameter coercion, return coercion, frame pop) with the
    per-function facts - parameter list, variadic flag, return type,
    and the return type's zero - resolved at compile time.
    """
    fname = fn.name
    floc = fn.location
    rtype = fn.return_type
    params = tuple((p.name, p.type) for p in fn.params)
    nparams = len(params)
    variadic = fn.variadic
    # `zero_value` yields a fresh mutable object only for array types;
    # every other return type's zero is an immutable constant.
    dynamic_zero = isinstance(rtype, ct.ArrayType)
    zero_const = None if dynamic_zero else zero_value(rtype)

    def invoke(rt, args):
        frames = rt.frames
        if len(frames) >= rt._max_call_depth:
            raise StackOverflowFault(f"call depth exceeded in {fname}", floc)
        frame = Frame(function=fname)
        local_env = frame.locals
        local_types = frame.local_types
        if len(args) == nparams:
            for (pname, ptype), value in zip(params, args):
                local_env[pname] = coerce(ptype, value)
                local_types[pname] = ptype
        else:
            nargs = len(args)
            for i, (pname, ptype) in enumerate(params):
                value = args[i] if i < nargs else zero_value(ptype)
                local_env[pname] = coerce(ptype, value)
                local_types[pname] = ptype
        if variadic:
            local_env["__varargs"] = list(args[nparams:])
        frames.append(frame)
        try:
            body_runner(rt)
            result = zero_value(rtype) if dynamic_zero else zero_const
        except _ReturnSignal as ret:
            result = coerce(rtype, ret.value)
        finally:
            frames.pop()
        return result

    return invoke


def _body_runner(steps: tuple) -> Callable:
    """A function body: its statements in order, un-ticked as a unit
    (each statement closure ticks itself, exactly like `exec_block`
    routing every child through `exec_stmt`)."""
    if len(steps) == 1:
        return steps[0]

    def run(rt):
        for step in steps:
            step(rt)

    return run


def _budget(rt):
    raise HangFault(f"step budget exceeded ({rt._max_steps} steps)")


def _incdec_fallback(rt, name, operand_loc, loc, delta, prefix):
    """++/-- on a name that is not a local: errno, a global, or an
    undefined-variable error - the tree-walker's slot path verbatim."""
    slot = rt._name_slot(name, operand_loc)
    old = slot.get(loc)
    if not isinstance(old, (int, float)):
        raise SegmentationFault(f"++/-- on non-number {old!r}", loc)
    slot.set(old + delta, loc)
    return slot.get(loc) if prefix else old


class _Compiler:
    """Per-program AST -> closure lowering.

    Compile methods return closures taking the running `Interpreter`
    (`rt`) as their only argument; statement closures include the
    statement-dispatch tick the tree-walker pays in `exec_stmt`.
    """

    def __init__(self, program: Program):
        self.program = program
        # name -> one-element list; `Call` closures read `cell[0]` at
        # call time, `compile_program` fills the cells once every body
        # runner exists.
        self.invoke_cells: dict[str, list] = {}

    def _invoke_cell(self, name: str) -> list:
        cell = self.invoke_cells.get(name)
        if cell is None:
            cell = self.invoke_cells[name] = [None]
        return cell

    # -- dispatch -----------------------------------------------------------

    def stmt(self, node: Stmt) -> Callable:
        method = self._STMT.get(type(node))
        if method is None:
            # Mirror the tree-walker: unknown nodes fail when (and only
            # when) executed, with the same message.
            kind = type(node).__name__

            def step(rt):
                raise InterpreterError(f"unhandled statement {kind}")

            return step
        return method(self, node)

    def expr(self, node: Expr) -> Callable:
        method = self._EXPR.get(type(node))
        if method is None:
            kind = type(node).__name__

            def ev(rt):
                raise InterpreterError(f"unhandled expression {kind}")

            return ev
        return method(self, node)

    # -- statements ---------------------------------------------------------

    def _c_expr_stmt(self, node: ExprStmt) -> Callable:
        ev = self.expr(node.expr)

        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            ev(rt)

        return step

    def _c_var_decl(self, node: VarDecl) -> Callable:
        name, typ, init = node.name, node.type, node.init
        if init is None:
            make = None
        elif isinstance(init, InitList):
            # Brace initializers reuse the interpreter's materializer
            # (rare in function bodies, and it already matches the
            # tree-walker by definition).
            def make(rt):
                return rt._materialize(typ, init)

        else:
            ev = self.expr(init)

            def make(rt):
                return coerce(typ, ev(rt))

        if node.is_static:

            def step(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt._max_steps:
                    _budget(rt)
                frame = rt.frames[-1]
                key = (frame.function, name)
                if key not in rt.statics:
                    rt.static_types[key] = typ
                    if make is not None:
                        rt.statics[key] = make(rt)
                    else:
                        rt.statics[key] = rt._zero_for(typ)
                frame.local_types[name] = typ
                frame.locals[name] = _StaticMarker(key)

            return step

        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            frame = rt.frames[-1]
            frame.local_types[name] = typ
            if make is not None:
                frame.locals[name] = make(rt)
            else:
                frame.locals[name] = rt._zero_for(typ)

        return step

    def _c_block(self, node: Block) -> Callable:
        inner = tuple(self.stmt(s) for s in node.statements)

        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            for s in inner:
                s(rt)

        return step

    def _c_if(self, node: If) -> Callable:
        cond = self.expr(node.cond)
        then = self.stmt(node.then)
        other = self.stmt(node.other) if node.other is not None else None
        if other is None:

            def step(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt._max_steps:
                    _budget(rt)
                value = cond(rt)
                if (value != 0) if type(value) is int else truthy(value):
                    then(rt)

            return step

        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            value = cond(rt)
            if (value != 0) if type(value) is int else truthy(value):
                then(rt)
            else:
                other(rt)

        return step

    def _c_while(self, node: While) -> Callable:
        cond = self.expr(node.cond)
        body = self.stmt(node.body)

        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            while True:
                rt.steps = steps = rt.steps + 1
                if steps > rt._max_steps:
                    _budget(rt)
                value = cond(rt)
                if not ((value != 0) if type(value) is int else truthy(value)):
                    return
                try:
                    body(rt)
                except _BreakSignal:
                    return
                except _ContinueSignal:
                    continue

        return step

    def _c_do_while(self, node: DoWhile) -> Callable:
        cond = self.expr(node.cond)
        body = self.stmt(node.body)

        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            while True:
                rt.steps = steps = rt.steps + 1
                if steps > rt._max_steps:
                    _budget(rt)
                try:
                    body(rt)
                except _BreakSignal:
                    return
                except _ContinueSignal:
                    pass
                value = cond(rt)
                if not ((value != 0) if type(value) is int else truthy(value)):
                    return

        return step

    def _c_for(self, node: For) -> Callable:
        init = self.stmt(node.init) if node.init is not None else None
        cond = self.expr(node.cond) if node.cond is not None else None
        advance = self.expr(node.step) if node.step is not None else None
        body = self.stmt(node.body)

        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            if init is not None:
                init(rt)
            while True:
                rt.steps = steps = rt.steps + 1
                if steps > rt._max_steps:
                    _budget(rt)
                if cond is not None:
                    value = cond(rt)
                    if not (
                        (value != 0) if type(value) is int else truthy(value)
                    ):
                        return
                try:
                    body(rt)
                except _BreakSignal:
                    return
                except _ContinueSignal:
                    pass
                if advance is not None:
                    advance(rt)

        return step

    def _c_switch(self, node: Switch) -> Callable:
        subject = self.expr(node.subject)
        arms = tuple(
            (
                self.expr(case.value) if case.value is not None else None,
                tuple(self.stmt(s) for s in case.body),
            )
            for case in node.cases
        )

        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            value = subject(rt)
            start = None
            default = None
            for i, (case_value, _) in enumerate(arms):
                if case_value is None:
                    default = i
                elif _values_equal(value, case_value(rt)):
                    start = i
                    break
            if start is None:
                start = default
            if start is None:
                return
            try:
                for _, body in arms[start:]:
                    for s in body:
                        s(rt)
            except _BreakSignal:
                return

        return step

    def _c_break(self, node: Break) -> Callable:
        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            raise _BreakSignal()

        return step

    def _c_continue(self, node: Continue) -> Callable:
        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            raise _ContinueSignal()

        return step

    def _c_return(self, node: Return) -> Callable:
        ev = self.expr(node.value) if node.value is not None else None
        if ev is None:

            def step(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt._max_steps:
                    _budget(rt)
                raise _ReturnSignal(None)

            return step

        def step(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            raise _ReturnSignal(ev(rt))

        return step

    # -- lvalues ------------------------------------------------------------

    def slot(self, node: Expr) -> Callable:
        if isinstance(node, Identifier):
            name, loc = node.name, node.location

            def resolve(rt):
                return rt._name_slot(name, loc)

            return resolve
        if isinstance(node, Member):
            base = self.expr(node.base)
            fname, loc = node.field_name, node.location

            def resolve(rt):
                return FieldSlot(struct_from(base(rt), fname, loc), fname)

            return resolve
        if isinstance(node, Index):
            base = self.expr(node.base)
            index = self.expr(node.index)
            loc = node.location

            def resolve(rt):
                return index_slot(base(rt), index(rt), loc)

            return resolve
        if isinstance(node, Unary) and node.op == "*":
            operand = self.expr(node.operand)
            loc = node.location

            def resolve(rt):
                target = operand(rt)
                if target is None:
                    raise SegmentationFault("NULL pointer dereference", loc)
                if isinstance(target, Pointer):
                    return target.slot
                if isinstance(target, ArrayValue):
                    return ElemSlot(target, 0)
                raise SegmentationFault(
                    f"dereferencing non-pointer {target!r}", loc
                )

            return resolve
        loc = node.location

        def resolve(rt):
            raise InterpreterError(f"{loc}: expression is not assignable")

        return resolve

    # -- expressions --------------------------------------------------------

    def _c_literal(self, node) -> Callable:
        value = node.value
        return lambda rt: value

    def _c_bool(self, node: BoolLiteral) -> Callable:
        value = 1 if node.value else 0
        return lambda rt: value

    def _c_null(self, node: NullLiteral) -> Callable:
        return lambda rt: None

    def _c_identifier(self, node: Identifier) -> Callable:
        name, loc = node.name, node.location
        # A program is immutable once compiled, so whether the name
        # can denote a function is a compile-time fact.
        is_function = (
            self.program.has_function(name) or name in self.program.prototypes
        )

        def ev(rt):
            frames = rt.frames
            if frames:
                value = frames[-1].locals.get(name, _MISSING)
                if value is not _MISSING:
                    if type(value) is _StaticMarker:
                        return rt.statics[value.key]
                    return value
            if name == "errno":
                return rt.errno
            value = rt.globals.get(name, _MISSING)
            if value is not _MISSING:
                return value
            if is_function:
                # A fresh ref per evaluation, like the tree-walker
                # (function-ref equality is identity-based).
                return FunctionRef(name)
            raise InterpreterError(f"{loc}: undefined identifier {name!r}")

        return ev

    def _c_unary(self, node: Unary) -> Callable:
        op, loc = node.op, node.location
        if op == "&":
            resolve = self.slot(node.operand)
            return lambda rt: Pointer(resolve(rt))
        operand = self.expr(node.operand)
        if op == "*":
            return lambda rt: deref_value(operand(rt), loc)
        if op == "!":
            return lambda rt: 0 if truthy(operand(rt)) else 1
        if op == "-":

            def ev(rt):
                value = operand(rt)
                if isinstance(value, (int, float)):
                    return -value
                raise SegmentationFault(f"negating non-number {value!r}", loc)

            return ev
        if op == "~":
            return lambda rt: ~_int_of(operand(rt), loc)

        def ev(rt):
            raise InterpreterError(f"unhandled unary {op}")

        return ev

    def _c_incdec(self, node: IncDec) -> Callable:
        loc = node.location
        delta = 1 if node.op == "++" else -1
        prefix = node.prefix
        if isinstance(node.operand, Identifier):
            # Loop counters are the hottest ++/-- by far: inline the
            # name slot (mirroring `_name_slot` + `VarSlot` get/set,
            # including the declared-type coercion on write).
            name = node.operand.name
            operand_loc = node.operand.location

            def ev(rt):
                frames = rt.frames
                if frames:
                    frame = frames[-1]
                    local_env = frame.locals
                    current = local_env.get(name, _MISSING)
                    if current is not _MISSING:
                        if type(current) is _StaticMarker:
                            key = current.key
                            env = rt.statics
                            slot_key = key
                            typ = rt.static_types.get(key)
                            current = env[slot_key]
                        else:
                            env = local_env
                            slot_key = name
                            typ = frame.local_types.get(name)
                        if type(current) is int:
                            if typ is None:
                                env[slot_key] = new = current + delta
                            elif type(typ) is ct.IntType:
                                env[slot_key] = new = typ.wrap(
                                    current + delta
                                )
                            else:
                                env[slot_key] = new = coerce(
                                    typ, current + delta
                                )
                            return new if prefix else current
                        if not isinstance(current, (int, float)):
                            raise SegmentationFault(
                                f"++/-- on non-number {current!r}", loc
                            )
                        env[slot_key] = coerce(typ, current + delta)
                        return env[slot_key] if prefix else current
                return _incdec_fallback(rt, name, operand_loc, loc, delta, prefix)

            return ev
        resolve = self.slot(node.operand)

        def ev(rt):
            slot = resolve(rt)
            old = slot.get(loc)
            if not isinstance(old, (int, float)):
                raise SegmentationFault(f"++/-- on non-number {old!r}", loc)
            slot.set(old + delta, loc)
            return slot.get(loc) if prefix else old

        return ev

    def _c_binary(self, node: Binary) -> Callable:
        op, loc = node.op, node.location
        if op == "&&":
            left = self.expr(node.left)
            right = self.expr(node.right)

            def ev(rt):
                if not truthy(left(rt)):
                    return 0
                return 1 if truthy(right(rt)) else 0

            return ev
        if op == "||":
            left = self.expr(node.left)
            right = self.expr(node.right)

            def ev(rt):
                if truthy(left(rt)):
                    return 1
                return 1 if truthy(right(rt)) else 0

            return ev
        left = self.expr(node.left)
        right = self.expr(node.right)
        # Equality goes straight to the shared value comparison.
        if op == "==":

            def ev(rt):
                return 1 if _values_equal(left(rt), right(rt)) else 0

            return ev
        if op == "!=":

            def ev(rt):
                return 0 if _values_equal(left(rt), right(rt)) else 1

            return ev
        # Int/int fast paths for the hottest arithmetic/ordering ops;
        # anything else falls back to the shared `binop` (which, for
        # two ints, computes exactly the fast-path result).  `type(x)
        # is int` deliberately excludes bool so the fallback keeps its
        # normalization duties.
        if op == "+":

            def ev(rt):
                lhs = left(rt)
                rhs = right(rt)
                if type(lhs) is int and type(rhs) is int:
                    return lhs + rhs
                return binop("+", lhs, rhs, loc)

            return ev
        if op == "-":

            def ev(rt):
                lhs = left(rt)
                rhs = right(rt)
                if type(lhs) is int and type(rhs) is int:
                    return lhs - rhs
                return binop("-", lhs, rhs, loc)

            return ev
        if op == "<":

            def ev(rt):
                lhs = left(rt)
                rhs = right(rt)
                if type(lhs) is int and type(rhs) is int:
                    return 1 if lhs < rhs else 0
                return binop("<", lhs, rhs, loc)

            return ev
        if op == ">":

            def ev(rt):
                lhs = left(rt)
                rhs = right(rt)
                if type(lhs) is int and type(rhs) is int:
                    return 1 if lhs > rhs else 0
                return binop(">", lhs, rhs, loc)

            return ev
        if op == "<=":

            def ev(rt):
                lhs = left(rt)
                rhs = right(rt)
                if type(lhs) is int and type(rhs) is int:
                    return 1 if lhs <= rhs else 0
                return binop("<=", lhs, rhs, loc)

            return ev
        if op == ">=":

            def ev(rt):
                lhs = left(rt)
                rhs = right(rt)
                if type(lhs) is int and type(rhs) is int:
                    return 1 if lhs >= rhs else 0
                return binop(">=", lhs, rhs, loc)

            return ev

        def ev(rt):
            return binop(op, left(rt), right(rt), loc)

        return ev

    def _c_conditional(self, node: Conditional) -> Callable:
        cond = self.expr(node.cond)
        then = self.expr(node.then)
        other = self.expr(node.other)

        def ev(rt):
            return then(rt) if truthy(cond(rt)) else other(rt)

        return ev

    def _c_assign(self, node: Assign) -> Callable:
        if isinstance(node.target, Identifier):
            return self._c_assign_name(node)
        resolve = self.slot(node.target)
        value = self.expr(node.value)
        loc = node.location
        if node.op == "=":

            def ev(rt):
                slot = resolve(rt)
                slot.set(value(rt), loc)
                return slot.get(loc)

            return ev
        sub_op = node.op[:-1]

        def ev(rt):
            slot = resolve(rt)
            rhs = value(rt)
            slot.set(binop(sub_op, slot.get(loc), rhs, loc), loc)
            return slot.get(loc)

        return ev

    def _c_assign_name(self, node: Assign) -> Callable:
        """Assignment to a plain name, with the slot machinery inlined.

        Mirrors `_name_slot` + `VarSlot`/`_ErrnoSlot` set/get exactly:
        name resolution happens *before* the value is evaluated (an
        undefined variable raises without evaluating the right-hand
        side, like `resolve_slot` does), writes coerce through the
        declared type, and the expression's value is the slot re-read
        after the write.
        """
        name = node.target.name
        loc = node.location
        target_loc = node.target.location  # resolve_slot reports here
        value_ev = self.expr(node.value)
        compound = None if node.op == "=" else node.op[:-1]

        def ev(rt):
            frames = rt.frames
            if frames:
                frame = frames[-1]
                local_env = frame.locals
                current = local_env.get(name, _MISSING)
                if current is not _MISSING:
                    if type(current) is _StaticMarker:
                        key = current.key
                        env = rt.statics
                        slot_key = key
                        typ = rt.static_types.get(key)
                    else:
                        env = local_env
                        slot_key = name
                        typ = frame.local_types.get(name)
                    rhs = value_ev(rt)
                    if compound is not None:
                        rhs = binop(compound, env[slot_key], rhs, loc)
                    env[slot_key] = coerce(typ, rhs)
                    return env[slot_key]
            if name == "errno":
                rhs = value_ev(rt)
                if compound is not None:
                    rhs = binop(compound, rt.errno, rhs, loc)
                rt.errno = int(rhs) if isinstance(rhs, (int, float)) else 0
                return rt.errno
            global_env = rt.globals
            if name in global_env:
                typ = rt.global_types.get(name)
                rhs = value_ev(rt)
                if compound is not None:
                    rhs = binop(compound, global_env[name], rhs, loc)
                global_env[name] = coerce(typ, rhs)
                return global_env[name]
            raise InterpreterError(
                f"{target_loc}: undefined variable {name!r}"
            )

        return ev

    def _c_call(self, node: Call) -> Callable:
        callee, loc = node.callee, node.location
        arg_evs = tuple(self.expr(arg) for arg in node.args)
        if self.program.has_function(callee):
            # Pre-bind through an invoke cell: the program's function
            # table is fixed once compiled, so the per-call
            # `has_function` + table lookup + generic `call_function`
            # of the tree-walker fold into one compiled call protocol.
            cell = self._invoke_cell(callee)
            if len(arg_evs) == 0:

                def ev(rt):
                    rt.steps = steps = rt.steps + 1
                    if steps > rt._max_steps:
                        _budget(rt)
                    return cell[0](rt, ())

                return ev
            if len(arg_evs) == 1:
                arg0 = arg_evs[0]

                def ev(rt):
                    rt.steps = steps = rt.steps + 1
                    if steps > rt._max_steps:
                        _budget(rt)
                    return cell[0](rt, (arg0(rt),))

                return ev
            if len(arg_evs) == 2:
                arg0, arg1 = arg_evs

                def ev(rt):
                    rt.steps = steps = rt.steps + 1
                    if steps > rt._max_steps:
                        _budget(rt)
                    return cell[0](rt, (arg0(rt), arg1(rt)))

                return ev

            def ev(rt):
                rt.steps = steps = rt.steps + 1
                if steps > rt._max_steps:
                    _budget(rt)
                return cell[0](rt, [arg(rt) for arg in arg_evs])

            return ev

        # Not a program function at compile time: almost certainly a
        # builtin.  The registry stays late-bound (it is populated at
        # import time but remains extensible), so look the builtin up
        # per call; the miss path falls back to the tree-walker's full
        # resolution for its exact error behaviour.
        registry_get = REGISTRY.get

        def ev(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            args = [arg(rt) for arg in arg_evs]
            builtin = registry_get(callee)
            if builtin is not None:
                return builtin(rt, args, loc)
            return rt._call_builtin_or_user(callee, args, loc)

        return ev

    def _c_call_indirect(self, node: CallIndirect) -> Callable:
        func = self.expr(node.func)
        loc = node.location
        arg_evs = tuple(self.expr(arg) for arg in node.args)

        def ev(rt):
            rt.steps = steps = rt.steps + 1
            if steps > rt._max_steps:
                _budget(rt)
            target = func(rt)
            if target is None:
                raise SegmentationFault(
                    "call through NULL function pointer", loc
                )
            if not isinstance(target, FunctionRef):
                raise SegmentationFault(
                    f"call through non-function value {target!r}", loc
                )
            args = [arg(rt) for arg in arg_evs]
            return rt._call_builtin_or_user(target.name, args, loc)

        return ev

    def _c_member(self, node: Member) -> Callable:
        base = self.expr(node.base)
        fname, loc = node.field_name, node.location

        def ev(rt):
            return struct_from(base(rt), fname, loc).get(fname, loc)

        return ev

    def _c_index(self, node: Index) -> Callable:
        base = self.expr(node.base)
        index = self.expr(node.index)
        loc = node.location

        def ev(rt):
            return index_value(base(rt), index(rt), loc)

        return ev

    def _c_cast(self, node: Cast) -> Callable:
        typ = node.type
        operand = self.expr(node.operand)
        return lambda rt: cast_value(typ, operand(rt))

    def _c_sizeof(self, node: SizeOf) -> Callable:
        # Struct tables are fixed once linked: sizeof is a constant.
        value = sizeof_value(node.type, self.program.structs)
        return lambda rt: value

    def _c_initlist(self, node: InitList) -> Callable:
        items = tuple(self.expr(item) for item in node.items)

        def ev(rt):
            return ArrayValue(None, [item(rt) for item in items])

        return ev

    _STMT = {
        ExprStmt: _c_expr_stmt,
        VarDecl: _c_var_decl,
        Block: _c_block,
        If: _c_if,
        While: _c_while,
        DoWhile: _c_do_while,
        For: _c_for,
        Switch: _c_switch,
        Break: _c_break,
        Continue: _c_continue,
        Return: _c_return,
    }

    _EXPR = {
        IntLiteral: _c_literal,
        FloatLiteral: _c_literal,
        StringLiteral: _c_literal,
        CharLiteral: _c_literal,
        BoolLiteral: _c_bool,
        NullLiteral: _c_null,
        Identifier: _c_identifier,
        Unary: _c_unary,
        IncDec: _c_incdec,
        Binary: _c_binary,
        Conditional: _c_conditional,
        Assign: _c_assign,
        Call: _c_call,
        CallIndirect: _c_call_indirect,
        Member: _c_member,
        Index: _c_index,
        Cast: _c_cast,
        SizeOf: _c_sizeof,
        InitList: _c_initlist,
    }
