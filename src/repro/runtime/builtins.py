"""Emulated C standard library for the MiniC runtime.

Each builtin receives the running interpreter, evaluated argument
values and the call location.  The set mirrors the APIs the SPEX
knowledge base understands (`repro.knowledge.apis`): file, socket,
user, time and string/number-conversion calls, including the *unsafe*
transformation APIs (`atoi`, `sscanf`, `sprintf`) whose C semantics
(silent garbage on bad input, wrap on overflow) are reproduced because
SPEX-INJ relies on them to expose vulnerabilities.
"""

from __future__ import annotations

import re

from repro.runtime.faults import (
    AbortFault,
    ExitProcess,
    SegmentationFault,
)
from repro.runtime.values import (
    ArrayValue,
    SparseArrayValue,
    BoxSlot,
    FileHandle,
    Pointer,
    truthy,
)

ERANGE = 34
ENOENT = 2
EISDIR = 21
EACCES = 13
EADDRINUSE = 98
EINVAL = 22

LONG_MAX = (1 << 63) - 1
LONG_MIN = -(1 << 63)
INT_MAX = (1 << 31) - 1
INT_MIN = -(1 << 31)

# Written into sscanf targets that fail to convert: C leaves them as
# stack garbage, we use a recognizable poison value.
GARBAGE_INT = -858993460


class BuiltinRegistry:
    """Name -> implementation table, extensible per subject system."""

    def __init__(self) -> None:
        self.table: dict[str, object] = {}

    def register(self, name: str):
        def deco(fn):
            self.table[name] = fn
            return fn

        return deco

    def get(self, name: str):
        return self.table.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.table


REGISTRY = BuiltinRegistry()
register = REGISTRY.register


def _as_str(value, location, what="string argument"):
    if value is None:
        raise SegmentationFault(f"NULL passed as {what}", location)
    if isinstance(value, str):
        return value
    if isinstance(value, SparseArrayValue):
        chars = []
        for i in range(min(len(value), 4096)):
            item = value.get(i)
            if not isinstance(item, int) or item == 0:
                break
            chars.append(chr(item & 0xFF))
        return "".join(chars)
    if isinstance(value, ArrayValue):
        chars = []
        for item in value.items:
            if not isinstance(item, int) or item == 0:
                break
            chars.append(chr(item & 0xFF))
        return "".join(chars)
    raise SegmentationFault(f"non-string passed as {what}: {value!r}", location)


def _as_int(value, location, what="integer argument"):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if value is None:
        return 0
    raise SegmentationFault(f"non-integer passed as {what}: {value!r}", location)


# ---------------------------------------------------------------------------
# printf-style formatting
# ---------------------------------------------------------------------------

_FORMAT_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|z)?([diouxXeEfgGscp%])")


def c_format(fmt: str, args: list) -> str:
    """Render a printf-style format with C-ish conversions."""
    out = []
    pos = 0
    arg_i = 0
    for match in _FORMAT_RE.finditer(fmt):
        out.append(fmt[pos : match.start()])
        pos = match.end()
        conv = match.group(1)
        if conv == "%":
            out.append("%")
            continue
        arg = args[arg_i] if arg_i < len(args) else 0
        arg_i += 1
        if conv in "diu":
            out.append(str(_to_int(arg)))
        elif conv in "oxX":
            spec = {"o": "o", "x": "x", "X": "X"}[conv]
            out.append(format(_to_int(arg) & 0xFFFFFFFFFFFFFFFF, spec))
        elif conv in "eEfgG":
            value = float(_to_int(arg)) if isinstance(arg, int) else float(arg or 0.0)
            out.append(format(value, conv.lower() if conv in "eE" else "f"))
        elif conv == "c":
            out.append(chr(_to_int(arg) & 0xFF) if isinstance(arg, int) else str(arg)[:1])
        elif conv == "s":
            out.append("(null)" if arg is None else str(arg))
        elif conv == "p":
            out.append("0x0" if arg is None else f"0x{abs(id(arg)) & 0xFFFFFFFF:x}")
    out.append(fmt[pos:])
    return "".join(out)


def _to_int(value) -> int:
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return int(value)
    return 0


# ---------------------------------------------------------------------------
# String functions
# ---------------------------------------------------------------------------


@register("strcmp")
def _strcmp(interp, args, loc):
    a = _as_str(args[0], loc, "strcmp lhs")
    b = _as_str(args[1], loc, "strcmp rhs")
    return (a > b) - (a < b)


@register("strcasecmp")
def _strcasecmp(interp, args, loc):
    a = _as_str(args[0], loc, "strcasecmp lhs").lower()
    b = _as_str(args[1], loc, "strcasecmp rhs").lower()
    return (a > b) - (a < b)


@register("strncmp")
def _strncmp(interp, args, loc):
    n = _as_int(args[2], loc)
    a = _as_str(args[0], loc)[:n]
    b = _as_str(args[1], loc)[:n]
    return (a > b) - (a < b)


@register("strncasecmp")
def _strncasecmp(interp, args, loc):
    n = _as_int(args[2], loc)
    a = _as_str(args[0], loc)[:n].lower()
    b = _as_str(args[1], loc)[:n].lower()
    return (a > b) - (a < b)


@register("strlen")
def _strlen(interp, args, loc):
    return len(_as_str(args[0], loc, "strlen argument"))


@register("strdup")
def _strdup(interp, args, loc):
    return _as_str(args[0], loc)


@register("strchr")
def _strchr(interp, args, loc):
    s = _as_str(args[0], loc)
    c = chr(_as_int(args[1], loc) & 0xFF)
    idx = s.find(c)
    return None if idx < 0 else s[idx:]


@register("strrchr")
def _strrchr(interp, args, loc):
    s = _as_str(args[0], loc)
    c = chr(_as_int(args[1], loc) & 0xFF)
    idx = s.rfind(c)
    return None if idx < 0 else s[idx:]


@register("strstr")
def _strstr(interp, args, loc):
    s = _as_str(args[0], loc)
    sub = _as_str(args[1], loc)
    idx = s.find(sub)
    return None if idx < 0 else s[idx:]


@register("str_token")
def _str_token(interp, args, loc):
    """MiniC tokenizer: i-th whitespace-separated word, or NULL."""
    s = _as_str(args[0], loc)
    i = _as_int(args[1], loc)
    words = s.split()
    if 0 <= i < len(words):
        return words[i]
    return None


@register("str_token_count")
def _str_token_count(interp, args, loc):
    return len(_as_str(args[0], loc).split())


@register("str_trim")
def _str_trim(interp, args, loc):
    return _as_str(args[0], loc).strip()


@register("str_substr")
def _str_substr(interp, args, loc):
    s = _as_str(args[0], loc)
    start = _as_int(args[1], loc)
    length = _as_int(args[2], loc)
    if start < 0 or start > len(s):
        raise SegmentationFault("str_substr start out of range", loc)
    return s[start : start + max(0, length)]


@register("str_concat")
def _str_concat(interp, args, loc):
    return _as_str(args[0], loc) + _as_str(args[1], loc)


@register("str_lower")
def _str_lower(interp, args, loc):
    return _as_str(args[0], loc).lower()


@register("str_upper")
def _str_upper(interp, args, loc):
    return _as_str(args[0], loc).upper()


@register("toupper")
def _toupper(interp, args, loc):
    c = _as_int(args[0], loc)
    return ord(chr(c & 0xFF).upper())


@register("tolower")
def _tolower(interp, args, loc):
    c = _as_int(args[0], loc)
    return ord(chr(c & 0xFF).lower())


@register("isdigit")
def _isdigit(interp, args, loc):
    c = _as_int(args[0], loc)
    return 1 if chr(c & 0xFF).isdigit() else 0


@register("isalpha")
def _isalpha(interp, args, loc):
    c = _as_int(args[0], loc)
    return 1 if chr(c & 0xFF).isalpha() else 0


@register("isspace")
def _isspace(interp, args, loc):
    c = _as_int(args[0], loc)
    return 1 if chr(c & 0xFF).isspace() else 0


@register("islower")
def _islower(interp, args, loc):
    c = _as_int(args[0], loc)
    return 1 if chr(c & 0xFF).islower() else 0


@register("isupper")
def _isupper(interp, args, loc):
    c = _as_int(args[0], loc)
    return 1 if chr(c & 0xFF).isupper() else 0


# ---------------------------------------------------------------------------
# Conversions (including the deliberately unsafe ones)
# ---------------------------------------------------------------------------

_INT_PREFIX_RE = re.compile(r"\s*([+-]?\d+)")
_FLOAT_PREFIX_RE = re.compile(r"\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)")


@register("atoi")
def _atoi(interp, args, loc):
    """C atoi: leading integer prefix, 0 on garbage, wrap on overflow."""
    s = _as_str(args[0], loc, "atoi argument")
    m = _INT_PREFIX_RE.match(s)
    if not m:
        return 0
    value = int(m.group(1))
    # Overflow is UB; glibc wraps through long, we wrap at 32 bits.
    value &= 0xFFFFFFFF
    if value > INT_MAX:
        value -= 1 << 32
    return value


@register("atol")
def _atol(interp, args, loc):
    s = _as_str(args[0], loc, "atol argument")
    m = _INT_PREFIX_RE.match(s)
    if not m:
        return 0
    value = int(m.group(1)) & 0xFFFFFFFFFFFFFFFF
    if value > LONG_MAX:
        value -= 1 << 64
    return value


@register("atof")
def _atof(interp, args, loc):
    s = _as_str(args[0], loc, "atof argument")
    m = _FLOAT_PREFIX_RE.match(s)
    return float(m.group(1)) if m else 0.0


def _strtol_impl(interp, args, loc, bits):
    s = _as_str(args[0], loc, "strtol argument")
    endp = args[1] if len(args) > 1 else None
    base = _as_int(args[2], loc) if len(args) > 2 else 10

    text = s.lstrip()
    sign = 1
    idx = len(s) - len(text)
    if text[:1] in "+-":
        if text[0] == "-":
            sign = -1
        text = text[1:]
        idx += 1
    if base == 0:
        if text[:2].lower() == "0x":
            base = 16
            text = text[2:]
            idx += 2
        elif text[:1] == "0" and len(text) > 1:
            base = 8
            text = text[1:]
            idx += 1
        else:
            base = 10
    elif base == 16 and text[:2].lower() == "0x":
        text = text[2:]
        idx += 2

    digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:base]
    count = 0
    value = 0
    for ch in text:
        pos = digits.find(ch.lower())
        if pos < 0:
            break
        value = value * base + pos
        count += 1
    idx += count
    value *= sign

    max_v = (1 << (bits - 1)) - 1
    min_v = -(1 << (bits - 1))
    if value > max_v:
        value = max_v
        interp.errno = ERANGE
    elif value < min_v:
        value = min_v
        interp.errno = ERANGE
    if isinstance(endp, Pointer):
        endp.store(s[idx:] if count else s, loc)
    return value


@register("strtol")
def _strtol(interp, args, loc):
    return _strtol_impl(interp, args, loc, 64)


@register("strtoll")
def _strtoll(interp, args, loc):
    return _strtol_impl(interp, args, loc, 64)


@register("strtoul")
def _strtoul(interp, args, loc):
    value = _strtol_impl(interp, args, loc, 64)
    return value & 0xFFFFFFFFFFFFFFFF


@register("strtod")
def _strtod(interp, args, loc):
    s = _as_str(args[0], loc)
    endp = args[1] if len(args) > 1 else None
    m = _FLOAT_PREFIX_RE.match(s)
    if not m:
        if isinstance(endp, Pointer):
            endp.store(s, loc)
        return 0.0
    if isinstance(endp, Pointer):
        endp.store(s[m.end() :], loc)
    return float(m.group(1))


@register("sscanf")
def _sscanf(interp, args, loc):
    """Subset sscanf: %d %i %u %s %f; failed targets get poison garbage."""
    s = _as_str(args[0], loc, "sscanf input")
    fmt = _as_str(args[1], loc, "sscanf format")
    targets = list(args[2:])
    convs = re.findall(r"%[l h]*([dius f])".replace(" ", ""), fmt)
    converted = 0
    rest = s
    for i, conv in enumerate(convs):
        if i >= len(targets):
            break
        target = targets[i]
        ok = False
        value = None
        rest = rest.lstrip()
        if conv in "di":
            m = re.match(r"[+-]?\d+", rest)
            if conv == "i":
                mx = re.match(r"[+-]?0[xX][0-9a-fA-F]+|[+-]?\d+", rest)
                m = mx or m
            if m:
                value = int(m.group(0), 0 if conv == "i" else 10)
                rest = rest[m.end() :]
                ok = True
        elif conv == "u":
            m = re.match(r"\d+", rest)
            if m:
                value = int(m.group(0))
                rest = rest[m.end() :]
                ok = True
        elif conv == "f":
            m = _FLOAT_PREFIX_RE.match(rest)
            if m:
                value = float(m.group(1))
                rest = rest[m.end() :]
                ok = True
        elif conv == "s":
            m = re.match(r"\S+", rest)
            if m:
                value = m.group(0)
                rest = rest[m.end() :]
                ok = True
        if not ok:
            # Conversion failure: C leaves the target holding garbage.
            if isinstance(target, Pointer) and conv != "s":
                target.store(GARBAGE_INT, loc)
            break
        if isinstance(target, Pointer):
            target.store(value, loc)
        converted += 1
    return converted


@register("sprintf")
def _sprintf(interp, args, loc):
    """MiniC sprintf returns the formatted string (asprintf-style).

    Still classified unsafe by the knowledge base: the paper's point
    is about using printf-family formatting on untrusted config input.
    """
    fmt = _as_str(args[0], loc, "sprintf format")
    return c_format(fmt, list(args[1:]))


@register("snprintf")
def _snprintf(interp, args, loc):
    n = _as_int(args[0], loc)
    fmt = _as_str(args[1], loc)
    return c_format(fmt, list(args[2:]))[: max(0, n)]


# ---------------------------------------------------------------------------
# stdio / logging
# ---------------------------------------------------------------------------


@register("printf")
def _printf(interp, args, loc):
    fmt = _as_str(args[0], loc, "printf format")
    text = c_format(fmt, list(args[1:]))
    interp.os.log("stdout", text)
    return len(text)


@register("fprintf")
def _fprintf(interp, args, loc):
    stream = args[0]
    fmt = _as_str(args[1], loc, "fprintf format")
    text = c_format(fmt, list(args[2:]))
    _write_stream(interp, stream, text, loc)
    return len(text)


@register("puts")
def _puts(interp, args, loc):
    interp.os.log("stdout", _as_str(args[0], loc))
    return 0


@register("fputs")
def _fputs(interp, args, loc):
    _write_stream(interp, args[1], _as_str(args[0], loc), loc)
    return 0


@register("perror")
def _perror(interp, args, loc):
    prefix = _as_str(args[0], loc)
    interp.os.log("stderr", f"{prefix}: {_errno_text(interp.errno)}")
    return 0


@register("strerror")
def _strerror(interp, args, loc):
    return _errno_text(_as_int(args[0], loc))


@register("syslog")
def _syslog(interp, args, loc):
    fmt = _as_str(args[1], loc, "syslog format")
    interp.os.log("syslog", c_format(fmt, list(args[2:])))
    return 0


def _errno_text(code: int) -> str:
    return {
        ENOENT: "No such file or directory",
        EISDIR: "Is a directory",
        EACCES: "Permission denied",
        EADDRINUSE: "Address already in use",
        EINVAL: "Invalid argument",
        ERANGE: "Numerical result out of range",
    }.get(code, f"Unknown error {code}")


def _write_stream(interp, stream, text, loc):
    if isinstance(stream, FileHandle):
        if stream.fd == 1:
            interp.os.log("stdout", text)
            return
        if stream.fd == 2:
            interp.os.log("stderr", text)
            return
        node = interp.os.lookup(stream.path)
        if node is not None and not node.is_dir:
            node.content += text
            return
    interp.os.log("stderr", text)


# ---------------------------------------------------------------------------
# Files
# ---------------------------------------------------------------------------

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 64
O_TRUNC = 512
O_APPEND = 1024


@register("open")
def _open(interp, args, loc):
    path = _as_str(args[0], loc, "open path")
    flags = _as_int(args[1], loc) if len(args) > 1 else 0
    node = interp.os.lookup(path)
    wants_write = bool(flags & (O_WRONLY | O_RDWR))
    if node is None:
        if flags & O_CREAT:
            if not interp.os.parent_exists(path):
                interp.errno = ENOENT
                return -1
            node = interp.os.add_file(path)
        else:
            interp.errno = ENOENT
            return -1
    if node.is_dir and wants_write:
        interp.errno = EISDIR
        return -1
    if wants_write and not node.writable:
        interp.errno = EACCES
        return -1
    if flags & O_TRUNC and not node.is_dir:
        node.content = ""
    handle = FileHandle(
        fd=interp.next_fd(),
        path=path,
        mode="w" if wants_write else "r",
        is_dir=node.is_dir,
        lines=node.content.splitlines() if not node.is_dir else [],
    )
    interp.fd_table[handle.fd] = handle
    return handle.fd


@register("fopen")
def _fopen(interp, args, loc):
    path = _as_str(args[0], loc, "fopen path")
    mode = _as_str(args[1], loc, "fopen mode")
    node = interp.os.lookup(path)
    writing = "w" in mode or "a" in mode
    if node is None:
        if not writing:
            interp.errno = ENOENT
            return None
        if not interp.os.parent_exists(path):
            interp.errno = ENOENT
            return None
        node = interp.os.add_file(path)
    if node.is_dir and writing:
        interp.errno = EISDIR
        return None
    if writing and not node.writable:
        interp.errno = EACCES
        return None
    if "w" in mode and not node.is_dir:
        node.content = ""
    handle = FileHandle(
        fd=interp.next_fd(),
        path=path,
        mode=mode,
        is_dir=node.is_dir,
        lines=node.content.splitlines() if not node.is_dir else [],
    )
    interp.fd_table[handle.fd] = handle
    return handle


def _handle_from(interp, value, loc) -> FileHandle | None:
    if isinstance(value, FileHandle):
        return value
    if isinstance(value, int):
        return interp.fd_table.get(value)
    return None


@register("fgets")
def _fgets(interp, args, loc):
    """MiniC line reader: fgets(fp) -> next line without newline, or NULL."""
    handle = _handle_from(interp, args[0], loc)
    if handle is None:
        raise SegmentationFault("fgets on NULL/invalid stream", loc)
    if handle.is_dir or handle.closed:
        interp.errno = EISDIR
        return None
    if handle.read_pos >= len(handle.lines):
        return None
    line = handle.lines[handle.read_pos]
    handle.read_pos += 1
    return line


@register("fread_all")
def _fread_all(interp, args, loc):
    handle = _handle_from(interp, args[0], loc)
    if handle is None:
        raise SegmentationFault("fread_all on NULL/invalid stream", loc)
    if handle.is_dir:
        interp.errno = EISDIR
        return None
    node = interp.os.lookup(handle.path)
    return node.content if node else None


@register("fwrite_str")
def _fwrite_str(interp, args, loc):
    handle = _handle_from(interp, args[0], loc)
    if handle is None:
        raise SegmentationFault("fwrite_str on NULL/invalid stream", loc)
    text = _as_str(args[1], loc)
    node = interp.os.lookup(handle.path)
    if node is None or node.is_dir or not node.writable:
        return -1
    node.content += text
    return len(text)


@register("close")
def _close(interp, args, loc):
    fd = _as_int(args[0], loc)
    handle = interp.fd_table.pop(fd, None)
    if handle:
        handle.closed = True
        return 0
    return -1


@register("fclose")
def _fclose(interp, args, loc):
    handle = _handle_from(interp, args[0], loc)
    if handle is None:
        raise SegmentationFault("fclose on NULL stream", loc)
    handle.closed = True
    interp.fd_table.pop(handle.fd, None)
    return 0


@register("access")
def _access(interp, args, loc):
    path = _as_str(args[0], loc, "access path")
    mode = _as_int(args[1], loc) if len(args) > 1 else 0
    node = interp.os.lookup(path)
    if node is None:
        interp.errno = ENOENT
        return -1
    if mode & 2 and not node.writable:
        interp.errno = EACCES
        return -1
    return 0


@register("file_exists")
def _file_exists(interp, args, loc):
    return 1 if interp.os.exists(_as_str(args[0], loc)) else 0


@register("is_directory")
def _is_directory(interp, args, loc):
    node = interp.os.lookup(_as_str(args[0], loc))
    return 1 if node is not None and node.is_dir else 0


@register("stat_size")
def _stat_size(interp, args, loc):
    node = interp.os.lookup(_as_str(args[0], loc))
    if node is None:
        interp.errno = ENOENT
        return -1
    return len(node.content)


@register("mkdir")
def _mkdir(interp, args, loc):
    path = _as_str(args[0], loc)
    if interp.os.exists(path):
        return -1
    if not interp.os.parent_exists(path):
        interp.errno = ENOENT
        return -1
    interp.os.add_dir(path)
    return 0


@register("unlink")
def _unlink(interp, args, loc):
    path = _as_str(args[0], loc)
    if interp.os.exists(path):
        del interp.os.files[path]
        return 0
    interp.errno = ENOENT
    return -1


@register("chmod")
def _chmod(interp, args, loc):
    node = interp.os.lookup(_as_str(args[0], loc))
    if node is None:
        interp.errno = ENOENT
        return -1
    node.mode = _as_int(args[1], loc) & 0o7777
    return 0


@register("chown_user")
def _chown_user(interp, args, loc):
    node = interp.os.lookup(_as_str(args[0], loc))
    user = _as_str(args[1], loc)
    if node is None or user not in interp.os.users:
        return -1
    node.owner = user
    return 0


@register("check_read_access")
def _check_read_access(interp, args, loc):
    """0 when `user` may read `path` under the emulated ACL model,
    -1 otherwise (missing path included).  Unlike the mode-flag
    `access` builtin this consults owner + permission bits, so subject
    systems can express per-identity requirements."""
    path = _as_str(args[0], loc, "check_read_access path")
    user = _as_str(args[1], loc, "check_read_access user")
    if not interp.os.exists(path):
        interp.errno = ENOENT
        return -1
    if not interp.os.can_read(path, user):
        interp.errno = EACCES
        return -1
    return 0


@register("check_write_access")
def _check_write_access(interp, args, loc):
    path = _as_str(args[0], loc, "check_write_access path")
    user = _as_str(args[1], loc, "check_write_access user")
    if not interp.os.exists(path):
        interp.errno = ENOENT
        return -1
    if not interp.os.can_write(path, user):
        interp.errno = EACCES
        return -1
    return 0


# ---------------------------------------------------------------------------
# Sockets / network
# ---------------------------------------------------------------------------


@register("socket")
def _socket(interp, args, loc):
    return interp.next_fd()


@register("bind")
def _bind(interp, args, loc):
    port = _as_int(args[1], loc)
    rc = interp.os.try_bind(port)
    if rc < 0:
        interp.errno = -rc
        return -1
    return 0


@register("listen")
def _listen(interp, args, loc):
    return 0


@register("setsockopt")
def _setsockopt(interp, args, loc):
    return 0


@register("connect_to")
def _connect_to(interp, args, loc):
    host = _as_str(args[0], loc, "connect host")
    port = _as_int(args[1], loc)
    if interp.os.resolve_host(host) is None:
        interp.errno = EINVAL
        return -1
    if port <= 0 or port > 65535:
        interp.errno = EINVAL
        return -1
    return interp.next_fd()


@register("htons")
def _htons(interp, args, loc):
    return _as_int(args[0], loc) & 0xFFFF


@register("htonl")
def _htonl(interp, args, loc):
    return _as_int(args[0], loc) & 0xFFFFFFFF


@register("inet_addr")
def _inet_addr(interp, args, loc):
    text = _as_str(args[0], loc, "inet_addr argument")
    parts = text.split(".")
    if len(parts) != 4 or not all(p.isdigit() and int(p) <= 255 for p in parts):
        return -1  # INADDR_NONE
    value = 0
    for p in parts:
        value = (value << 8) | int(p)
    return value


@register("inet_pton")
def _inet_pton(interp, args, loc):
    text = _as_str(args[1], loc) if len(args) > 1 else _as_str(args[0], loc)
    parts = text.split(".")
    ok = len(parts) == 4 and all(p.isdigit() and int(p) <= 255 for p in parts)
    return 1 if ok else 0


@register("gethostbyname")
def _gethostbyname(interp, args, loc):
    return interp.os.resolve_host(_as_str(args[0], loc))


@register("getpwnam")
def _getpwnam(interp, args, loc):
    name = _as_str(args[0], loc, "getpwnam argument")
    return name if name in interp.os.users else None


@register("getgrnam")
def _getgrnam(interp, args, loc):
    name = _as_str(args[0], loc, "getgrnam argument")
    return name if name in interp.os.groups else None


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------


@register("time")
def _time(interp, args, loc):
    return int(interp.os.now())


@register("sleep")
def _sleep(interp, args, loc):
    interp.consume_time(_as_int(args[0], loc), loc)
    return 0


@register("usleep")
def _usleep(interp, args, loc):
    interp.consume_time(_as_int(args[0], loc) / 1_000_000.0, loc)
    return 0


@register("sleep_ms")
def _sleep_ms(interp, args, loc):
    interp.consume_time(_as_int(args[0], loc) / 1_000.0, loc)
    return 0


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------

# Allocations beyond ~2 GiB emulate OOM (NULL); big-but-plausible
# requests get a sparse arena instead of a materialized list.
_MALLOC_CAP = (1 << 31) - 1
_DENSE_LIMIT = 1 << 16


def _allocate(n: int):
    if n <= 0 or n > _MALLOC_CAP:
        return None
    if n <= _DENSE_LIMIT:
        return ArrayValue(None, [0] * n)
    return SparseArrayValue(None, n)


@register("malloc")
def _malloc(interp, args, loc):
    return _allocate(_as_int(args[0], loc))


@register("calloc")
def _calloc(interp, args, loc):
    return _allocate(_as_int(args[0], loc) * _as_int(args[1], loc))


@register("free")
def _free(interp, args, loc):
    return 0


@register("memset")
def _memset(interp, args, loc):
    target = args[0]
    if target is None:
        raise SegmentationFault("memset on NULL", loc)
    value = _as_int(args[1], loc)
    n = _as_int(args[2], loc)
    if isinstance(target, SparseArrayValue):
        for i in range(min(n, len(target), 4096)):
            target.cells[i] = value & 0xFF
    elif isinstance(target, ArrayValue):
        for i in range(min(n, len(target.items))):
            target.items[i] = value & 0xFF
    return target


# ---------------------------------------------------------------------------
# Process control
# ---------------------------------------------------------------------------


@register("exit")
def _exit(interp, args, loc):
    raise ExitProcess(_as_int(args[0], loc) if args else 0)


@register("_exit")
def _exit_raw(interp, args, loc):
    raise ExitProcess(_as_int(args[0], loc) if args else 0)


@register("abort")
def _abort(interp, args, loc):
    raise AbortFault("abort() called", loc)


@register("getpid")
def _getpid(interp, args, loc):
    return 4242


@register("daemonize")
def _daemonize(interp, args, loc):
    return 0


@register("signal")
def _signal(interp, args, loc):
    return 0


@register("rand")
def _rand(interp, args, loc):
    interp.rand_state = (interp.rand_state * 1103515245 + 12345) & 0x7FFFFFFF
    return interp.rand_state


@register("assert_nonnull")
def _assert_nonnull(interp, args, loc):
    if not truthy(args[0]):
        raise AbortFault("assertion failed: non-null expected", loc)
    return 0


# ---------------------------------------------------------------------------
# Harness interface (functional test traffic)
# ---------------------------------------------------------------------------


@register("recv_request")
def _recv_request(interp, args, loc):
    return interp.os.next_request()


@register("send_response")
def _send_response(interp, args, loc):
    interp.os.send_response(_as_str(args[0], loc, "send_response argument"))
    return 0


@register("box_new")
def _box_new(interp, args, loc):
    """Allocate one scalar cell and return a pointer to it."""
    return Pointer(BoxSlot(args[0] if args else 0))
