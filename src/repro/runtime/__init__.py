"""Execution substrate for SPEX-INJ.

The paper launches real servers on a testbed and runs their shipped
test suites.  This package is the reproduction's substitute: a MiniC
interpreter over an emulated OS (files, ports, users, clock, request
queue) with a fault model that surfaces exactly the externally
observable behaviours SPEX-INJ classifies - crashes (segfault, abort,
division fault), hangs (step/virtual-time budget), exit codes, log
streams and functional responses.
"""

from repro.runtime.faults import (
    AbortFault,
    DivisionFault,
    ExitProcess,
    HangFault,
    MachineFault,
    SegmentationFault,
)
from repro.runtime.os_model import EmulatedOS, FileNode, LogRecord
from repro.runtime.process import ProcessResult, ProcessStatus, run_program
from repro.runtime.interpreter import Interpreter, InterpreterOptions
from repro.runtime.compile import LaunchPlan, compile_program, plan_for
from repro.runtime.snapshot import (
    BootRecord,
    BootSnapshot,
    BootStats,
    boot_launch,
)

__all__ = [
    "AbortFault",
    "BootRecord",
    "BootSnapshot",
    "BootStats",
    "DivisionFault",
    "EmulatedOS",
    "ExitProcess",
    "FileNode",
    "HangFault",
    "Interpreter",
    "InterpreterOptions",
    "LaunchPlan",
    "LogRecord",
    "MachineFault",
    "ProcessResult",
    "ProcessStatus",
    "SegmentationFault",
    "boot_launch",
    "compile_program",
    "plan_for",
    "run_program",
]
