"""Source-codegen launch engine - the launch engine's layer 3.

The closure engine (`repro.runtime.compile`) already lowered each AST
node into a bound Python closure, but executing a statement still pays
one Python *frame* per node: every child evaluation is a closure call.
This module lowers each linked :class:`~repro.lang.program.Program`
once into real **Python source text** - one generated Python function
per MiniC function, plus one function per top-level statement of
`main` (the snapshot engine's stepwise runners) - compiles it once
with `compile()`/`exec`, and memoizes the resulting plan on the
`Program` instance.  Inside a generated function an entire MiniC
statement is straight-line Python: the step-budget tick, the int fast
paths and the local-variable fast paths are open-coded, so only calls,
builtins and the genuinely polymorphic slow paths leave the frame.

Parity contract: identical to the other two engines - same results,
logs, responses, `steps` counts and step-sensitive faults, enforced
by `tests/runtime/test_engine_parity.py`.  Where semantics are subtle
(evaluation order, re-reads after compound assignment, signal
propagation through loops and switches) the generated code mirrors
`repro.runtime.compile` closure by closure; shared value-level
helpers (`binop`, `coerce`, `_values_equal`, ...) are the very same
module functions, reached through the generated module's namespace.

Generated source is deterministic: the same program text always
produces the same module text (constants are referenced by interned
`_K<n>` names handed to `exec` via the namespace, numbered in
first-encounter order).  `generate_source` exposes the text for the
determinism tests and for human inspection.

This is the only module in the tree allowed to call `exec` (the
`tools/lint.py` exec/eval detector pins that allowlist).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    BoolLiteral,
    Break,
    Call,
    CallIndirect,
    Cast,
    CharLiteral,
    Conditional,
    Continue,
    DoWhile,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    Identifier,
    If,
    IncDec,
    Index,
    InitList,
    IntLiteral,
    Member,
    NullLiteral,
    Return,
    SizeOf,
    StringLiteral,
    Switch,
    Unary,
    VarDecl,
    While,
)
from repro.lang import types as ct
from repro.lang.program import Program
from repro.obs.metrics import get_registry
from repro.runtime.builtins import REGISTRY
from repro.runtime.compile import (
    _MISSING,
    _budget,
    _globals_are_pure,
    _incdec_fallback,
)
from repro.runtime.faults import SegmentationFault, StackOverflowFault
from repro.runtime.interpreter import (
    Frame,
    InterpreterError,
    _BreakSignal,
    _ContinueSignal,
    _int_of,
    _ReturnSignal,
    _StaticMarker,
    _values_equal,
    binop,
    cast_value,
    deref_value,
    index_slot,
    index_value,
    sizeof_value,
    struct_from,
)
from repro.runtime.values import (
    ArrayValue,
    ElemSlot,
    FieldSlot,
    FunctionRef,
    Pointer,
    coerce,
    truthy,
    zero_value,
)

_SOURCE_NAME = "<minic-codegen>"


@dataclass
class CodegenPlan:
    """One program's generated-source form, shared by all launches.

    Duck-type compatible with `repro.runtime.compile.LaunchPlan` where
    the runtime layers care: `bodies` (empty - `invokes` covers every
    defined function through `Interpreter.call_function`'s fast path),
    `main_steps` (the snapshot engine's per-top-level-statement
    runners), and the `globals_pure`/`globals_template` pair the
    warm-boot engine fills.  `source` is the full generated module
    text; `invokes` maps function name -> generated
    ``_fn_<name>(rt, args)``.
    """

    program: Program
    source: str
    invokes: dict
    bodies: dict
    main_steps: tuple
    globals_pure: bool = False
    globals_template: object = None


_PLANS_LOCK = threading.Lock()


def codegen_plan_for(program: Program) -> CodegenPlan:
    """The memoized codegen plan of a program (generates + compiles on
    first use; stored on the `Program` instance like the closure
    engine's plan, so every launch of a registered system shares one
    codegen pass)."""
    plan = getattr(program, "_codegen_plan", None)
    if plan is None:
        with _PLANS_LOCK:
            plan = getattr(program, "_codegen_plan", None)
            if plan is None:
                plan = compile_codegen(program)
                program._codegen_plan = plan
    return plan


def generate_source(program: Program) -> str:
    """The generated module text alone (deterministic per program)."""
    source, _consts, _step_names = _emit_module(program)
    return source


def compile_codegen(program: Program) -> CodegenPlan:
    """Generate, `compile()` and `exec` a program's Python module."""
    source, consts, step_names = _emit_module(program)
    namespace = dict(_NAMESPACE)
    namespace.update(consts)
    code = compile(source, _SOURCE_NAME, "exec")
    exec(code, namespace)  # the one sanctioned exec (see tools/lint.py)
    invokes = {
        name: namespace[f"_fn_{name}"]
        for name, fn in program.functions.items()
        if fn.body is not None
    }
    main_steps = tuple(namespace[name] for name in step_names)
    registry = get_registry()
    registry.inc("launch.codegen_compiles")
    registry.inc("launch.codegen_functions", len(invokes))
    registry.inc("launch.codegen_source_bytes", len(source))
    return CodegenPlan(
        program=program,
        source=source,
        invokes=invokes,
        bodies={},
        main_steps=main_steps,
        globals_pure=_globals_are_pure(program),
    )


# -- runtime helpers reached from generated code ------------------------------
#
# Each mirrors one slow path of the closure engine verbatim; the
# generated fast paths in front of them are open-coded.


def _name_fb(rt, value, name, loc, is_function):
    """Identifier-load fallback: static marker, errno, global,
    function ref, or undefined (`_c_identifier`'s tail)."""
    if value is not _MISSING:  # a _StaticMarker probed from the locals
        return rt.statics[value.key]
    if name == "errno":
        return rt.errno
    value = rt.globals.get(name, _MISSING)
    if value is not _MISSING:
        return value
    if is_function:
        return FunctionRef(name)
    raise InterpreterError(f"{loc}: undefined identifier {name!r}")


def _name_env_slot(rt, current, name, target_loc):
    """Assignment-target resolution outside the plain-local fast path:
    (env, key, declared type) for a static or global, None for errno.
    Raises for an undefined name *before* the right-hand side runs,
    exactly like `_c_assign_name`/`resolve_slot`."""
    if current is not _MISSING:  # a _StaticMarker
        key = current.key
        return (rt.statics, key, rt.static_types.get(key))
    if name == "errno":
        return None
    global_env = rt.globals
    if name in global_env:
        return (global_env, name, rt.global_types.get(name))
    raise InterpreterError(f"{target_loc}: undefined variable {name!r}")


def _finish_assign(rt, slot3, rhs, compound, loc):
    """Complete a name assignment resolved by `_name_env_slot`
    (compound re-reads the slot *after* the right-hand side ran)."""
    if slot3 is None:  # errno
        if compound is not None:
            rhs = binop(compound, rt.errno, rhs, loc)
        rt.errno = int(rhs) if isinstance(rhs, (int, float)) else 0
        return rt.errno
    env, key, typ = slot3
    if compound is not None:
        rhs = binop(compound, env[key], rhs, loc)
    env[key] = coerce(typ, rhs)
    return env[key]


def _incdec_slow(rt, current, name, operand_loc, loc, delta, prefix):
    """++/-- on a static marker or a non-local name (the closure
    engine's marker branch plus `_incdec_fallback`)."""
    if current is _MISSING:
        return _incdec_fallback(rt, name, operand_loc, loc, delta, prefix)
    key = current.key
    env = rt.statics
    typ = rt.static_types.get(key)
    current = env[key]
    if type(current) is int:
        if typ is None:
            env[key] = new = current + delta
        elif type(typ) is ct.IntType:
            env[key] = new = typ.wrap(current + delta)
        else:
            env[key] = new = coerce(typ, current + delta)
        return new if prefix else current
    if not isinstance(current, (int, float)):
        raise SegmentationFault(f"++/-- on non-number {current!r}", loc)
    env[key] = coerce(typ, current + delta)
    return env[key] if prefix else current


def _deref_slot(target, loc):
    """`slot()`'s dereference arm: `*expr` as an assignment target."""
    if target is None:
        raise SegmentationFault("NULL pointer dereference", loc)
    if isinstance(target, Pointer):
        return target.slot
    if isinstance(target, ArrayValue):
        return ElemSlot(target, 0)
    raise SegmentationFault(f"dereferencing non-pointer {target!r}", loc)


def _not_assignable(loc):
    raise InterpreterError(f"{loc}: expression is not assignable")


def _neg(value, loc):
    if isinstance(value, (int, float)):
        return -value
    raise SegmentationFault(f"negating non-number {value!r}", loc)


def _indirect_target(target, loc):
    """CallIndirect's target checks, before argument evaluation."""
    if target is None:
        raise SegmentationFault("call through NULL function pointer", loc)
    if not isinstance(target, FunctionRef):
        raise SegmentationFault(
            f"call through non-function value {target!r}", loc
        )
    return target.name


def _call_builtin(rt, callee, args, loc):
    """Late-bound builtin dispatch with the tree-walker's full
    resolution as the miss path (exact error behaviour)."""
    builtin = REGISTRY.get(callee)
    if builtin is not None:
        return builtin(rt, args, loc)
    return rt._call_builtin_or_user(callee, args, loc)


def _bind_args(local_env, local_types, params, args):
    """Generic parameter fill (arity mismatch path of the invoke
    protocol): missing arguments become the parameter type's zero."""
    nargs = len(args)
    for i, (pname, ptype) in enumerate(params):
        value = args[i] if i < nargs else zero_value(ptype)
        local_env[pname] = coerce(ptype, value)
        local_types[pname] = ptype


def _unhandled_stmt(kind):
    raise InterpreterError(f"unhandled statement {kind}")


def _unhandled_expr(kind):
    raise InterpreterError(f"unhandled expression {kind}")


def _unhandled_unary(op):
    raise InterpreterError(f"unhandled unary {op}")


#: Names every generated module can see.  Value-level semantics stay
#: shared with the other engines - these are the interpreter module's
#: own functions, not re-implementations.
_NAMESPACE = {
    "_M": _MISSING,
    "_SM": _StaticMarker,
    "Frame": Frame,
    "FunctionRef": FunctionRef,
    "Pointer": Pointer,
    "ArrayValue": ArrayValue,
    "IntType": ct.IntType,
    "FieldSlot": FieldSlot,
    "coerce": coerce,
    "truthy": truthy,
    "zero_value": zero_value,
    "binop": binop,
    "deref_value": deref_value,
    "index_value": index_value,
    "index_slot": index_slot,
    "cast_value": cast_value,
    "struct_from": struct_from,
    "_values_equal": _values_equal,
    "_int_of": _int_of,
    "StackOverflowFault": StackOverflowFault,
    "SegmentationFault": SegmentationFault,
    "_BreakSignal": _BreakSignal,
    "_ContinueSignal": _ContinueSignal,
    "_ReturnSignal": _ReturnSignal,
    "_budget": _budget,
    "_name_fb": _name_fb,
    "_name_env_slot": _name_env_slot,
    "_finish_assign": _finish_assign,
    "_incdec_slow": _incdec_slow,
    "_deref_slot": _deref_slot,
    "_not_assignable": _not_assignable,
    "_neg": _neg,
    "_indirect_target": _indirect_target,
    "_call_builtin": _call_builtin,
    "_bind_args": _bind_args,
    "_unhandled_stmt": _unhandled_stmt,
    "_unhandled_expr": _unhandled_expr,
    "_unhandled_unary": _unhandled_unary,
}


# -- source emission ----------------------------------------------------------


def _emit_module(program: Program) -> tuple[str, dict, list[str]]:
    """Generate the whole module: one `_fn_<name>` per defined
    function, plus `_m<i>` per top-level statement of main (the
    snapshot engine's stepwise runners).  Returns (source text,
    interned constant pool, step function names)."""
    emitter = _ModuleEmitter(program)
    out: list[str] = [
        "# generated by repro.runtime.codegen - do not edit",
    ]
    for name, fn in program.functions.items():
        if fn.body is None:
            continue
        out.append("")
        out.extend(emitter.emit_invoke(fn))
    step_names: list[str] = []
    if program.has_function("main"):
        main = program.function("main")
        if main.body is not None:
            for index, stmt in enumerate(main.body.statements):
                name = f"_m{index}"
                out.append("")
                out.extend(emitter.emit_step(name, stmt))
                step_names.append(name)
    return "\n".join(out) + "\n", emitter.consts, step_names


class _ModuleEmitter:
    """Shared per-program emission state: the interned constant pool
    (Locations, CTypes, AST nodes, static keys/markers, zero values)
    referenced from generated code as `_K<n>`."""

    def __init__(self, program: Program):
        self.program = program
        self.consts: dict[str, object] = {}
        self._const_ids: dict[int, str] = {}

    def const(self, obj) -> str:
        name = self._const_ids.get(id(obj))
        if name is None:
            name = f"_K{len(self.consts)}"
            self._const_ids[id(obj)] = name
            self.consts[name] = obj
        return name

    def emit_invoke(self, fn) -> list[str]:
        return _FunctionEmitter(self, fn, mode="invoke").emit()

    def emit_step(self, name: str, stmt) -> list[str]:
        return _FunctionEmitter(
            self, self.program.function("main"), mode="step"
        ).emit_step(name, stmt)


class _FunctionEmitter:
    """Lowers one MiniC function (or one top-level statement of main)
    into Python source lines.

    `value()` returns a Python expression string plus a purity flag;
    an impure expression may be evaluated at most once, immediately
    after the lines emitted for it.  Parents that need an operand
    early (evaluation order) or more than once (fast-path type tests)
    hoist it into a `_t<n>` temporary via `atom()`.
    """

    def __init__(self, module: _ModuleEmitter, fn, mode: str):
        self.module = module
        self.program = module.program
        self.fn = fn
        self.mode = mode  # "invoke" | "step"
        self.out: list[str] = []
        self.ctx: list[str] = []  # "while" | "postloop" | "switch"
        self._temps = 0

    # -- infrastructure ------------------------------------------------------

    def const(self, obj) -> str:
        return self.module.const(obj)

    def w(self, ind: int, text: str) -> None:
        self.out.append("    " * ind + text)

    def temp(self) -> str:
        self._temps += 1
        return f"_t{self._temps}"

    def hoist(self, ind: int, expr: str) -> str:
        name = self.temp()
        self.w(ind, f"{name} = {expr}")
        return name

    def tick(self, ind: int) -> None:
        self.w(ind, "rt.steps = _s = rt.steps + 1")
        self.w(ind, "if _s > rt._max_steps: _budget(rt)")

    def _buffered(self, fn) -> tuple[list[str], object]:
        """Run `fn` with emission redirected to a buffer."""
        saved = self.out
        self.out = []
        try:
            result = fn()
            return self.out, result
        finally:
            self.out = saved

    # -- function shells -----------------------------------------------------

    def emit(self) -> list[str]:
        fn = self.fn
        fname = fn.name
        rtype = fn.return_type
        params = tuple((p.name, p.type) for p in fn.params)
        self.w(0, f"def _fn_{fname}(rt, args):")
        self.w(1, "frames = rt.frames")
        self.w(1, "if len(frames) >= rt._max_call_depth:")
        self.w(
            2,
            f"raise StackOverflowFault({f'call depth exceeded in {fname}'!r},"
            f" {self.const(fn.location)})",
        )
        self.w(1, f"frame = Frame(function={fname!r})")
        self.w(1, "L = frame.locals")
        self.w(1, "T = frame.local_types")
        if params:
            self.w(1, f"if len(args) == {len(params)}:")
            for i, (pname, ptype) in enumerate(params):
                kt = self.const(ptype)
                self.w(2, f"L[{pname!r}] = coerce({kt}, args[{i}])")
                self.w(2, f"T[{pname!r}] = {kt}")
            self.w(1, "else:")
            self.w(2, f"_bind_args(L, T, {self.const(params)}, args)")
        if fn.variadic:
            self.w(1, f"L['__varargs'] = list(args[{len(params)}:])")
        self.w(1, "frames.append(frame)")
        self.w(1, "try:")
        self.w(2, "try:")
        for stmt in fn.body.statements:
            self.stmt(stmt, 3)
        self.w(3, self._zero_return(rtype))
        self.w(2, "except _ReturnSignal as _ret:")
        self.w(3, f"return coerce({self.const(rtype)}, _ret.value)")
        self.w(1, "finally:")
        self.w(2, "frames.pop()")
        return self.out

    def _zero_return(self, rtype) -> str:
        # Array zeros are fresh mutable objects per return; every other
        # return type's zero is an immutable interned constant.
        if isinstance(rtype, ct.ArrayType):
            return f"return zero_value({self.const(rtype)})"
        return f"return {self.const(zero_value(rtype))}"

    def emit_step(self, name: str, stmt) -> list[str]:
        self.w(0, f"def {name}(rt):")
        self.w(1, "frame = rt.frames[-1]")
        self.w(1, "L = frame.locals")
        self.w(1, "T = frame.local_types")
        self.stmt(stmt, 1)
        return self.out

    # -- statements ----------------------------------------------------------

    def stmt(self, node, ind: int) -> None:
        method = self._STMT.get(type(node))
        if method is None:
            # Mirror the closure engine: unknown nodes fail when (and
            # only when) executed, with the same message and no tick.
            self.w(ind, f"_unhandled_stmt({type(node).__name__!r})")
            return
        method(self, node, ind)

    def _s_expr_stmt(self, node: ExprStmt, ind: int) -> None:
        self.tick(ind)
        expr, pure = self.value(node.expr, ind)
        if not pure:
            self.w(ind, expr)

    def _s_var_decl(self, node: VarDecl, ind: int) -> None:
        self.tick(ind)
        name, typ, init = node.name, node.type, node.init
        kt = self.const(typ)
        if node.is_static:
            key = (self.fn.name if self.mode == "invoke" else "main", name)
            kk = self.const(key)
            self.w(ind, f"if {kk} not in rt.statics:")
            self.w(ind + 1, f"rt.static_types[{kk}] = {kt}")
            value = self._decl_value(typ, kt, init, ind + 1)
            self.w(ind + 1, f"rt.statics[{kk}] = {value}")
            self.w(ind, f"T[{name!r}] = {kt}")
            self.w(ind, f"L[{name!r}] = {self.const(_StaticMarker(key))}")
            return
        self.w(ind, f"T[{name!r}] = {kt}")
        value = self._decl_value(typ, kt, init, ind)
        self.w(ind, f"L[{name!r}] = {value}")

    def _decl_value(self, typ, kt: str, init, ind: int) -> str:
        if init is None:
            return f"rt._zero_for({kt})"
        if isinstance(init, InitList):
            # Brace initializers reuse the interpreter's materializer,
            # exactly like the closure engine.
            return f"rt._materialize({kt}, {self.const(init)})"
        expr, _pure = self.value(init, ind)
        return f"coerce({kt}, {expr})"

    def _s_block(self, node: Block, ind: int) -> None:
        self.tick(ind)
        for stmt in node.statements:
            self.stmt(stmt, ind)

    def _s_if(self, node: If, ind: int) -> None:
        self.tick(ind)
        cond = self.atom(node.cond, ind)
        self.w(ind, f"if ({cond} != 0) if type({cond}) is int else truthy({cond}):")
        self.stmt(node.then, ind + 1)
        if node.other is not None:
            self.w(ind, "else:")
            self.stmt(node.other, ind + 1)

    def _s_while(self, node: While, ind: int) -> None:
        self.tick(ind)
        self.w(ind, "while True:")
        self.tick(ind + 1)
        cond = self.atom(node.cond, ind + 1)
        self.w(
            ind + 1,
            f"if not (({cond} != 0) if type({cond}) is int else truthy({cond})):",
        )
        self.w(ind + 2, "break")
        self._loop_body(node.body, ind + 1, "while")

    def _s_do_while(self, node: DoWhile, ind: int) -> None:
        self.tick(ind)
        self.w(ind, "while True:")
        self.tick(ind + 1)
        self._loop_body(node.body, ind + 1, "postloop")
        cond = self.atom(node.cond, ind + 1)
        self.w(
            ind + 1,
            f"if not (({cond} != 0) if type({cond}) is int else truthy({cond})):",
        )
        self.w(ind + 2, "break")

    def _s_for(self, node: For, ind: int) -> None:
        self.tick(ind)
        if node.init is not None:
            self.stmt(node.init, ind)
        self.w(ind, "while True:")
        self.tick(ind + 1)
        if node.cond is not None:
            cond = self.atom(node.cond, ind + 1)
            self.w(
                ind + 1,
                f"if not (({cond} != 0) if type({cond}) is int"
                f" else truthy({cond})):",
            )
            self.w(ind + 2, "break")
        self._loop_body(node.body, ind + 1, "postloop")
        if node.step is not None:
            expr, pure = self.value(node.step, ind + 1)
            if not pure:
                self.w(ind + 1, expr)

    def _loop_body(self, body, ind: int, ctx: str) -> None:
        """One loop body, always signal-fenced: `_BreakSignal` and
        `_ContinueSignal` can arrive through a *called* function (a
        stray `break` outside any loop propagates to the caller in
        every engine), so syntactic absence of break/continue in this
        body is not enough to drop the try."""
        self.w(ind, "try:")
        self.ctx.append(ctx)
        try:
            self.stmt(body, ind + 1)
        finally:
            self.ctx.pop()
        self.w(ind, "except _BreakSignal:")
        self.w(ind + 1, "break")
        self.w(ind, "except _ContinueSignal:")
        if ctx == "while":
            self.w(ind + 1, "continue")
        else:  # for / do-while: fall through to the advance / cond
            self.w(ind + 1, "pass")

    def _s_switch(self, node: Switch, ind: int) -> None:
        self.tick(ind)
        subject = self.atom(node.subject, ind)
        arms = node.cases
        default = -1
        for i, case in enumerate(arms):
            if case.value is None:
                default = i
        sel = self.temp()
        case_arms = [
            (i, case) for i, case in enumerate(arms) if case.value is not None
        ]
        if case_arms:
            # Sequential value probing, exactly like the closure
            # engine's scan: each case value is evaluated in order
            # until one matches; default arms are compile-time facts.
            self.w(ind, "while True:")
            for i, case in case_arms:
                expr, _pure = self.value(case.value, ind + 1)
                self.w(ind + 1, f"if _values_equal({subject}, {expr}):")
                self.w(ind + 2, f"{sel} = {i}")
                self.w(ind + 2, "break")
            self.w(ind + 1, f"{sel} = {default}")
            self.w(ind + 1, "break")
        else:
            self.w(ind, f"{sel} = {default}")
        self.w(ind, f"if {sel} >= 0:")
        self.w(ind + 1, "try:")
        self.w(ind + 2, "while True:")
        self.ctx.append("switch")
        try:
            for i, case in enumerate(arms):
                self.w(ind + 3, f"if {sel} <= {i}:")
                if case.body:
                    for stmt in case.body:
                        self.stmt(stmt, ind + 4)
                else:
                    self.w(ind + 4, "pass")
        finally:
            self.ctx.pop()
        self.w(ind + 3, "break")
        self.w(ind + 1, "except _BreakSignal:")
        self.w(ind + 2, "pass")

    def _s_break(self, node: Break, ind: int) -> None:
        self.tick(ind)
        if self.ctx:
            self.w(ind, "break")
        else:
            self.w(ind, "raise _BreakSignal()")

    def _s_continue(self, node: Continue, ind: int) -> None:
        self.tick(ind)
        if not self.ctx or self.ctx[-1] != "while":
            # Inside a for/do-while body the advance/condition code
            # sits *after* the body: a Python `continue` would skip
            # it, and inside a switch it would re-run the dispatch
            # loop.  The signal unwinds to the right handler.
            self.w(ind, "raise _ContinueSignal()")
        else:
            self.w(ind, "continue")

    def _s_return(self, node: Return, ind: int) -> None:
        self.tick(ind)
        if node.value is None:
            expr = "None"
        else:
            expr, _pure = self.value(node.value, ind)
        if self.mode == "invoke":
            # The invoke protocol coerces through the return type; a
            # bare `return;` yields coerce(rtype, None) - deliberately
            # not the zero constant (coerce(int, None) is None).
            self.w(ind, f"return coerce({self.const(self.fn.return_type)}, {expr})")
        else:
            self.w(ind, f"raise _ReturnSignal({expr})")

    # -- expressions ---------------------------------------------------------

    def value(self, node, ind: int) -> tuple[str, bool]:
        method = self._EXPR.get(type(node))
        if method is None:
            return f"_unhandled_expr({type(node).__name__!r})", False
        return method(self, node, ind)

    def atom(self, node, ind: int) -> str:
        expr, pure = self.value(node, ind)
        if pure:
            return expr
        return self.hoist(ind, expr)

    def seq(self, nodes, ind: int) -> list[str]:
        """Left-to-right evaluation of sibling operands: any operand
        followed by one that needs statements is hoisted so its side
        effects land first."""
        buffered = []
        for node in nodes:
            lines, result = self._buffered(lambda n=node: self.value(n, ind))
            buffered.append((lines, result))
        exprs = []
        for i, (lines, (expr, pure)) in enumerate(buffered):
            self.out.extend(lines)
            if not pure and any(later_lines for later_lines, _ in buffered[i + 1:]):
                expr = self.hoist(ind, expr)
            exprs.append(expr)
        return exprs

    def _e_literal(self, node, ind: int) -> tuple[str, bool]:
        text = repr(node.value)
        if text.startswith("-"):
            text = f"({text})"
        return text, True

    def _e_bool(self, node: BoolLiteral, ind: int) -> tuple[str, bool]:
        return ("1" if node.value else "0"), True

    def _e_null(self, node: NullLiteral, ind: int) -> tuple[str, bool]:
        return "None", True

    def _e_identifier(self, node: Identifier, ind: int) -> tuple[str, bool]:
        name = node.name
        is_function = (
            self.program.has_function(name) or name in self.program.prototypes
        )
        probe = self.temp()
        kloc = self.const(node.location)
        return (
            f"({probe} if type({probe} := L.get({name!r}, _M)) is not _SM"
            f" and {probe} is not _M"
            f" else _name_fb(rt, {probe}, {name!r}, {kloc}, {is_function}))",
            False,
        )

    def _e_unary(self, node: Unary, ind: int) -> tuple[str, bool]:
        op = node.op
        kloc = self.const(node.location)
        if op == "&":
            slot_expr = self.slot(node.operand, ind)
            return f"Pointer({slot_expr})", False
        if op == "*":
            expr, _pure = self.value(node.operand, ind)
            return f"deref_value({expr}, {kloc})", False
        if op == "!":
            expr, _pure = self.value(node.operand, ind)
            return f"(0 if truthy({expr}) else 1)", False
        if op == "-":
            expr, _pure = self.value(node.operand, ind)
            return f"_neg({expr}, {kloc})", False
        if op == "~":
            expr, _pure = self.value(node.operand, ind)
            return f"~_int_of({expr}, {kloc})", False
        # Unknown operator: raise on evaluation, operand unevaluated.
        return f"_unhandled_unary({op!r})", False

    def _e_incdec(self, node: IncDec, ind: int) -> tuple[str, bool]:
        loc = node.location
        kloc = self.const(loc)
        delta = 1 if node.op == "++" else -1
        prefix = node.prefix
        step = f"+ {delta}" if delta > 0 else "- 1"
        result = self.temp()
        if isinstance(node.operand, Identifier):
            name = node.operand.name
            cur = self.temp()
            self.w(ind, f"{cur} = L.get({name!r}, _M)")
            self.w(ind, f"if {cur} is not _M and type({cur}) is not _SM:")
            self.w(ind + 1, f"if type({cur}) is int:")
            ty = self.temp()
            new = self.temp()
            self.w(ind + 2, f"{ty} = T.get({name!r})")
            self.w(ind + 2, f"if {ty} is None:")
            self.w(ind + 3, f"{new} = {cur} {step}")
            self.w(ind + 2, f"elif type({ty}) is IntType:")
            self.w(ind + 3, f"{new} = {ty}.wrap({cur} {step})")
            self.w(ind + 2, "else:")
            self.w(ind + 3, f"{new} = coerce({ty}, {cur} {step})")
            self.w(ind + 2, f"L[{name!r}] = {new}")
            self.w(ind + 2, f"{result} = {new if prefix else cur}")
            self.w(ind + 1, f"elif isinstance({cur}, (int, float)):")
            self.w(
                ind + 2,
                f"L[{name!r}] = {new} = coerce(T.get({name!r}), {cur} {step})",
            )
            self.w(ind + 2, f"{result} = {new if prefix else cur}")
            self.w(ind + 1, "else:")
            self.w(
                ind + 2,
                "raise SegmentationFault(f'++/-- on non-number "
                f"{{{cur}!r}}', {kloc})",
            )
            self.w(ind, "else:")
            self.w(
                ind + 1,
                f"{result} = _incdec_slow(rt, {cur}, {name!r},"
                f" {self.const(node.operand.location)}, {kloc},"
                f" {delta}, {prefix})",
            )
            return result, True
        slot = self.hoist(ind, self.slot(node.operand, ind))
        old = self.temp()
        self.w(ind, f"{old} = {slot}.get({kloc})")
        self.w(ind, f"if not isinstance({old}, (int, float)):")
        self.w(
            ind + 1,
            f"raise SegmentationFault(f'++/-- on non-number {{{old}!r}}',"
            f" {kloc})",
        )
        self.w(ind, f"{slot}.set({old} {step}, {kloc})")
        if prefix:
            self.w(ind, f"{result} = {slot}.get({kloc})")
        else:
            self.w(ind, f"{result} = {old}")
        return result, True

    def _e_binary(self, node: Binary, ind: int) -> tuple[str, bool]:
        op = node.op
        kloc = self.const(node.location)
        if op in ("&&", "||"):
            return self._e_logical(node, op, ind)
        if op in ("==", "!="):
            left, right = self.seq((node.left, node.right), ind)
            yes, no = ("1", "0") if op == "==" else ("0", "1")
            return (
                f"({yes} if _values_equal({left}, {right}) else {no})",
                False,
            )
        if op in ("+", "-"):
            left = self.atom(node.left, ind)
            right = self.atom(node.right, ind)
            return (
                f"(({left} {op} {right}) if type({left}) is int"
                f" and type({right}) is int"
                f" else binop({op!r}, {left}, {right}, {kloc}))",
                False,
            )
        if op in ("<", ">", "<=", ">="):
            left = self.atom(node.left, ind)
            right = self.atom(node.right, ind)
            return (
                f"((1 if {left} {op} {right} else 0) if type({left}) is int"
                f" and type({right}) is int"
                f" else binop({op!r}, {left}, {right}, {kloc}))",
                False,
            )
        left, right = self.seq((node.left, node.right), ind)
        return f"binop({op!r}, {left}, {right}, {kloc})", False

    def _e_logical(self, node: Binary, op: str, ind: int) -> tuple[str, bool]:
        left, _pure = self.value(node.left, ind)
        right_lines, (right, _rpure) = self._buffered(
            lambda: self.value(node.right, ind + 1)
        )
        if not right_lines:
            if op == "&&":
                return (
                    f"(0 if not truthy({left})"
                    f" else (1 if truthy({right}) else 0))",
                    False,
                )
            return (
                f"(1 if truthy({left})"
                f" else (1 if truthy({right}) else 0))",
                False,
            )
        # The right operand needs statements, so the short circuit
        # becomes control flow around them.
        result = self.temp()
        if op == "&&":
            self.w(ind, f"if not truthy({left}):")
            self.w(ind + 1, f"{result} = 0")
            self.w(ind, "else:")
            self.out.extend(right_lines)
            self.w(ind + 1, f"{result} = 1 if truthy({right}) else 0")
        else:
            self.w(ind, f"if truthy({left}):")
            self.w(ind + 1, f"{result} = 1")
            self.w(ind, "else:")
            self.out.extend(right_lines)
            self.w(ind + 1, f"{result} = 1 if truthy({right}) else 0")
        return result, True

    def _e_conditional(self, node: Conditional, ind: int) -> tuple[str, bool]:
        cond, _pure = self.value(node.cond, ind)
        then_lines, (then, _tp) = self._buffered(
            lambda: self.value(node.then, ind + 1)
        )
        other_lines, (other, _op) = self._buffered(
            lambda: self.value(node.other, ind + 1)
        )
        if not then_lines and not other_lines:
            # Plain truthy, no int fast path - like the closure engine.
            return f"({then} if truthy({cond}) else {other})", False
        result = self.temp()
        self.w(ind, f"if truthy({cond}):")
        self.out.extend(then_lines)
        self.w(ind + 1, f"{result} = {then}")
        self.w(ind, "else:")
        self.out.extend(other_lines)
        self.w(ind + 1, f"{result} = {other}")
        return result, True

    def _e_assign(self, node: Assign, ind: int) -> tuple[str, bool]:
        if isinstance(node.target, Identifier):
            return self._e_assign_name(node, ind)
        kloc = self.const(node.location)
        slot = self.hoist(ind, self.slot(node.target, ind))
        rhs, _pure = self.value(node.value, ind)
        if node.op == "=":
            self.w(ind, f"{slot}.set({rhs}, {kloc})")
        else:
            # Compound: the right-hand side runs first, then the slot
            # is re-read for the combine (closure-engine order).
            rhs_t = self.hoist(ind, rhs)
            self.w(
                ind,
                f"{slot}.set(binop({node.op[:-1]!r}, {slot}.get({kloc}),"
                f" {rhs_t}, {kloc}), {kloc})",
            )
        result = self.hoist(ind, f"{slot}.get({kloc})")
        return result, True

    def _e_assign_name(self, node: Assign, ind: int) -> tuple[str, bool]:
        name = node.target.name
        kloc = self.const(node.location)
        ktloc = self.const(node.target.location)
        compound = None if node.op == "=" else node.op[:-1]
        cur = self.temp()
        result = self.temp()
        self.w(ind, f"{cur} = L.get({name!r}, _M)")
        self.w(ind, f"if {cur} is not _M and type({cur}) is not _SM:")
        rhs, pure = self.value(node.value, ind + 1)
        if compound is not None:
            # Re-read the local *after* the right-hand side ran, so the
            # side effects of the right-hand side are visible to the
            # combine (closure-engine order).
            if not pure:
                rhs = self.hoist(ind + 1, rhs)
            rhs = f"binop({compound!r}, L[{name!r}], {rhs}, {kloc})"
        self.w(
            ind + 1,
            f"{result} = L[{name!r}] = coerce(T.get({name!r}), {rhs})",
        )
        self.w(ind, "else:")
        env = self.temp()
        # Resolution (and the undefined-variable error) happens before
        # the right-hand side is evaluated, like `resolve_slot`.
        self.w(ind + 1, f"{env} = _name_env_slot(rt, {cur}, {name!r}, {ktloc})")
        rhs2, _pure2 = self.value(node.value, ind + 1)
        self.w(
            ind + 1,
            f"{result} = _finish_assign(rt, {env}, {rhs2},"
            f" {compound!r}, {kloc})",
        )
        return result, True

    def _e_call(self, node: Call, ind: int) -> tuple[str, bool]:
        callee = node.callee
        kloc = self.const(node.location)
        self.tick(ind)
        if (
            self.program.has_function(callee)
            and self.program.function(callee).body is not None
        ):
            args = self.seq(node.args, ind)
            packed = ", ".join(args) + ("," if len(args) == 1 else "")
            result = self.hoist(ind, f"_fn_{callee}(rt, ({packed}))")
            return result, True
        args = self.seq(node.args, ind)
        result = self.hoist(
            ind,
            f"_call_builtin(rt, {callee!r}, [{', '.join(args)}], {kloc})",
        )
        return result, True

    def _e_call_indirect(self, node: CallIndirect, ind: int) -> tuple[str, bool]:
        kloc = self.const(node.location)
        self.tick(ind)
        func, _pure = self.value(node.func, ind)
        target = self.hoist(ind, f"_indirect_target({func}, {kloc})")
        args = self.seq(node.args, ind)
        result = self.hoist(
            ind,
            f"rt._call_builtin_or_user({target}, [{', '.join(args)}], {kloc})",
        )
        return result, True

    def _e_member(self, node: Member, ind: int) -> tuple[str, bool]:
        kloc = self.const(node.location)
        base, _pure = self.value(node.base, ind)
        fname = node.field_name
        return (
            f"struct_from({base}, {fname!r}, {kloc}).get({fname!r}, {kloc})",
            False,
        )

    def _e_index(self, node: Index, ind: int) -> tuple[str, bool]:
        kloc = self.const(node.location)
        base, index = self.seq((node.base, node.index), ind)
        return f"index_value({base}, {index}, {kloc})", False

    def _e_cast(self, node: Cast, ind: int) -> tuple[str, bool]:
        expr, _pure = self.value(node.operand, ind)
        return f"cast_value({self.const(node.type)}, {expr})", False

    def _e_sizeof(self, node: SizeOf, ind: int) -> tuple[str, bool]:
        return repr(sizeof_value(node.type, self.program.structs)), True

    def _e_initlist(self, node: InitList, ind: int) -> tuple[str, bool]:
        items = self.seq(node.items, ind)
        return f"ArrayValue(None, [{', '.join(items)}])", False

    # -- lvalues -------------------------------------------------------------

    def slot(self, node, ind: int) -> str:
        """A slot-producing expression (evaluated at most once,
        immediately; parents hoist when ordering demands it)."""
        if isinstance(node, Identifier):
            return f"rt._name_slot({node.name!r}, {self.const(node.location)})"
        if isinstance(node, Member):
            kloc = self.const(node.location)
            base, _pure = self.value(node.base, ind)
            fname = node.field_name
            return f"FieldSlot(struct_from({base}, {fname!r}, {kloc}), {fname!r})"
        if isinstance(node, Index):
            kloc = self.const(node.location)
            base, index = self.seq((node.base, node.index), ind)
            return f"index_slot({base}, {index}, {kloc})"
        if isinstance(node, Unary) and node.op == "*":
            kloc = self.const(node.location)
            expr, _pure = self.value(node.operand, ind)
            return f"_deref_slot({expr}, {kloc})"
        return f"_not_assignable({self.const(node.location)})"

    _STMT = {
        ExprStmt: _s_expr_stmt,
        VarDecl: _s_var_decl,
        Block: _s_block,
        If: _s_if,
        While: _s_while,
        DoWhile: _s_do_while,
        For: _s_for,
        Switch: _s_switch,
        Break: _s_break,
        Continue: _s_continue,
        Return: _s_return,
    }

    _EXPR = {
        IntLiteral: _e_literal,
        FloatLiteral: _e_literal,
        StringLiteral: _e_literal,
        CharLiteral: _e_literal,
        BoolLiteral: _e_bool,
        NullLiteral: _e_null,
        Identifier: _e_identifier,
        Unary: _e_unary,
        IncDec: _e_incdec,
        Binary: _e_binary,
        Conditional: _e_conditional,
        Assign: _e_assign,
        Call: _e_call,
        CallIndirect: _e_call_indirect,
        Member: _e_member,
        Index: _e_index,
        Cast: _e_cast,
        SizeOf: _e_sizeof,
        InitList: _e_initlist,
    }
