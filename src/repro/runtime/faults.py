"""Fault model for the MiniC runtime.

These exceptions are the interpreter's equivalents of POSIX process
death: they carry the signal-style reason SPEX-INJ's classifier keys
on (Table 3's crash/hang category).
"""

from __future__ import annotations

from repro.lang.source import Location


class MachineFault(Exception):
    """Base: the process died abnormally (would be a signal on POSIX)."""

    signal_name = "SIGKILL"
    console_message = "Killed"

    def __init__(self, reason: str, location: Location | None = None):
        self.reason = reason
        self.location = location
        super().__init__(reason)


class SegmentationFault(MachineFault):
    """NULL deref, out-of-bounds access, deref of a non-pointer."""

    signal_name = "SIGSEGV"
    console_message = "Segmentation fault (core dumped)"


class DivisionFault(MachineFault):
    """Integer division/modulo by zero (SIGFPE)."""

    signal_name = "SIGFPE"
    console_message = "Floating point exception (core dumped)"


class AbortFault(MachineFault):
    """Explicit abort() call (SIGABRT), e.g. failed assert."""

    signal_name = "SIGABRT"
    console_message = "Aborted (core dumped)"


class StackOverflowFault(MachineFault):
    """Runaway recursion; manifests as SIGSEGV on real systems."""

    signal_name = "SIGSEGV"
    console_message = "Segmentation fault (core dumped)"


class HangFault(Exception):
    """The step or virtual-time budget was exhausted.

    Not a MachineFault: a hung process does not die, the harness's
    watchdog gives up on it (the paper counts hangs with crashes as
    the most severe reaction category).
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


class ExitProcess(Exception):
    """Normal process exit via exit(code) or returning from main."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")
