"""Runtime value and storage model for the MiniC interpreter.

Scalars are Python ints/floats/strs; aggregates are explicit objects.
All mutable storage is reached through :class:`Slot` objects so that
``&x``, ``*p = v``, ``p->field`` and out-parameters (``strtol``'s end
pointer) share one mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import types as ct
from repro.lang.source import Location
from repro.runtime.faults import SegmentationFault


@dataclass
class FunctionRef:
    """A function designator stored in a table or variable."""

    name: str

    def __repr__(self) -> str:
        return f"<fn {self.name}>"


class StructValue:
    """An instance of a named struct: typed, field-addressable."""

    __slots__ = ("struct_name", "field_types", "fields")

    def __init__(self, struct_name: str, field_types: dict[str, ct.CType]):
        self.struct_name = struct_name
        self.field_types = field_types
        self.fields: dict[str, object] = {
            name: zero_value(t) for name, t in field_types.items()
        }

    def get(self, name: str, location: Location | None = None) -> object:
        if name not in self.fields:
            raise SegmentationFault(
                f"struct {self.struct_name} has no field {name!r}", location
            )
        return self.fields[name]

    def set(self, name: str, value: object, location: Location | None = None) -> None:
        if name not in self.fields:
            raise SegmentationFault(
                f"struct {self.struct_name} has no field {name!r}", location
            )
        self.fields[name] = coerce(self.field_types.get(name), value)

    def __repr__(self) -> str:
        return f"<struct {self.struct_name} {self.fields}>"


class ArrayValue:
    """A fixed-length array with element type for coercion and bounds."""

    __slots__ = ("element_type", "items")

    def __init__(self, element_type: ct.CType | None, items: list[object]):
        self.element_type = element_type
        self.items = items

    def __len__(self) -> int:
        return len(self.items)

    def get(self, index: int, location: Location | None = None) -> object:
        self._check(index, location)
        return self.items[index]

    def set(self, index: int, value: object, location: Location | None = None) -> None:
        self._check(index, location)
        self.items[index] = coerce(self.element_type, value)

    def _check(self, index: int, location: Location | None) -> None:
        if not isinstance(index, int):
            raise SegmentationFault(f"non-integer array index {index!r}", location)
        if index < 0 or index >= len(self.items):
            raise SegmentationFault(
                f"array index {index} out of bounds [0, {len(self.items)})", location
            )

    def __repr__(self) -> str:
        return f"<array[{len(self.items)}]>"


class SparseArrayValue(ArrayValue):
    """Large allocation backed by a sparse cell map.

    Lets subject systems malloc realistic arena sizes (hundreds of MB)
    without materializing Python lists; unwritten cells read as zero.
    """

    __slots__ = ("length", "cells")

    def __init__(self, element_type: ct.CType | None, length: int):
        self.element_type = element_type
        self.items = None  # type: ignore[assignment]
        self.length = length
        self.cells: dict[int, object] = {}

    def __len__(self) -> int:
        return self.length

    def get(self, index: int, location: Location | None = None) -> object:
        self._check_sparse(index, location)
        return self.cells.get(index, 0)

    def set(self, index: int, value: object, location: Location | None = None) -> None:
        self._check_sparse(index, location)
        self.cells[index] = coerce(self.element_type, value)

    def _check_sparse(self, index: int, location: Location | None) -> None:
        if not isinstance(index, int):
            raise SegmentationFault(f"non-integer array index {index!r}", location)
        if index < 0 or index >= self.length:
            raise SegmentationFault(
                f"array index {index} out of bounds [0, {self.length})", location
            )

    def __repr__(self) -> str:
        return f"<sparse-array[{self.length}]>"


class Slot:
    """Abstract addressable storage cell."""

    def get(self, location: Location | None = None) -> object:
        raise NotImplementedError

    def set(self, value: object, location: Location | None = None) -> None:
        raise NotImplementedError


@dataclass
class VarSlot(Slot):
    """A named variable in an environment dict."""

    env: dict
    name: str
    declared_type: ct.CType | None = None

    def get(self, location: Location | None = None) -> object:
        return self.env[self.name]

    def set(self, value: object, location: Location | None = None) -> None:
        self.env[self.name] = coerce(self.declared_type, value)


@dataclass
class FieldSlot(Slot):
    base: StructValue
    field_name: str

    def get(self, location: Location | None = None) -> object:
        return self.base.get(self.field_name, location)

    def set(self, value: object, location: Location | None = None) -> None:
        self.base.set(self.field_name, value, location)


@dataclass
class ElemSlot(Slot):
    base: ArrayValue
    index: int

    def get(self, location: Location | None = None) -> object:
        return self.base.get(self.index, location)

    def set(self, value: object, location: Location | None = None) -> None:
        self.base.set(self.index, value, location)


@dataclass
class BoxSlot(Slot):
    """Anonymous heap cell (malloc'd scalar, out-param target)."""

    value: object = None
    declared_type: ct.CType | None = None

    def get(self, location: Location | None = None) -> object:
        return self.value

    def set(self, value: object, location: Location | None = None) -> None:
        self.value = coerce(self.declared_type, value)


@dataclass(frozen=True)
class Pointer:
    """A typed pointer to a slot (or NULL, represented by None overall)."""

    slot: Slot

    def deref(self, location: Location | None = None) -> object:
        return self.slot.get(location)

    def store(self, value: object, location: Location | None = None) -> None:
        self.slot.set(value, location)


@dataclass
class FileHandle:
    """An open emulated file (FILE* / fd target)."""

    fd: int
    path: str
    mode: str
    is_dir: bool = False
    read_pos: int = 0
    lines: list[str] = field(default_factory=list)
    closed: bool = False


def zero_value(typ: ct.CType | None) -> object:
    """The C zero-initialized value for a type."""
    if typ is None:
        return 0
    if typ.is_pointer:
        return None
    if typ.is_float:
        return 0.0
    if typ.is_bool:
        return 0
    if isinstance(typ, ct.ArrayType):
        length = typ.length or 0
        return ArrayValue(typ.element, [zero_value(typ.element) for _ in range(length)])
    if isinstance(typ, ct.StructType):
        # Resolved lazily by the interpreter (needs the struct table);
        # a bare zero here only appears for untyped temporaries.
        return None
    return 0


def coerce(typ: ct.CType | None, value: object) -> object:
    """Apply C storage semantics when writing `value` into type `typ`.

    Integer types wrap (two's complement); bool normalizes to 0/1;
    float truncation for int targets; everything else passes through.
    This is where 9,000,000,000 stored into a 32-bit size parameter
    silently becomes 410065408 - the Figure 5(a) vulnerability.
    """
    if typ is None:
        return value
    if isinstance(typ, ct.IntType):
        if isinstance(value, bool):
            return 1 if value else 0
        if isinstance(value, float):
            value = int(value)
        if isinstance(value, int):
            return typ.wrap(value)
        return value  # pointers/strings stored via int-typed slot: keep
    if isinstance(typ, ct.BoolType):
        if isinstance(value, (int, float)):
            return 1 if value else 0
        return 1 if value is not None else 0
    if isinstance(typ, ct.FloatType):
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, int):
            return float(value)
        return value
    return value


def truthy(value: object) -> bool:
    """C truth: zero and NULL are false; everything else (including
    the empty string, a non-NULL pointer) is true."""
    if value is None:
        return False
    if isinstance(value, (int, float)):
        return value != 0
    return True
