"""Emulated operating system for subject-system execution.

Provides the deterministic world a subject server runs against: a
filesystem, a TCP/UDP port table, a user/group database, a hostname
resolver, a virtual clock, the functional-test request queue, and the
captured log streams.  SPEX-INJ's reaction classifier reads process
behaviour exclusively through this surface, the same externally
observable channel the paper uses on real systems.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field


@dataclass
class FileNode:
    """One entry in the emulated filesystem."""

    path: str
    is_dir: bool = False
    content: str = ""
    mode: int = 0o644
    owner: str = "root"
    writable: bool = True


@dataclass
class LogRecord:
    """One captured log line."""

    stream: str  # "stdout" | "stderr" | "syslog" | "console"
    text: str

    def __str__(self) -> str:
        return f"[{self.stream}] {self.text}"


DEFAULT_USERS = ("root", "nobody", "daemon", "www-data", "ftp", "mysql", "postgres")
DEFAULT_GROUPS = ("root", "nogroup", "daemon", "www-data", "ftp", "mysql", "postgres")
DEFAULT_HOSTS = {
    "localhost": "127.0.0.1",
    "db.internal": "10.0.0.5",
    "cache.internal": "10.0.0.6",
}


class EmulatedOS:
    """Deterministic OS state shared by one process run."""

    def __init__(self) -> None:
        self.files: dict[str, FileNode] = {}
        self.users: set[str] = set(DEFAULT_USERS)
        self.groups: set[str] = set(DEFAULT_GROUPS)
        self.hosts: dict[str, str] = dict(DEFAULT_HOSTS)
        self.occupied_ports: set[int] = set()
        self.bound_ports: set[int] = set()
        self.clock: float = 1_700_000_000.0
        self.virtual_time_spent: float = 0.0
        self.logs: list[LogRecord] = []
        self.requests: list[str] = []
        self.responses: list[str] = []
        self._request_cursor = 0
        # Total `next_request` polls, including empty-queue ones.  The
        # warm-boot snapshot engine watches this to find the statement
        # during which a launch first touches the request queue - the
        # point up to which execution is request-independent.
        self.request_polls = 0
        self.add_dir("/")
        self.add_dir("/etc")
        self.add_dir("/var")
        self.add_dir("/var/log")
        self.add_dir("/var/run")
        self.add_dir("/tmp")
        self.add_dir("/data")

    # -- filesystem -----------------------------------------------------

    def add_dir(self, path: str) -> FileNode:
        node = FileNode(path=path, is_dir=True, mode=0o755)
        self.files[path] = node
        return node

    def add_file(self, path: str, content: str = "", mode: int = 0o644,
                 owner: str = "root") -> FileNode:
        self._ensure_parents(path)
        node = FileNode(path=path, content=content, mode=mode, owner=owner)
        self.files[path] = node
        return node

    def _ensure_parents(self, path: str) -> None:
        parts = [p for p in path.split("/") if p]
        cur = ""
        for part in parts[:-1]:
            cur += "/" + part
            if cur not in self.files:
                self.add_dir(cur)

    def lookup(self, path: str) -> FileNode | None:
        return self.files.get(path)

    # -- access control -------------------------------------------------

    def can_read(self, path: str, user: str) -> bool:
        node = self.files.get(path)
        if node is None:
            return False
        return node_allows(node.mode, node.owner, node.writable, user, False)

    def can_write(self, path: str, user: str) -> bool:
        node = self.files.get(path)
        if node is None:
            return False
        return node_allows(node.mode, node.owner, node.writable, user, True)

    def chmod(self, path: str, mode: int) -> int:
        node = self.files.get(path)
        if node is None:
            return -2  # ENOENT
        node.mode = mode & 0o7777
        return 0

    def chown(self, path: str, owner: str) -> int:
        node = self.files.get(path)
        if node is None:
            return -2  # ENOENT
        if owner not in self.users:
            return -1
        node.owner = owner
        return 0

    def exists(self, path: str) -> bool:
        return path in self.files

    def parent_exists(self, path: str) -> bool:
        parent = path.rsplit("/", 1)[0] or "/"
        node = self.files.get(parent)
        return node is not None and node.is_dir

    # -- network -----------------------------------------------------------

    def occupy_port(self, port: int) -> None:
        """Mark a port as taken by 'another process' (test scenario)."""
        self.occupied_ports.add(port)

    def try_bind(self, port: int) -> int:
        """POSIX-ish bind: 0 on success, negative errno-style code."""
        if port < 0 or port > 65535:
            return -22  # EINVAL
        if port in self.occupied_ports or port in self.bound_ports:
            return -98  # EADDRINUSE
        if 0 < port < 1024:
            pass  # running as root in the sandbox: privileged ports fine
        self.bound_ports.add(port)
        return 0

    def resolve_host(self, name: str) -> str | None:
        if name in self.hosts:
            return self.hosts[name]
        # Dotted-quad literals resolve to themselves when valid.
        if valid_ipv4(name):
            return name
        return None

    # -- clock -------------------------------------------------------------

    def now(self) -> float:
        return self.clock + self.virtual_time_spent

    def advance(self, seconds: float) -> None:
        self.virtual_time_spent += max(0.0, seconds)

    # -- harness I/O ---------------------------------------------------------

    def queue_requests(self, requests: list[str]) -> None:
        self.requests = list(requests)
        self._request_cursor = 0
        self.responses = []

    def next_request(self) -> str | None:
        self.request_polls += 1
        if self._request_cursor >= len(self.requests):
            return None
        req = self.requests[self._request_cursor]
        self._request_cursor += 1
        return req

    def send_response(self, text: str) -> None:
        self.responses.append(text)

    # -- logging ---------------------------------------------------------------

    def log(self, stream: str, text: str) -> None:
        for line in text.splitlines() or [""]:
            if line:
                self.logs.append(LogRecord(stream, line))

    def log_text(self) -> str:
        return "\n".join(str(r) for r in self.logs)

    # -- copy semantics ---------------------------------------------------------

    def clone(self) -> "EmulatedOS":
        """An independent deep copy of this OS state.

        Mutating the clone (or the original) never affects the other;
        used by warm-boot snapshots and anything else that needs to
        branch a deterministic world.  Callers that must preserve
        object identity *between* the OS and interpreter values deep-
        copy the interpreter's whole state bundle instead (the OS is
        part of it) - `copy.deepcopy` composes either way.
        """
        return copy.deepcopy(self)


def node_allows(
    mode: int, owner: str, writable: bool, user: str, write: bool
) -> bool:
    """The single owner/other permission-bit rule, shared with the
    config checker's `EnvView` so the runtime and the static checker
    judge ACLs identically and cannot drift.

    Simplified POSIX: root bypasses mode bits; the owner is judged by
    the user bits, everyone else by the other bits (the emulated OS
    has no supplementary-group table).  The legacy `writable` flag
    stays an independent veto on writes - existing fixtures built on
    it keep their behaviour.
    """
    if write and not writable:
        return False
    if user == "root":
        return True
    bit = 0o200 if write else 0o400
    if user != owner:
        bit >>= 6  # the "other" bit column
    return bool(mode & bit)


def valid_ipv4(text: str) -> bool:
    """Strict dotted-quad check, shared with the config checker's
    IP/hostname semantic validators so the two layers cannot drift."""
    parts = text.split(".")
    if len(parts) != 4:
        return False
    for part in parts:
        if not part.isdigit():
            return False
        if int(part) > 255:
            return False
    return True
