"""Warm-boot snapshots - the launch engine's layer 2.

Every launch of one (system, config) pair executes an identical boot
prefix: `main()` reads the config file, validates it, binds ports and
initializes tables before it ever touches the functional-test request
queue.  The harness launches the same config repeatedly - once for
startup classification, then once per functional test - so the prefix
is re-interpreted over and over.

This module replays it instead.  `main`'s *top-level* statements are
executed one at a time (each statement runs through exactly the same
per-statement machinery as a plain launch, so semantics are
bit-identical); the emulated OS counts `next_request` polls, and the
index of the first top-level statement during which a poll happens is
the **boot boundary**: everything before it is request-independent.

Per (system, config text, interpreter options) a `BootRecord` evolves
over launches:

1. *probe* - the first launch runs normally and learns the boundary;
2. *capture* - the second launch re-runs the prefix, deep-copies the
   full interpreter + OS state right before the boundary statement
   (with the request queue normalized to empty), then continues;
3. *resume* - every later launch restores a copy of the snapshot,
   installs its own request queue, and executes only the statements
   from the boundary on.

Resumed runs produce the same `ProcessResult` a cold run would - same
verdicts, logs, responses and `steps` counts (the step counter is part
of the captured state) - which the parity suite enforces.  A config
whose boot never polls (e.g. it exits or crashes during startup) gets
`boundary=None` and keeps launching cold; those configs launch once
per unique request set anyway, and the launch cache above this layer
already deduplicates them.
"""

from __future__ import annotations

import copy
import itertools
import os
import pickle
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path

from repro.lang.ast_nodes import FunctionDef
from repro.lang.program import Program
from repro.lang.source import Location
from repro.runtime.codegen import codegen_plan_for
from repro.runtime.compile import LaunchPlan, plan_for
from repro.runtime.faults import ExitProcess, StackOverflowFault
from repro.runtime.interpreter import (
    Frame,
    Interpreter,
    InterpreterOptions,
    _ReturnSignal,
    _StaticMarker,
)
from repro.obs.profile import default_profiler
from repro.runtime.os_model import EmulatedOS, FileNode, LogRecord
from repro.runtime.process import ProcessResult, capture_outcome
from repro.runtime.values import (
    ArrayValue,
    BoxSlot,
    ElemSlot,
    FieldSlot,
    FileHandle,
    FunctionRef,
    Pointer,
    SparseArrayValue,
    StructValue,
    VarSlot,
    coerce,
    zero_value,
)

from repro.lang import types as ct


@dataclass
class BootSnapshot:
    """Captured pre-boundary state plus the index of the first
    request-touching top-level statement.

    The bundle is held as a private structure-copied bundle
    (`slim_state`) and each resume takes a **copy-on-write restore**
    through `copy_state_bundle`: immutable state (strings, numbers,
    `CType` tables, locations, log records) is shared by reference and
    only the mutable spine - dicts, lists, frames, struct/array
    values, slots, file nodes, the `EmulatedOS` - is rebuilt.  That
    replaces the old full `pickle.loads` round-trip per resume, which
    re-materialized every immutable leaf as well.  Identity relations
    inside the bundle (a `Pointer` into the globals dict, a shared
    `FileHandle`) survive the copy exactly as they did under pickle.

    `blob` holds the same slim bundle pickled - the cross-process
    transport form used by the shared-memory `SnapshotPool` (process
    workers map the bytes and unpickle once, then resume via
    copy-on-write like everyone else).  `state` is the legacy
    deep-copy fallback for bundles the structure copier refuses.
    """

    boundary: int
    blob: bytes | None = None
    state: dict | None = None
    slim_state: dict | None = None
    # Per-process purity scan over `slim_state`, built on first resume
    # (it holds `id()`s into the live bundle, so it never travels).
    copier: "StateBundleCopier | None" = field(
        default=None, repr=False, compare=False
    )

    def materialize(self, program: Program) -> dict:
        """An independent copy of the captured state bundle.

        `global_types` is rebuilt from the program rather than stored:
        it is exactly `_init_globals`' pass-1 mapping (name -> declared
        type), immutable after init, and copying its type objects per
        resume would be pure waste.
        """
        if self.slim_state is not None:
            copier = self.copier
            if copier is None or copier.state is not self.slim_state:
                copier = self.copier = StateBundleCopier(self.slim_state)
            state = copier.copy()
            state["global_types"] = _global_types_of(program)
            return state
        if self.blob is not None:
            # Transport form (shared-memory pool import): unpickle
            # once, then serve every later resume copy-on-write.
            self.slim_state = pickle.loads(self.blob)
            return self.materialize(program)
        return copy.deepcopy(self.state)

    def to_blob(self) -> bytes | None:
        """The snapshot's cross-process transport form (None when the
        bundle does not pickle or only a deep-copy fallback exists)."""
        if self.blob is not None:
            return self.blob
        if self.slim_state is None:
            return None
        try:
            return pickle.dumps(self.slim_state, pickle.HIGHEST_PROTOCOL)
        except Exception:
            return None


def _global_types_of(program: Program) -> dict:
    return {name: decl.type for name, decl in program.globals.items()}


# -- copy-on-write state restore ---------------------------------------------
#
# `Interpreter.STATE_FIELDS` closes over a small, known universe of
# runtime classes.  `copy_state_bundle` walks that graph once,
# rebuilding only the mutable spine and sharing every immutable leaf
# (numbers, strings, `CType` tables, `Location`s, log records, static
# markers) by reference.  The memo is `copy.deepcopy`-compatible
# (id(original) -> copy), so any type the dispatcher does not know
# falls back to a `deepcopy` that still honours identity relations
# with the rest of the bundle.

#: Leaf values shared by reference: immutable, or never mutated after
#: creation by any runtime path (LogRecord lines are append-only at
#: the list level; FunctionRef/_StaticMarker are read-only tokens).
_SHARED_LEAF_TYPES = (
    ct.CType,
    Location,
    LogRecord,
    FunctionRef,
    _StaticMarker,
)

_ATOMIC_TYPES = frozenset(
    (type(None), bool, int, float, complex, str, bytes, frozenset)
)

#: Memo key (never an `id()` int) carrying the precomputed fixup map
#: for this copy - see `StateBundleCopier`.
_FIXUPS_KEY = "__container_fixups__"

#: type -> "instances are shareable by reference" (atomic or a shared
#: leaf class); memoized because the scan asks per element type, not
#: per element.
_SHAREABLE_CACHE: dict[type, bool] = {t: True for t in _ATOMIC_TYPES}


def _shareable_type(kind: type) -> bool:
    known = _SHAREABLE_CACHE.get(kind)
    if known is None:
        known = issubclass(kind, _SHARED_LEAF_TYPES)
        _SHAREABLE_CACHE[kind] = known
    return known


def _copy_value(obj, memo):
    if type(obj) in _ATOMIC_TYPES:
        return obj
    found = memo.get(id(obj))
    if found is not None:
        return found
    copier = _COPIERS.get(type(obj))
    if copier is not None:
        return copier(obj, memo)
    if isinstance(obj, _SHARED_LEAF_TYPES):
        return obj
    # Exotic value planted by a custom builtin: deepcopy shares our
    # memo, so identity relations with the known spine still hold.
    return copy.deepcopy(obj, memo)


def _copy_dict(obj, memo):
    fixups = memo.get(_FIXUPS_KEY)
    if fixups is not None:
        impure_keys = fixups.get(id(obj))
        if impure_keys is not None:
            # One C-level copy shares every shareable value; only the
            # precomputed impure keys are rewritten recursively.
            new = dict(obj)
            memo[id(obj)] = new
            for key in impure_keys:
                new[key] = _copy_value(obj[key], memo)
            return new
    new = {}
    memo[id(obj)] = new
    for key, value in obj.items():
        # Keys are strings / (function, name) tuples - immutable.
        new[key] = _copy_value(value, memo)
    return new


def _copy_list(obj, memo):
    fixups = memo.get(_FIXUPS_KEY)
    if fixups is not None:
        impure_indices = fixups.get(id(obj))
        if impure_indices is not None:
            new = obj.copy()  # C-level; shareable elements ride along
            memo[id(obj)] = new
            for index in impure_indices:
                new[index] = _copy_value(obj[index], memo)
            return new
    new = []
    memo[id(obj)] = new
    for value in obj:
        new.append(_copy_value(value, memo))
    return new


def _copy_tuple(obj, memo):
    fixups = memo.get(_FIXUPS_KEY)
    if fixups is not None and id(obj) in fixups:
        # Immutable container of shareables: the tuple itself is
        # shareable by reference.
        memo[id(obj)] = obj
        return obj
    new = tuple(_copy_value(value, memo) for value in obj)
    memo[id(obj)] = new
    return new


def _copy_set(obj, memo):
    fixups = memo.get(_FIXUPS_KEY)
    if fixups is not None and id(obj) in fixups:
        new = obj.copy()  # every member shareable: one C-level copy
        memo[id(obj)] = new
        return new
    new = {_copy_value(value, memo) for value in obj}
    memo[id(obj)] = new
    return new


def _copy_frame(obj, memo):
    new = Frame(function=obj.function)
    memo[id(obj)] = new
    # The locals dict is aliased by VarSlots (&local), so it travels
    # through the memo as a first-class object in its own right.
    new.locals = _copy_value(obj.locals, memo)
    new.local_types = dict(obj.local_types)  # name -> CType, shared
    return new


def _copy_struct(obj, memo):
    new = StructValue.__new__(StructValue)
    memo[id(obj)] = new
    new.struct_name = obj.struct_name
    new.field_types = obj.field_types  # per-struct table, immutable
    new.fields = _copy_value(obj.fields, memo)
    return new


def _copy_array(obj, memo):
    new = ArrayValue.__new__(ArrayValue)
    memo[id(obj)] = new
    new.element_type = obj.element_type
    new.items = _copy_value(obj.items, memo)
    return new


def _copy_sparse_array(obj, memo):
    new = SparseArrayValue.__new__(SparseArrayValue)
    memo[id(obj)] = new
    new.element_type = obj.element_type
    new.items = None
    new.length = obj.length
    new.cells = _copy_value(obj.cells, memo)
    return new


def _copy_var_slot(obj, memo):
    new = VarSlot.__new__(VarSlot)
    memo[id(obj)] = new
    new.env = _copy_value(obj.env, memo)  # identity with globals/locals
    new.name = obj.name
    new.declared_type = obj.declared_type
    return new


def _copy_field_slot(obj, memo):
    new = FieldSlot.__new__(FieldSlot)
    memo[id(obj)] = new
    new.base = _copy_value(obj.base, memo)
    new.field_name = obj.field_name
    return new


def _copy_elem_slot(obj, memo):
    new = ElemSlot.__new__(ElemSlot)
    memo[id(obj)] = new
    new.base = _copy_value(obj.base, memo)
    new.index = obj.index
    return new


def _copy_box_slot(obj, memo):
    new = BoxSlot.__new__(BoxSlot)
    memo[id(obj)] = new
    new.value = _copy_value(obj.value, memo)
    new.declared_type = obj.declared_type
    return new


def _copy_pointer(obj, memo):
    slot = _copy_value(obj.slot, memo)
    new = Pointer(slot)
    memo[id(obj)] = new
    return new


def _copy_file_handle(obj, memo):
    new = FileHandle(
        fd=obj.fd,
        path=obj.path,
        mode=obj.mode,
        is_dir=obj.is_dir,
        read_pos=obj.read_pos,
        lines=list(obj.lines),  # lines are strings, shared
        closed=obj.closed,
    )
    memo[id(obj)] = new
    return new


def _copy_file_node(obj, memo):
    new = FileNode.__new__(FileNode)
    memo[id(obj)] = new
    new.__dict__.update(obj.__dict__)  # every field is an immutable scalar
    return new


def _copy_os(obj, memo):
    new = EmulatedOS.__new__(EmulatedOS)
    memo[id(obj)] = new
    for key, value in obj.__dict__.items():
        new.__dict__[key] = _copy_value(value, memo)
    return new


_COPIERS = {
    dict: _copy_dict,
    list: _copy_list,
    tuple: _copy_tuple,
    set: _copy_set,
    Frame: _copy_frame,
    StructValue: _copy_struct,
    ArrayValue: _copy_array,
    SparseArrayValue: _copy_sparse_array,
    VarSlot: _copy_var_slot,
    FieldSlot: _copy_field_slot,
    ElemSlot: _copy_elem_slot,
    BoxSlot: _copy_box_slot,
    Pointer: _copy_pointer,
    FileHandle: _copy_file_handle,
    FileNode: _copy_file_node,
    EmulatedOS: _copy_os,
}

#: Runtime classes' mutable fields the purity scan descends into
#: (the copiers above always privatize the objects themselves).
_SCAN_FIELDS = {
    Frame: ("locals",),
    StructValue: ("fields",),
    ArrayValue: ("items",),
    SparseArrayValue: ("cells",),
    VarSlot: ("env",),
    FieldSlot: ("base",),
    ElemSlot: ("base",),
    BoxSlot: ("value",),
    Pointer: ("slot",),
    FileHandle: (),
    FileNode: (),
}


def _scan_fixups(obj, fixups: dict[int, tuple], seen: set[int]) -> None:
    """Precompute each container's copy recipe.

    For a dict or list the recipe is the tuple of keys/indices whose
    values are NOT shareable by reference: every copy then starts from
    one C-level `dict()`/`list.copy()` and rewrites only those slots.
    A `set(map(type, ...))` probe keeps the all-shareable check at C
    speed, so a 64k-element int array costs one set-build here instead
    of 64k Python-level copy calls on every restore.  Sets and tuples
    get a recipe only when fully shareable (tuples are then shared
    outright - immutable containers of immutables)."""
    kind = type(obj)
    if _shareable_type(kind):
        return
    key = id(obj)
    if key in seen:
        return
    seen.add(key)
    if kind is dict:
        kinds = set(map(type, obj.values()))
        if all(_shareable_type(k) for k in kinds):
            fixups[key] = ()
            return
        impure = tuple(
            k for k, v in obj.items() if not _shareable_type(type(v))
        )
        fixups[key] = impure
        for k in impure:
            _scan_fixups(obj[k], fixups, seen)
    elif kind is list:
        kinds = set(map(type, obj))
        if all(_shareable_type(k) for k in kinds):
            fixups[key] = ()
            return
        impure = tuple(
            i for i, v in enumerate(obj) if not _shareable_type(type(v))
        )
        fixups[key] = impure
        for i in impure:
            _scan_fixups(obj[i], fixups, seen)
    elif kind is set or kind is tuple:
        kinds = set(map(type, obj))
        if all(_shareable_type(k) for k in kinds):
            fixups[key] = ()
            return
        for value in obj:
            _scan_fixups(value, fixups, seen)
    elif kind is EmulatedOS:
        for value in obj.__dict__.values():
            _scan_fixups(value, fixups, seen)
    else:
        for name in _SCAN_FIELDS.get(kind, ()):
            _scan_fixups(getattr(obj, name), fixups, seen)


class StateBundleCopier:
    """Amortized copy-on-write copier for one frozen state bundle.

    The fixup scan runs once; every `copy()` after that duplicates
    containers with one C-level `dict()`/`list.copy()` plus targeted
    rewrites of their few mutable slots, and shares all-immutable
    tuples outright - the difference between beating and losing to
    `pickle.loads` on array-heavy bundles.  Resumed runs mutate only
    the copies, never the source bundle, so the scan never goes stale.
    """

    __slots__ = ("state", "_fixups")

    def __init__(self, state: dict) -> None:
        self.state = state
        self._fixups: dict[int, tuple] = {}
        _scan_fixups(state, self._fixups, set())

    def copy(self) -> dict:
        return _copy_value(self.state, {_FIXUPS_KEY: self._fixups})


def copy_state_bundle(state: dict) -> dict:
    """A fully independent copy of an interpreter state bundle, with
    every immutable leaf shared by reference (copy-on-write restore).

    Semantically equivalent to `copy.deepcopy(state)` / a pickle
    round-trip: mutating the copy can never be observed through the
    original, and identity relations inside the bundle survive.
    Repeated copies of one bundle should hold a `StateBundleCopier`
    instead, amortizing the purity scan.
    """
    return StateBundleCopier(state).copy()


@dataclass
class BootStats:
    """Work accounting for one snapshot store."""

    resumes: int = 0  # launches served from a warm snapshot
    boots: int = 0  # full boots (probe or capture runs)
    captures: int = 0  # snapshots taken

    def snapshot(self) -> dict[str, int]:
        return {
            "resumes": self.resumes,
            "boots": self.boots,
            "captures": self.captures,
        }

    def absorb(self, delta: dict[str, int]) -> None:
        self.resumes += delta.get("resumes", 0)
        self.boots += delta.get("boots", 0)
        self.captures += delta.get("captures", 0)


@dataclass
class BootRecord:
    """What one (system, config, options) key has learned so far.

    Mutated in place across launches; all transitions are idempotent
    and derived from deterministic runs, so concurrent writers (thread
    executors sharing a snapshot cache) can only race to store
    equivalent values.
    """

    probed: bool = False
    boundary: int | None = None
    snapshot: BootSnapshot | None = None

    @property
    def can_resume(self) -> bool:
        return self.snapshot is not None


class BoundaryHint:
    """Speculative per-(system, options) boot boundary.

    All configs of one system that boot successfully reach the same
    serve statement, so once any config has learned the boundary,
    later configs capture their snapshot during their *first* run
    (merging the probe and capture boots into one).  The hint is only
    ever a speculation: a run whose observed boundary disagrees
    discards the speculative snapshot, so a wrong hint costs one extra
    boot, never correctness.
    """

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index: int | None = None


def boot_launch(
    program: Program,
    make_os,
    argv: list[str] | None,
    options: InterpreterOptions | None,
    record: BootRecord,
    requests: list[str] | None = None,
    stats: BootStats | None = None,
    hint: BoundaryHint | None = None,
) -> ProcessResult:
    """Launch `program`, replaying from `record`'s snapshot when one
    exists and teaching the record otherwise.

    `make_os` is a zero-argument factory producing this launch's
    freshly configured `EmulatedOS` (config installed, no requests);
    it is only invoked on cold boots - the resume path needs nothing
    from it, the snapshot supplies the whole world.
    """
    options = options if options is not None else InterpreterOptions()
    if options.engine == "compiled":
        plan = plan_for(program)
    elif options.engine == "codegen":
        plan = codegen_plan_for(program)
    else:
        plan = None
    # Sampled profiling (repro.obs): every Nth launch times its whole
    # phase - replay (resumed) or boot (cold) - and records the step
    # budget actually consumed.  Off-sample launches pay one counter.
    profiler = default_profiler()
    sampled = profiler.should_sample()
    begun = time.perf_counter() if sampled else 0.0
    if record.snapshot is not None:
        if stats is not None:
            stats.resumes += 1
        result = _resume(program, requests, options, plan, record)
        if sampled:
            profiler.record_phase("replay", time.perf_counter() - begun)
            profiler.record_steps(result.steps)
        return result
    if stats is not None:
        stats.boots += 1
    os_model = make_os()
    if requests:
        os_model.queue_requests(requests)
    interp = _fresh_interpreter(program, os_model, options, plan)
    result = capture_outcome(
        interp, lambda: _run_stepwise(interp, argv, record, plan, hint, stats)
    )
    if sampled:
        profiler.record_phase("boot", time.perf_counter() - begun)
        profiler.record_steps(result.steps)
    return result


def _fresh_interpreter(
    program: Program,
    os_model: EmulatedOS,
    options: InterpreterOptions,
    plan: LaunchPlan | None,
) -> Interpreter:
    """A cold interpreter, via the plan's global-init template when the
    program's global initializers are call-free (then the initialized
    state is a pure function of the program, so one copy-on-write
    restore replaces re-running `_init_globals` on every launch)."""
    if plan is None or not plan.globals_pure:
        return Interpreter(program, os_model, options, plan=plan)
    template = plan.globals_template
    if template is None:
        interp = Interpreter(program, os_model, options, plan=plan)
        bundle = dict(interp.state_bundle())
        bundle.pop("os")
        bundle.pop("global_types")
        try:
            # Privatize once; every later cold boot restores from this
            # bundle copy-on-write instead of re-running the inits.
            plan.globals_template = StateBundleCopier(
                copy_state_bundle(bundle)
            )
        except Exception:
            # Uncopyable initializer values: template disabled.
            plan.globals_pure = False
        return interp
    state = template.copy()
    state["os"] = os_model
    state["global_types"] = _global_types_of(program)
    return Interpreter.from_state(program, state, options, plan=plan)


# -- stepwise execution ------------------------------------------------------


def _main_runners(program: Program, plan: LaunchPlan | None) -> tuple:
    """Per-top-level-statement runners for main, engine-appropriate.

    Compiled plans carry their statement closures; the tree engine
    wraps each statement in an `exec_stmt` call.  Either way one
    runner executes one statement with full launch semantics.
    """
    if plan is not None:
        return plan.main_steps
    body = program.function("main").body
    if body is None:
        return ()
    return tuple(
        (lambda rt, _stmt=stmt: rt.exec_stmt(_stmt))
        for stmt in body.statements
    )


def _main_args(main: FunctionDef, argv: list[str] | None) -> list:
    """`run_main`'s argc/argv binding, verbatim."""
    argv = argv if argv is not None else ["prog"]
    if len(main.params) >= 2:
        return [len(argv), ArrayValue(ct.STRING, list(argv))]
    if len(main.params) == 1:
        return [len(argv)]
    return []


def _push_main_frame(interp: Interpreter, main: FunctionDef, args: list) -> None:
    """`call_function`'s prologue for main, verbatim."""
    if len(interp.frames) >= interp._max_call_depth:
        raise StackOverflowFault(
            f"call depth exceeded in {main.name}", main.location
        )
    frame = Frame(function=main.name)
    for i, param in enumerate(main.params):
        value = args[i] if i < len(args) else zero_value(param.type)
        frame.locals[param.name] = coerce(param.type, value)
        frame.local_types[param.name] = param.type
    if main.variadic:
        frame.locals["__varargs"] = list(args[len(main.params):])
    interp.frames.append(frame)


def _exit_code(main: FunctionDef, result: object) -> int:
    """`run_main`'s result-to-exit-code mapping, verbatim."""
    if isinstance(result, int):
        return result
    return 0


def _run_stepwise(
    interp: Interpreter,
    argv: list[str] | None,
    record: BootRecord,
    plan: LaunchPlan | None,
    hint: BoundaryHint | None = None,
    stats: BootStats | None = None,
) -> int:
    """Execute main() top-level statement by statement.

    Equivalent to `Interpreter.run_main` (the statements run through
    the same per-statement machinery `exec_block`/a compiled body
    would drive), with two additions between statements: learning the
    boot boundary, and capturing the snapshot.  On a probe run with a
    `hint` the capture is speculative - taken at the hinted index and
    discarded if the observed boundary disagrees - so most configs
    need only one cold boot.
    """
    program = interp.program
    main = program.function("main")
    runners = _main_runners(program, plan)
    if record.probed:
        # Known boundary, missing snapshot: a dedicated capture run.
        capture_at = record.boundary
        learning = False
    else:
        capture_at = hint.index if hint is not None else None
        learning = True
    boundary: int | None = None
    speculative: BootSnapshot | None = None
    os_model = interp.os
    try:
        try:
            _push_main_frame(interp, main, _main_args(main, argv))
            try:
                for index, run_stmt in enumerate(runners):
                    if index == capture_at:
                        if stats is not None:
                            stats.captures += 1
                        if learning:
                            speculative = _capture(interp, index)
                        else:
                            record.snapshot = _capture(interp, index)
                    if learning:
                        polls_before = os_model.request_polls
                        try:
                            run_stmt(interp)
                        finally:
                            if (
                                boundary is None
                                and os_model.request_polls > polls_before
                            ):
                                boundary = index
                    else:
                        run_stmt(interp)
                result: object = zero_value(main.return_type)
            except _ReturnSignal as ret:
                result = coerce(main.return_type, ret.value)
            finally:
                interp.frames.pop()
        finally:
            if learning:
                record.probed = True
                record.boundary = boundary
                if (
                    speculative is not None
                    and boundary is not None
                    and boundary >= speculative.boundary
                ):
                    # The first poll happened at (or after) the
                    # speculative capture point, so the captured state
                    # is request-independent; resumes replay from the
                    # capture index.  An earlier poll means the
                    # speculation read request-touched state: discard.
                    record.snapshot = speculative
                    record.boundary = speculative.boundary
                if hint is not None and boundary is not None:
                    hint.index = boundary
        return _exit_code(main, result)
    except ExitProcess as exit_:
        return exit_.code


# -- capture and resume ------------------------------------------------------


def _capture(interp: Interpreter, boundary: int) -> BootSnapshot:
    """Capture the interpreter's full state bundle, with the OS
    request queue normalized to empty.

    The boot prefix never touches the queue (by the boundary's
    definition), so the captured state is request-independent; resumed
    launches install their own queue.  One pickle (or fallback
    deepcopy) over the whole bundle preserves identity relations
    (pointers into environment dicts, shared file handles).
    """
    os_model = interp.os
    saved_requests = os_model.requests
    os_model.requests = []
    try:
        bundle = dict(interp.state_bundle())
        slim = dict(bundle)
        slim.pop("global_types")  # rebuilt from the program on resume
        try:
            private = copy_state_bundle(slim)
        except Exception:
            # Uncopyable state (e.g. a custom builtin planted a value
            # even deepcopy refuses): keep a live deep copy instead.
            return BootSnapshot(boundary=boundary, state=copy.deepcopy(bundle))
        return BootSnapshot(boundary=boundary, slim_state=private)
    finally:
        os_model.requests = saved_requests


def _resume(
    program: Program,
    requests: list[str] | None,
    options: InterpreterOptions,
    plan: LaunchPlan | None,
    record: BootRecord,
) -> ProcessResult:
    """Rebuild an interpreter from the snapshot and run only main's
    post-boundary statements against this launch's request queue."""
    snapshot = record.snapshot
    interp = Interpreter.from_state(
        program, snapshot.materialize(program), options, plan=plan
    )
    # Install this launch's queue only: the snapshot already holds the
    # post-queue, pre-boundary state (cursor 0, plus any responses the
    # boot prefix itself produced - which a cold run would keep).
    interp.os.requests = list(requests) if requests else []
    main = program.function("main")
    tail = _main_runners(program, plan)[snapshot.boundary:]

    def run_tail() -> int:
        try:
            try:
                try:
                    for run_stmt in tail:
                        run_stmt(interp)
                    result: object = zero_value(main.return_type)
                except _ReturnSignal as ret:
                    result = coerce(main.return_type, ret.value)
            finally:
                interp.frames.pop()
            return _exit_code(main, result)
        except ExitProcess as exit_:
            return exit_.code

    return capture_outcome(interp, run_tail)


# -- shared-memory snapshot pool ---------------------------------------------


#: Monotonic per-process suffix for pool segment names.
_SEGMENT_IDS = itertools.count()

#: Every pool segment is named ``repro-snap-<owner pid>-<n>``, so a
#: sweep can tell whose segments they are and whether the owner died.
_SEGMENT_PREFIX = "repro-snap-"


def _release_segments(segments: list) -> None:
    """Close and unlink a batch of owned segments (idempotent, and
    tolerant of segments that already vanished).  Module-level so a
    `weakref.finalize` can call it without resurrecting the pool."""
    drained = list(segments)
    segments.clear()
    for segment in drained:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:
            pass


class SnapshotPool:
    """Boot-snapshot transport for process-executor fleets.

    The parent publishes each captured snapshot's transport blob
    (`BootSnapshot.to_blob`) into one `multiprocessing.shared_memory`
    segment; workers *map* the segment by name and unpickle the bundle
    once instead of receiving a fresh pickle per task through the task
    pipe.  The manifest (`{key: (segment name, size, boundary)}`) is
    tiny and travels through the normal worker-seed side channel.

    The parent owns every segment, and ownership is enforced three
    ways so a crash can never leak shared memory indefinitely:
    `close()` (or use as a context manager) unlinks everything now; a
    `weakref.finalize` unlinks at garbage collection if the owner
    forgot; and segment names embed the owner's pid, so
    `sweep_orphans()` in any later process can reclaim segments whose
    owner died uncleanly (SIGKILL skips finalizers).  Workers use the
    static `fetch` and never unlink.
    """

    def __init__(self) -> None:
        self._segments: list = []
        self.manifest: dict[str, tuple[str, int, int]] = {}
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments
        )

    def publish(self, key: str, blob: bytes, boundary: int) -> None:
        """Copy one snapshot blob into a fresh shared segment."""
        from multiprocessing import shared_memory

        while True:
            name = f"{_SEGMENT_PREFIX}{os.getpid()}-{next(_SEGMENT_IDS)}"
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, len(blob))
                )
                break
            except FileExistsError:
                continue  # pid reuse left a stale name; take the next
        segment.buf[: len(blob)] = blob
        self._segments.append(segment)
        self.manifest[key] = (segment.name, len(blob), boundary)

    @staticmethod
    def fetch(entry: tuple[str, int, int]) -> bytes | None:
        """Worker side: map a published segment and copy its bytes out
        (None when the segment is already gone - the resume path then
        simply boots cold, correctness never depends on the pool)."""
        from multiprocessing import shared_memory

        name, size, _boundary = entry
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return None
        try:
            return bytes(segment.buf[:size])
        finally:
            segment.close()

    def close(self) -> None:
        """Close and unlink every published segment (idempotent).
        Mutates the segment list in place so the finalizer - which
        captured this very list - sees it drained."""
        self.manifest = {}
        _release_segments(self._segments)

    @staticmethod
    def sweep_orphans() -> int:
        """Reclaim pool segments whose owning process died uncleanly.

        A SIGKILL'd parent runs no finalizers, so its segments outlive
        it in /dev/shm.  Their names embed the owner's pid; any later
        process can check whether that pid is still alive and unlink
        the segments of the dead.  Returns how many were reclaimed.
        No-op (0) on platforms without a /dev/shm listing.
        """
        from multiprocessing import shared_memory

        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            return 0
        reclaimed = 0
        for path in shm_dir.iterdir():
            name = path.name
            if not name.startswith(_SEGMENT_PREFIX):
                continue
            pid_part = name[len(_SEGMENT_PREFIX):].split("-", 1)[0]
            if not pid_part.isdigit():
                continue
            try:
                os.kill(int(pid_part), 0)
                continue  # owner is alive; its segments are its own
            except ProcessLookupError:
                pass  # owner is dead: reclaim below
            except PermissionError:
                continue  # alive, owned by someone else
            try:
                segment = shared_memory.SharedMemory(name=name)
                segment.close()
                segment.unlink()
                reclaimed += 1
            except FileNotFoundError:
                continue  # a concurrent sweep beat us to it
        return reclaimed

    def __enter__(self) -> "SnapshotPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
