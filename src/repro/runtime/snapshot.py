"""Warm-boot snapshots - the launch engine's layer 2.

Every launch of one (system, config) pair executes an identical boot
prefix: `main()` reads the config file, validates it, binds ports and
initializes tables before it ever touches the functional-test request
queue.  The harness launches the same config repeatedly - once for
startup classification, then once per functional test - so the prefix
is re-interpreted over and over.

This module replays it instead.  `main`'s *top-level* statements are
executed one at a time (each statement runs through exactly the same
per-statement machinery as a plain launch, so semantics are
bit-identical); the emulated OS counts `next_request` polls, and the
index of the first top-level statement during which a poll happens is
the **boot boundary**: everything before it is request-independent.

Per (system, config text, interpreter options) a `BootRecord` evolves
over launches:

1. *probe* - the first launch runs normally and learns the boundary;
2. *capture* - the second launch re-runs the prefix, deep-copies the
   full interpreter + OS state right before the boundary statement
   (with the request queue normalized to empty), then continues;
3. *resume* - every later launch restores a copy of the snapshot,
   installs its own request queue, and executes only the statements
   from the boundary on.

Resumed runs produce the same `ProcessResult` a cold run would - same
verdicts, logs, responses and `steps` counts (the step counter is part
of the captured state) - which the parity suite enforces.  A config
whose boot never polls (e.g. it exits or crashes during startup) gets
`boundary=None` and keeps launching cold; those configs launch once
per unique request set anyway, and the launch cache above this layer
already deduplicates them.
"""

from __future__ import annotations

import copy
import pickle
import time
from dataclasses import dataclass

from repro.lang.ast_nodes import FunctionDef
from repro.lang.program import Program
from repro.runtime.compile import LaunchPlan, plan_for
from repro.runtime.faults import ExitProcess, StackOverflowFault
from repro.runtime.interpreter import (
    Frame,
    Interpreter,
    InterpreterOptions,
    _ReturnSignal,
)
from repro.obs.profile import default_profiler
from repro.runtime.os_model import EmulatedOS
from repro.runtime.process import ProcessResult, capture_outcome
from repro.runtime.values import ArrayValue, coerce, zero_value

from repro.lang import types as ct


@dataclass
class BootSnapshot:
    """Captured pre-boundary state plus the index of the first
    request-touching top-level statement.

    The bundle is stored pickled: one `pickle.loads` per resume is
    several times cheaper than a `copy.deepcopy` of the live object
    graph, and either way each resume gets a fully independent copy
    (within-bundle identity relations survive both).  State that
    cannot pickle (exotic values planted by custom builtins) falls
    back to holding the live bundle and deep-copying per resume.
    """

    boundary: int
    blob: bytes | None = None
    state: dict | None = None

    def materialize(self, program: Program) -> dict:
        """An independent copy of the captured state bundle.

        `global_types` is rebuilt from the program rather than stored:
        it is exactly `_init_globals`' pass-1 mapping (name -> declared
        type), immutable after init, and pickling its type objects per
        resume would be pure waste.
        """
        if self.blob is not None:
            state = pickle.loads(self.blob)
            state["global_types"] = _global_types_of(program)
            return state
        return copy.deepcopy(self.state)


def _global_types_of(program: Program) -> dict:
    return {name: decl.type for name, decl in program.globals.items()}


@dataclass
class BootStats:
    """Work accounting for one snapshot store."""

    resumes: int = 0  # launches served from a warm snapshot
    boots: int = 0  # full boots (probe or capture runs)
    captures: int = 0  # snapshots taken

    def snapshot(self) -> dict[str, int]:
        return {
            "resumes": self.resumes,
            "boots": self.boots,
            "captures": self.captures,
        }

    def absorb(self, delta: dict[str, int]) -> None:
        self.resumes += delta.get("resumes", 0)
        self.boots += delta.get("boots", 0)
        self.captures += delta.get("captures", 0)


@dataclass
class BootRecord:
    """What one (system, config, options) key has learned so far.

    Mutated in place across launches; all transitions are idempotent
    and derived from deterministic runs, so concurrent writers (thread
    executors sharing a snapshot cache) can only race to store
    equivalent values.
    """

    probed: bool = False
    boundary: int | None = None
    snapshot: BootSnapshot | None = None

    @property
    def can_resume(self) -> bool:
        return self.snapshot is not None


class BoundaryHint:
    """Speculative per-(system, options) boot boundary.

    All configs of one system that boot successfully reach the same
    serve statement, so once any config has learned the boundary,
    later configs capture their snapshot during their *first* run
    (merging the probe and capture boots into one).  The hint is only
    ever a speculation: a run whose observed boundary disagrees
    discards the speculative snapshot, so a wrong hint costs one extra
    boot, never correctness.
    """

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index: int | None = None


def boot_launch(
    program: Program,
    make_os,
    argv: list[str] | None,
    options: InterpreterOptions | None,
    record: BootRecord,
    requests: list[str] | None = None,
    stats: BootStats | None = None,
    hint: BoundaryHint | None = None,
) -> ProcessResult:
    """Launch `program`, replaying from `record`'s snapshot when one
    exists and teaching the record otherwise.

    `make_os` is a zero-argument factory producing this launch's
    freshly configured `EmulatedOS` (config installed, no requests);
    it is only invoked on cold boots - the resume path needs nothing
    from it, the snapshot supplies the whole world.
    """
    options = options if options is not None else InterpreterOptions()
    plan = plan_for(program) if options.engine == "compiled" else None
    # Sampled profiling (repro.obs): every Nth launch times its whole
    # phase - replay (resumed) or boot (cold) - and records the step
    # budget actually consumed.  Off-sample launches pay one counter.
    profiler = default_profiler()
    sampled = profiler.should_sample()
    begun = time.perf_counter() if sampled else 0.0
    if record.snapshot is not None:
        if stats is not None:
            stats.resumes += 1
        result = _resume(program, requests, options, plan, record)
        if sampled:
            profiler.record_phase("replay", time.perf_counter() - begun)
            profiler.record_steps(result.steps)
        return result
    if stats is not None:
        stats.boots += 1
    os_model = make_os()
    if requests:
        os_model.queue_requests(requests)
    interp = _fresh_interpreter(program, os_model, options, plan)
    result = capture_outcome(
        interp, lambda: _run_stepwise(interp, argv, record, plan, hint, stats)
    )
    if sampled:
        profiler.record_phase("boot", time.perf_counter() - begun)
        profiler.record_steps(result.steps)
    return result


def _fresh_interpreter(
    program: Program,
    os_model: EmulatedOS,
    options: InterpreterOptions,
    plan: LaunchPlan | None,
) -> Interpreter:
    """A cold interpreter, via the plan's global-init template when the
    program's global initializers are call-free (then the initialized
    state is a pure function of the program, so one pickle restore
    replaces re-running `_init_globals` on every launch)."""
    if plan is None or not plan.globals_pure:
        return Interpreter(program, os_model, options, plan=plan)
    template = plan.globals_template
    if template is None:
        interp = Interpreter(program, os_model, options, plan=plan)
        bundle = dict(interp.state_bundle())
        bundle.pop("os")
        bundle.pop("global_types")
        try:
            plan.globals_template = pickle.dumps(
                bundle, pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            # Unpicklable initializer values: template disabled.
            plan.globals_pure = False
        return interp
    state = pickle.loads(template)
    state["os"] = os_model
    state["global_types"] = _global_types_of(program)
    return Interpreter.from_state(program, state, options, plan=plan)


# -- stepwise execution ------------------------------------------------------


def _main_runners(program: Program, plan: LaunchPlan | None) -> tuple:
    """Per-top-level-statement runners for main, engine-appropriate.

    Compiled plans carry their statement closures; the tree engine
    wraps each statement in an `exec_stmt` call.  Either way one
    runner executes one statement with full launch semantics.
    """
    if plan is not None:
        return plan.main_steps
    body = program.function("main").body
    if body is None:
        return ()
    return tuple(
        (lambda rt, _stmt=stmt: rt.exec_stmt(_stmt))
        for stmt in body.statements
    )


def _main_args(main: FunctionDef, argv: list[str] | None) -> list:
    """`run_main`'s argc/argv binding, verbatim."""
    argv = argv if argv is not None else ["prog"]
    if len(main.params) >= 2:
        return [len(argv), ArrayValue(ct.STRING, list(argv))]
    if len(main.params) == 1:
        return [len(argv)]
    return []


def _push_main_frame(interp: Interpreter, main: FunctionDef, args: list) -> None:
    """`call_function`'s prologue for main, verbatim."""
    if len(interp.frames) >= interp._max_call_depth:
        raise StackOverflowFault(
            f"call depth exceeded in {main.name}", main.location
        )
    frame = Frame(function=main.name)
    for i, param in enumerate(main.params):
        value = args[i] if i < len(args) else zero_value(param.type)
        frame.locals[param.name] = coerce(param.type, value)
        frame.local_types[param.name] = param.type
    if main.variadic:
        frame.locals["__varargs"] = list(args[len(main.params):])
    interp.frames.append(frame)


def _exit_code(main: FunctionDef, result: object) -> int:
    """`run_main`'s result-to-exit-code mapping, verbatim."""
    if isinstance(result, int):
        return result
    return 0


def _run_stepwise(
    interp: Interpreter,
    argv: list[str] | None,
    record: BootRecord,
    plan: LaunchPlan | None,
    hint: BoundaryHint | None = None,
    stats: BootStats | None = None,
) -> int:
    """Execute main() top-level statement by statement.

    Equivalent to `Interpreter.run_main` (the statements run through
    the same per-statement machinery `exec_block`/a compiled body
    would drive), with two additions between statements: learning the
    boot boundary, and capturing the snapshot.  On a probe run with a
    `hint` the capture is speculative - taken at the hinted index and
    discarded if the observed boundary disagrees - so most configs
    need only one cold boot.
    """
    program = interp.program
    main = program.function("main")
    runners = _main_runners(program, plan)
    if record.probed:
        # Known boundary, missing snapshot: a dedicated capture run.
        capture_at = record.boundary
        learning = False
    else:
        capture_at = hint.index if hint is not None else None
        learning = True
    boundary: int | None = None
    speculative: BootSnapshot | None = None
    os_model = interp.os
    try:
        try:
            _push_main_frame(interp, main, _main_args(main, argv))
            try:
                for index, run_stmt in enumerate(runners):
                    if index == capture_at:
                        if stats is not None:
                            stats.captures += 1
                        if learning:
                            speculative = _capture(interp, index)
                        else:
                            record.snapshot = _capture(interp, index)
                    if learning:
                        polls_before = os_model.request_polls
                        try:
                            run_stmt(interp)
                        finally:
                            if (
                                boundary is None
                                and os_model.request_polls > polls_before
                            ):
                                boundary = index
                    else:
                        run_stmt(interp)
                result: object = zero_value(main.return_type)
            except _ReturnSignal as ret:
                result = coerce(main.return_type, ret.value)
            finally:
                interp.frames.pop()
        finally:
            if learning:
                record.probed = True
                record.boundary = boundary
                if (
                    speculative is not None
                    and boundary is not None
                    and boundary >= speculative.boundary
                ):
                    # The first poll happened at (or after) the
                    # speculative capture point, so the captured state
                    # is request-independent; resumes replay from the
                    # capture index.  An earlier poll means the
                    # speculation read request-touched state: discard.
                    record.snapshot = speculative
                    record.boundary = speculative.boundary
                if hint is not None and boundary is not None:
                    hint.index = boundary
        return _exit_code(main, result)
    except ExitProcess as exit_:
        return exit_.code


# -- capture and resume ------------------------------------------------------


def _capture(interp: Interpreter, boundary: int) -> BootSnapshot:
    """Capture the interpreter's full state bundle, with the OS
    request queue normalized to empty.

    The boot prefix never touches the queue (by the boundary's
    definition), so the captured state is request-independent; resumed
    launches install their own queue.  One pickle (or fallback
    deepcopy) over the whole bundle preserves identity relations
    (pointers into environment dicts, shared file handles).
    """
    os_model = interp.os
    saved_requests = os_model.requests
    os_model.requests = []
    try:
        bundle = dict(interp.state_bundle())
        slim = dict(bundle)
        slim.pop("global_types")  # rebuilt from the program on resume
        try:
            blob = pickle.dumps(slim, pickle.HIGHEST_PROTOCOL)
        except Exception:
            # Unpicklable state (e.g. a custom builtin planted an
            # exotic value): keep a live deep copy instead.
            return BootSnapshot(boundary=boundary, state=copy.deepcopy(bundle))
        return BootSnapshot(boundary=boundary, blob=blob)
    finally:
        os_model.requests = saved_requests


def _resume(
    program: Program,
    requests: list[str] | None,
    options: InterpreterOptions,
    plan: LaunchPlan | None,
    record: BootRecord,
) -> ProcessResult:
    """Rebuild an interpreter from the snapshot and run only main's
    post-boundary statements against this launch's request queue."""
    snapshot = record.snapshot
    interp = Interpreter.from_state(
        program, snapshot.materialize(program), options, plan=plan
    )
    # Install this launch's queue only: the snapshot already holds the
    # post-queue, pre-boundary state (cursor 0, plus any responses the
    # boot prefix itself produced - which a cold run would keep).
    interp.os.requests = list(requests) if requests else []
    main = program.function("main")
    tail = _main_runners(program, plan)[snapshot.boundary:]

    def run_tail() -> int:
        try:
            try:
                try:
                    for run_stmt in tail:
                        run_stmt(interp)
                    result: object = zero_value(main.return_type)
                except _ReturnSignal as ret:
                    result = coerce(main.return_type, ret.value)
            finally:
                interp.frames.pop()
            return _exit_code(main, result)
        except ExitProcess as exit_:
            return exit_.code

    return capture_outcome(interp, run_tail)
