"""Tree-walking interpreter for MiniC programs.

Executes a linked :class:`~repro.lang.program.Program` against an
:class:`~repro.runtime.os_model.EmulatedOS`.  Semantics follow C where
it matters to SPEX-INJ's observations: integer wrap on typed stores,
NULL-deref segfaults, out-of-bounds faults, divide-by-zero faults,
truncating division, pointer-ish string arithmetic, and a step/virtual
time budget that turns infinite loops and absurd sleeps into *hangs*.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.lang import types as ct
from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    BoolLiteral,
    Break,
    Call,
    CallIndirect,
    Cast,
    CharLiteral,
    Conditional,
    Continue,
    DoWhile,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    FunctionDef,
    Identifier,
    If,
    IncDec,
    Index,
    InitList,
    IntLiteral,
    Member,
    NullLiteral,
    Return,
    SizeOf,
    Stmt,
    StringLiteral,
    Switch,
    Unary,
    VarDecl,
    While,
)
from repro.lang.program import Program
from repro.lang.source import Location
from repro.runtime.builtins import REGISTRY
from repro.runtime.faults import (
    DivisionFault,
    ExitProcess,
    HangFault,
    SegmentationFault,
    StackOverflowFault,
)
from repro.runtime.os_model import EmulatedOS
from repro.runtime.values import (
    ArrayValue,
    ElemSlot,
    FieldSlot,
    FileHandle,
    FunctionRef,
    Pointer,
    Slot,
    StructValue,
    VarSlot,
    coerce,
    truthy,
    zero_value,
)


class InterpreterError(Exception):
    """A bug in the subject program itself (unknown name, bad call).

    Distinct from MachineFault: these indicate broken MiniC sources
    and should fail tests loudly rather than classify as crashes.
    """


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value
        super().__init__("return")


@dataclass
class InterpreterOptions:
    max_steps: int = 2_000_000
    max_virtual_seconds: float = 600.0
    # Each MiniC frame costs several Python frames; 100 keeps us safely
    # inside CPython's default recursion limit while still letting
    # runaway recursion manifest as a SIGSEGV-style fault.
    max_call_depth: int = 100
    # Which launch engine executes function bodies: "compiled" lowers
    # the AST once into bound Python closures (`repro.runtime.compile`)
    # and is the default; "codegen" lowers it further into generated
    # Python source compiled with `compile()`/`exec`
    # (`repro.runtime.codegen`), trading a slightly bigger one-time
    # compile for the fastest per-launch execution; "tree" is the
    # original tree-walking interpreter, kept as the reference
    # semantics for the differential parity suite.  All three are
    # bit-identical by contract (same verdicts, logs, steps, faults).
    engine: str = "compiled"
    # Warm-boot snapshots (`repro.runtime.snapshot`): replay a
    # config's boot prefix from a captured state copy instead of
    # re-interpreting it on every launch.  Read by the harness layer;
    # results are identical either way, only the work differs.
    warm_boot: bool = True

    def fingerprint(self) -> str:
        """Stable content hash of every execution knob.

        Two option sets with the same fingerprint run a program
        identically, so the fingerprint is the options component of
        the launch-cache key (`repro.pipeline.cache`).  `asdict`
        recurses, so new knobs automatically invalidate old entries.
        """
        payload = json.dumps(asdict(self), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(slots=True)
class Frame:
    function: str
    locals: dict = field(default_factory=dict)
    local_types: dict = field(default_factory=dict)


class Interpreter:
    """One process execution of a MiniC program."""

    __slots__ = (
        "program",
        "os",
        "options",
        "plan",
        "_compiled_bodies",
        "_invokes",
        "_max_steps",
        "_max_call_depth",
        "globals",
        "global_types",
        "statics",
        "static_types",
        "frames",
        "fd_table",
        "_fd_counter",
        "errno",
        "rand_state",
        "steps",
        "_field_type_tables",
    )

    #: Everything that evolves during one run - what a warm-boot
    #: snapshot must capture (`repro.runtime.snapshot`).  `os` is part
    #: of the bundle so one deepcopy preserves any sharing between
    #: interpreter values and OS state.
    STATE_FIELDS = (
        "globals",
        "global_types",
        "statics",
        "static_types",
        "frames",
        "fd_table",
        "_fd_counter",
        "errno",
        "rand_state",
        "steps",
        "os",
    )

    def __init__(
        self,
        program: Program,
        os_model: EmulatedOS | None = None,
        options: InterpreterOptions | None = None,
        plan=None,
    ):
        self.program = program
        self.os = os_model if os_model is not None else EmulatedOS()
        self.options = options or InterpreterOptions()
        self._bind_plan(plan)
        self._field_type_tables: dict[str, dict] = {}
        self.globals: dict[str, object] = {}
        self.global_types: dict[str, ct.CType] = {}
        self.statics: dict[tuple[str, str], object] = {}
        self.static_types: dict[tuple[str, str], ct.CType] = {}
        self.frames: list[Frame] = []
        self.fd_table: dict[int, FileHandle] = {}
        self._fd_counter = 2
        self.errno = 0
        self.rand_state = 123456789
        self.steps = 0
        self._init_streams()
        self._init_globals()

    def _bind_plan(self, plan) -> None:
        """Attach a compiled `LaunchPlan` (or None for tree-walking).

        `_max_steps` is memoized off the options because the budget
        check sits on the per-statement hot path of both engines; the
        options must not be mutated after construction.
        """
        self.plan = plan
        self._compiled_bodies = plan.bodies if plan is not None else {}
        self._invokes = getattr(plan, "invokes", None) or {}
        self._max_steps = self.options.max_steps
        self._max_call_depth = self.options.max_call_depth

    # -- snapshot support ---------------------------------------------------

    def state_bundle(self) -> dict[str, object]:
        """The mutable run state, as one bundle (not copied).

        Snapshot callers deep-copy the whole bundle in a single pass so
        identity relations between entries (a `Pointer` into the
        globals dict, a `FileHandle` shared with the fd table) survive
        the copy.
        """
        return {name: getattr(self, name) for name in self.STATE_FIELDS}

    @classmethod
    def from_state(
        cls,
        program: Program,
        state: dict[str, object],
        options: InterpreterOptions | None = None,
        plan=None,
    ) -> "Interpreter":
        """Rebuild an interpreter from a (copied) state bundle without
        re-running global initialization - the warm-boot restore path."""
        interp = cls.__new__(cls)
        interp.program = program
        interp.options = options or InterpreterOptions()
        interp._bind_plan(plan)
        interp._field_type_tables = {}
        for name in cls.STATE_FIELDS:
            setattr(interp, name, state[name])
        return interp

    # -- setup ---------------------------------------------------------

    def _init_streams(self) -> None:
        self.globals["stdout"] = FileHandle(fd=1, path="<stdout>", mode="w")
        self.globals["stderr"] = FileHandle(fd=2, path="<stderr>", mode="w")

    def _init_globals(self) -> None:
        # Pass 1: declare everything zeroed so initializers may take
        # addresses of later globals (mapping tables do this).
        for name, decl in self.program.globals.items():
            self.global_types[name] = decl.type
            self.globals[name] = self._zero_for(decl.type)
        # Pass 2: run initializers in declaration order.
        for name, decl in self.program.globals.items():
            if decl.init is not None:
                self.globals[name] = self._materialize(decl.type, decl.init)

    def _zero_for(self, typ: ct.CType) -> object:
        if isinstance(typ, ct.StructType):
            return self._new_struct(typ.name)
        if isinstance(typ, ct.ArrayType):
            length = typ.length or 0
            return ArrayValue(
                typ.element, [self._zero_for(typ.element) for _ in range(length)]
            )
        return zero_value(typ)

    def _new_struct(self, struct_name: str) -> StructValue:
        sdef = self.program.struct_def(struct_name)
        # One field-type table per struct *type*, shared by every
        # instance: `field_types` is read-only after construction, and
        # sharing it keeps warm-boot snapshot blobs small (pickle
        # stores the dict once per bundle instead of once per value).
        field_types = self._field_type_tables.get(struct_name)
        if field_types is None:
            field_types = {f.name: f.type for f in sdef.fields}
            self._field_type_tables[struct_name] = field_types
        value = StructValue(struct_name, field_types)
        for f in sdef.fields:
            if isinstance(f.type, ct.StructType):
                value.fields[f.name] = self._new_struct(f.type.name)
            elif isinstance(f.type, ct.ArrayType):
                value.fields[f.name] = self._zero_for(f.type)
        return value

    def _materialize(self, typ: ct.CType, expr: Expr) -> object:
        """Build a value of declared type from an initializer."""
        if isinstance(expr, InitList):
            if isinstance(typ, ct.ArrayType):
                items = [self._materialize(typ.element, item) for item in expr.items]
                if typ.length is not None and typ.length > len(items):
                    items += [
                        self._zero_for(typ.element)
                        for _ in range(typ.length - len(items))
                    ]
                return ArrayValue(typ.element, items)
            if isinstance(typ, ct.StructType):
                sdef = self.program.struct_def(typ.name)
                value = self._new_struct(typ.name)
                for i, item in enumerate(expr.items):
                    if i >= len(sdef.fields):
                        break
                    fdef = sdef.fields[i]
                    value.fields[fdef.name] = self._materialize(fdef.type, item)
                return value
            if expr.items:
                return self._materialize(typ, expr.items[0])
            return self._zero_for(typ)
        return coerce(typ, self.eval(expr))

    # -- resource helpers --------------------------------------------------

    def next_fd(self) -> int:
        self._fd_counter += 1
        return self._fd_counter

    def consume_time(self, seconds: float, location: Location | None = None) -> None:
        self.os.advance(seconds)
        if self.os.virtual_time_spent > self.options.max_virtual_seconds:
            raise HangFault(
                f"virtual time budget exceeded "
                f"({self.os.virtual_time_spent:.0f}s > "
                f"{self.options.max_virtual_seconds:.0f}s)"
            )

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self._max_steps:
            raise HangFault(f"step budget exceeded ({self._max_steps} steps)")

    # -- entry ---------------------------------------------------------------

    def run_main(self, argv: list[str] | None = None) -> int:
        """Run main(argc, argv); returns the exit code."""
        argv = argv if argv is not None else ["prog"]
        main = self.program.function("main")
        args: list[object] = []
        if len(main.params) >= 2:
            args = [len(argv), ArrayValue(ct.STRING, list(argv))]
        elif len(main.params) == 1:
            args = [len(argv)]
        try:
            result = self.call_function(main, args)
        except ExitProcess as exit_:
            return exit_.code
        if isinstance(result, int):
            return result
        return 0

    def call_named(self, name: str, args: list[object]) -> object:
        return self.call_function(self.program.function(name), args)

    # -- function calls --------------------------------------------------------

    def call_function(self, fn: FunctionDef, args: list[object]) -> object:
        invoke = self._invokes.get(fn.name)
        if invoke is not None:
            # Codegen engine: the generated function owns the whole
            # invoke protocol (depth check, frame, binding, coercion).
            return invoke(self, args)
        if len(self.frames) >= self._max_call_depth:
            raise StackOverflowFault(
                f"call depth exceeded in {fn.name}", fn.location
            )
        frame = Frame(function=fn.name)
        for i, param in enumerate(fn.params):
            value = args[i] if i < len(args) else zero_value(param.type)
            frame.locals[param.name] = coerce(param.type, value)
            frame.local_types[param.name] = param.type
        if fn.variadic:
            frame.locals["__varargs"] = list(args[len(fn.params) :])
        self.frames.append(frame)
        try:
            if fn.body is not None:
                runner = self._compiled_bodies.get(fn.name)
                if runner is not None:
                    runner(self)
                else:
                    self.exec_block(fn.body)
            result: object = zero_value(fn.return_type)
        except _ReturnSignal as ret:
            result = coerce(fn.return_type, ret.value)
        finally:
            self.frames.pop()
        return result

    def _call_builtin_or_user(self, name: str, args: list[object], loc: Location):
        if self.program.has_function(name):
            return self.call_function(self.program.function(name), args)
        builtin = REGISTRY.get(name)
        if builtin is not None:
            return builtin(self, args, loc)
        raise InterpreterError(f"{loc}: call to undefined function {name!r}")

    # -- statements ------------------------------------------------------------

    def exec_block(self, block: Block) -> None:
        for stmt in block.statements:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: Stmt) -> None:
        self._tick()
        method = self._STMT_DISPATCH.get(type(stmt))
        if method is None:
            raise InterpreterError(f"unhandled statement {type(stmt).__name__}")
        method(self, stmt)

    def _exec_expr_stmt(self, stmt: ExprStmt) -> None:
        self.eval(stmt.expr)

    def _exec_var_decl(self, stmt: VarDecl) -> None:
        frame = self.frames[-1]
        if stmt.is_static:
            key = (frame.function, stmt.name)
            if key not in self.statics:
                self.static_types[key] = stmt.type
                if stmt.init is not None:
                    self.statics[key] = self._materialize(stmt.type, stmt.init)
                else:
                    self.statics[key] = self._zero_for(stmt.type)
            frame.local_types[stmt.name] = stmt.type
            frame.locals[stmt.name] = _StaticMarker(key)
            return
        frame.local_types[stmt.name] = stmt.type
        if stmt.init is not None:
            frame.locals[stmt.name] = self._materialize(stmt.type, stmt.init)
        else:
            frame.locals[stmt.name] = self._zero_for(stmt.type)

    def _exec_block_stmt(self, stmt: Block) -> None:
        self.exec_block(stmt)

    def _exec_if(self, stmt: If) -> None:
        if truthy(self.eval(stmt.cond)):
            self.exec_stmt(stmt.then)
        elif stmt.other is not None:
            self.exec_stmt(stmt.other)

    def _exec_while(self, stmt: While) -> None:
        while True:
            self._tick()
            if not truthy(self.eval(stmt.cond)):
                return
            try:
                self.exec_stmt(stmt.body)
            except _BreakSignal:
                return
            except _ContinueSignal:
                continue

    def _exec_do_while(self, stmt: DoWhile) -> None:
        while True:
            self._tick()
            try:
                self.exec_stmt(stmt.body)
            except _BreakSignal:
                return
            except _ContinueSignal:
                pass
            if not truthy(self.eval(stmt.cond)):
                return

    def _exec_for(self, stmt: For) -> None:
        if stmt.init is not None:
            self.exec_stmt(stmt.init)
        while True:
            self._tick()
            if stmt.cond is not None and not truthy(self.eval(stmt.cond)):
                return
            try:
                self.exec_stmt(stmt.body)
            except _BreakSignal:
                return
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                self.eval(stmt.step)

    def _exec_switch(self, stmt: Switch) -> None:
        subject = self.eval(stmt.subject)
        start = None
        default = None
        for i, case in enumerate(stmt.cases):
            if case.value is None:
                default = i
            elif _values_equal(subject, self.eval(case.value)):
                start = i
                break
        if start is None:
            start = default
        if start is None:
            return
        try:
            for case in stmt.cases[start:]:
                for inner in case.body:
                    self.exec_stmt(inner)
        except _BreakSignal:
            return

    def _exec_break(self, stmt: Break) -> None:
        raise _BreakSignal()

    def _exec_continue(self, stmt: Continue) -> None:
        raise _ContinueSignal()

    def _exec_return(self, stmt: Return) -> None:
        value = self.eval(stmt.value) if stmt.value is not None else None
        raise _ReturnSignal(value)

    # -- lvalues --------------------------------------------------------------

    def resolve_slot(self, expr: Expr) -> Slot:
        if isinstance(expr, Identifier):
            return self._name_slot(expr.name, expr.location)
        if isinstance(expr, Member):
            base = self.eval(expr.base)
            struct = self._struct_from(base, expr)
            return FieldSlot(struct, expr.field_name)
        if isinstance(expr, Index):
            base = self.eval(expr.base)
            index = self.eval(expr.index)
            return index_slot(base, index, expr.location)
        if isinstance(expr, Unary) and expr.op == "*":
            target = self.eval(expr.operand)
            if target is None:
                raise SegmentationFault("NULL pointer dereference", expr.location)
            if isinstance(target, Pointer):
                return target.slot
            if isinstance(target, ArrayValue):
                return ElemSlot(target, 0)
            raise SegmentationFault(
                f"dereferencing non-pointer {target!r}", expr.location
            )
        raise InterpreterError(
            f"{expr.location}: expression is not assignable"
        )

    def _name_slot(self, name: str, location: Location) -> Slot:
        for frame in (self.frames[-1],) if self.frames else ():
            if name in frame.locals:
                value = frame.locals[name]
                if isinstance(value, _StaticMarker):
                    return VarSlot(
                        self.statics, value.key, self.static_types.get(value.key)
                    )
                return VarSlot(frame.locals, name, frame.local_types.get(name))
        if name == "errno":
            return _ErrnoSlot(self)
        if name in self.globals:
            return VarSlot(self.globals, name, self.global_types.get(name))
        raise InterpreterError(f"{location}: undefined variable {name!r}")

    def _struct_from(self, base: object, expr: Member) -> StructValue:
        return struct_from(base, expr.field_name, expr.location)

    # -- expressions --------------------------------------------------------

    def eval(self, expr: Expr) -> object:
        method = self._EXPR_DISPATCH.get(type(expr))
        if method is None:
            raise InterpreterError(f"unhandled expression {type(expr).__name__}")
        return method(self, expr)

    def _eval_int(self, expr: IntLiteral):
        return expr.value

    def _eval_float(self, expr: FloatLiteral):
        return expr.value

    def _eval_string(self, expr: StringLiteral):
        return expr.value

    def _eval_char(self, expr: CharLiteral):
        return expr.value

    def _eval_bool(self, expr: BoolLiteral):
        return 1 if expr.value else 0

    def _eval_null(self, expr: NullLiteral):
        return None

    def _eval_identifier(self, expr: Identifier):
        name = expr.name
        if self.frames and name in self.frames[-1].locals:
            value = self.frames[-1].locals[name]
            if isinstance(value, _StaticMarker):
                return self.statics[value.key]
            return value
        if name == "errno":
            return self.errno
        if name in self.globals:
            return self.globals[name]
        if self.program.has_function(name) or name in self.program.prototypes:
            return FunctionRef(name)
        raise InterpreterError(f"{expr.location}: undefined identifier {name!r}")

    def _eval_unary(self, expr: Unary):
        if expr.op == "&":
            return Pointer(self.resolve_slot(expr.operand))
        value = self.eval(expr.operand)
        if expr.op == "*":
            return self._deref_value(value, expr.location)
        if expr.op == "!":
            return 0 if truthy(value) else 1
        if expr.op == "-":
            if isinstance(value, (int, float)):
                return -value
            raise SegmentationFault(f"negating non-number {value!r}", expr.location)
        if expr.op == "~":
            return ~_int_of(value, expr.location)
        raise InterpreterError(f"unhandled unary {expr.op}")

    def _deref_value(self, value: object, location: Location):
        return deref_value(value, location)

    def _eval_incdec(self, expr: IncDec):
        slot = self.resolve_slot(expr.operand)
        old = slot.get(expr.location)
        if not isinstance(old, (int, float)):
            raise SegmentationFault(
                f"++/-- on non-number {old!r}", expr.location
            )
        new = old + 1 if expr.op == "++" else old - 1
        slot.set(new, expr.location)
        return slot.get(expr.location) if expr.prefix else old

    def _eval_binary(self, expr: Binary):
        op = expr.op
        if op == "&&":
            if not truthy(self.eval(expr.left)):
                return 0
            return 1 if truthy(self.eval(expr.right)) else 0
        if op == "||":
            if truthy(self.eval(expr.left)):
                return 1
            return 1 if truthy(self.eval(expr.right)) else 0
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        return self._binop(op, left, right, expr.location)

    def _binop(self, op: str, left, right, loc: Location):
        return binop(op, left, right, loc)

    def _eval_conditional(self, expr: Conditional):
        if truthy(self.eval(expr.cond)):
            return self.eval(expr.then)
        return self.eval(expr.other)

    def _eval_assign(self, expr: Assign):
        slot = self.resolve_slot(expr.target)
        value = self.eval(expr.value)
        if expr.op != "=":
            current = slot.get(expr.location)
            value = self._binop(expr.op[:-1], current, value, expr.location)
        slot.set(value, expr.location)
        return slot.get(expr.location)

    def _eval_call(self, expr: Call):
        self._tick()
        args = [self.eval(arg) for arg in expr.args]
        return self._call_builtin_or_user(expr.callee, args, expr.location)

    def _eval_call_indirect(self, expr: CallIndirect):
        self._tick()
        target = self.eval(expr.func)
        if target is None:
            raise SegmentationFault("call through NULL function pointer", expr.location)
        if not isinstance(target, FunctionRef):
            raise SegmentationFault(
                f"call through non-function value {target!r}", expr.location
            )
        args = [self.eval(arg) for arg in expr.args]
        return self._call_builtin_or_user(target.name, args, expr.location)

    def _eval_member(self, expr: Member):
        base = self.eval(expr.base)
        struct = self._struct_from(base, expr)
        return struct.get(expr.field_name, expr.location)

    def _eval_index(self, expr: Index):
        base = self.eval(expr.base)
        index = self.eval(expr.index)
        return index_value(base, index, expr.location)

    def _eval_cast(self, expr: Cast):
        return cast_value(expr.type, self.eval(expr.operand))

    def _eval_sizeof(self, expr: SizeOf):
        return sizeof_value(expr.type, self.program.structs)

    def _eval_initlist(self, expr: InitList):
        return ArrayValue(None, [self.eval(item) for item in expr.items])

    _EXPR_DISPATCH = {}
    _STMT_DISPATCH = {}


@dataclass
class _StaticMarker:
    key: tuple[str, str]


class _ErrnoSlot(Slot):
    def __init__(self, interp: Interpreter):
        self.interp = interp

    def get(self, location=None):
        return self.interp.errno

    def set(self, value, location=None):
        self.interp.errno = int(value) if isinstance(value, (int, float)) else 0


def _values_equal(left, right) -> bool:
    # NULL compares equal to 0 (C's null pointer constant).
    if left is None:
        return right is None or right == 0
    if right is None:
        return left is None or left == 0
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    return left is right


def _compare_key(value, loc):
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    raise SegmentationFault(f"ordered comparison on {value!r}", loc)


def _number_of(value, loc):
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    raise SegmentationFault(f"arithmetic on non-number {value!r}", loc)


def _int_of(value, loc) -> int:
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return int(value)
    raise SegmentationFault(f"integer operation on {value!r}", loc)


# -- shared value semantics ---------------------------------------------------
#
# These module-level helpers are the single implementation of MiniC's
# value-level semantics, used by both the tree-walking methods above
# and the closure compiler (`repro.runtime.compile`).  Sharing them is
# what makes the two engines bit-identical by construction for
# everything below statement/expression dispatch.


def binop(op: str, left, right, loc: Location):
    """Evaluate one binary operator with C-ish semantics."""
    if op == "==":
        return 1 if _values_equal(left, right) else 0
    if op == "!=":
        return 0 if _values_equal(left, right) else 1
    if op in ("<", ">", "<=", ">="):
        lnum = _compare_key(left, loc)
        rnum = _compare_key(right, loc)
        result = {
            "<": lnum < rnum,
            ">": lnum > rnum,
            "<=": lnum <= rnum,
            ">=": lnum >= rnum,
        }[op]
        return 1 if result else 0
    # Pointer-style arithmetic on strings: s + n advances.
    if op == "+" and isinstance(left, str) and isinstance(right, int):
        return left[min(right, len(left)) :] if right >= 0 else left
    if op == "+" and isinstance(right, str) and isinstance(left, int):
        return right[min(left, len(right)) :] if left >= 0 else right
    lnum = _number_of(left, loc)
    rnum = _number_of(right, loc)
    if op == "+":
        return lnum + rnum
    if op == "-":
        return lnum - rnum
    if op == "*":
        return lnum * rnum
    if op == "/":
        if rnum == 0:
            raise DivisionFault("division by zero", loc)
        if isinstance(lnum, int) and isinstance(rnum, int):
            q = abs(lnum) // abs(rnum)
            return q if (lnum >= 0) == (rnum >= 0) else -q
        return lnum / rnum
    if op == "%":
        if rnum == 0:
            raise DivisionFault("modulo by zero", loc)
        li, ri = int(lnum), int(rnum)
        r = abs(li) % abs(ri)
        return r if li >= 0 else -r
    li, ri = _int_of(left, loc), _int_of(right, loc)
    if op == "<<":
        return li << (ri & 63)
    if op == ">>":
        return li >> (ri & 63)
    if op == "&":
        return li & ri
    if op == "|":
        return li | ri
    if op == "^":
        return li ^ ri
    raise InterpreterError(f"unhandled binary {op}")


def deref_value(value: object, location: Location):
    """`*value` in rvalue position."""
    if value is None:
        raise SegmentationFault("NULL pointer dereference", location)
    if isinstance(value, Pointer):
        return value.deref(location)
    if isinstance(value, str):
        return ord(value[0]) if value else 0
    if isinstance(value, ArrayValue):
        return value.get(0, location)
    raise SegmentationFault(f"dereferencing non-pointer {value!r}", location)


def struct_from(base: object, field_name: str, location: Location) -> StructValue:
    """Resolve the struct a member access reads through (auto-deref)."""
    if base is None:
        raise SegmentationFault(
            f"NULL dereference accessing field {field_name!r}", location
        )
    if isinstance(base, Pointer):
        base = base.deref(location)
        if base is None:
            raise SegmentationFault(
                f"NULL dereference accessing field {field_name!r}", location
            )
    if isinstance(base, StructValue):
        return base
    raise SegmentationFault(
        f"field access on non-struct value {base!r}", location
    )


def index_value(base, index, location: Location):
    """`base[index]` in rvalue position (strings index to char codes)."""
    if base is None:
        raise SegmentationFault("indexing NULL pointer", location)
    if isinstance(base, str):
        if not isinstance(index, int):
            raise SegmentationFault("non-integer string index", location)
        if index == len(base):
            return 0  # the terminating NUL
        if 0 <= index < len(base):
            return ord(base[index])
        raise SegmentationFault(
            f"string index {index} out of bounds", location
        )
    if isinstance(base, ArrayValue):
        if not isinstance(index, int):
            raise SegmentationFault("non-integer array index", location)
        return base.get(index, location)
    raise SegmentationFault(f"indexing non-array {base!r}", location)


def index_slot(base, index, location: Location) -> Slot:
    """`base[index]` in lvalue position."""
    if base is None:
        raise SegmentationFault("indexing NULL pointer", location)
    if isinstance(base, ArrayValue):
        if not isinstance(index, int):
            raise SegmentationFault(f"non-integer index {index!r}", location)
        return ElemSlot(base, index)
    if isinstance(base, str):
        raise SegmentationFault("write into string literal", location)
    raise SegmentationFault(f"indexing non-array value {base!r}", location)


def cast_value(typ: ct.CType, value: object):
    """C cast semantics: integer wrap, float widening, bool collapse."""
    if isinstance(typ, ct.IntType) and isinstance(value, (int, float, bool)):
        return typ.wrap(int(value))
    if isinstance(typ, ct.FloatType) and isinstance(value, (int, float)):
        return float(value)
    if isinstance(typ, ct.BoolType):
        return 1 if truthy(value) else 0
    return value


def sizeof_value(typ: ct.CType, structs: dict) -> int:
    """sizeof(type); struct sizes read the program's struct table."""
    if isinstance(typ, ct.IntType):
        return typ.bits // 8
    if isinstance(typ, ct.FloatType):
        return typ.bits // 8
    if isinstance(typ, ct.PointerType):
        return 8
    if isinstance(typ, ct.BoolType):
        return 1
    if isinstance(typ, ct.StructType):
        sdef = structs.get(typ.name)
        return 8 * len(sdef.fields) if sdef else 8
    return 8


Interpreter._EXPR_DISPATCH = {
    IntLiteral: Interpreter._eval_int,
    FloatLiteral: Interpreter._eval_float,
    StringLiteral: Interpreter._eval_string,
    CharLiteral: Interpreter._eval_char,
    BoolLiteral: Interpreter._eval_bool,
    NullLiteral: Interpreter._eval_null,
    Identifier: Interpreter._eval_identifier,
    Unary: Interpreter._eval_unary,
    IncDec: Interpreter._eval_incdec,
    Binary: Interpreter._eval_binary,
    Conditional: Interpreter._eval_conditional,
    Assign: Interpreter._eval_assign,
    Call: Interpreter._eval_call,
    CallIndirect: Interpreter._eval_call_indirect,
    Member: Interpreter._eval_member,
    Index: Interpreter._eval_index,
    Cast: Interpreter._eval_cast,
    SizeOf: Interpreter._eval_sizeof,
    InitList: Interpreter._eval_initlist,
}

Interpreter._STMT_DISPATCH = {
    ExprStmt: Interpreter._exec_expr_stmt,
    VarDecl: Interpreter._exec_var_decl,
    Block: Interpreter._exec_block_stmt,
    If: Interpreter._exec_if,
    While: Interpreter._exec_while,
    DoWhile: Interpreter._exec_do_while,
    For: Interpreter._exec_for,
    Switch: Interpreter._exec_switch,
    Break: Interpreter._exec_break,
    Continue: Interpreter._exec_continue,
    Return: Interpreter._exec_return,
}
