"""Typed async client for the validation service.

Mirrors the service's API surface one coroutine per op, rehydrating
wire dicts into the typed models so callers never touch raw JSON.
The schema version travels in every response envelope; a mismatch
raises `ServeError("schema-mismatch")` instead of silently misreading
fields.

Usage::

    import asyncio
    from repro.serve import ServeClient

    async def main():
        client = await ServeClient.connect("127.0.0.1", 7878)
        response = await client.check("mysql", "port = 70000\n",
                                      config_id="prod/my.cnf")
        print(response.flagged, response.errors)
        async for item in client.iter_pages(response.page):
            print(item["param"], item["message"])
        await client.close()

    asyncio.run(main())

`submit_config` is the synchronous one-shot used by the ``submit``
CLI command: connect, check, drain every diagnostic page, disconnect.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.models import (
    SCHEMA_VERSION,
    CheckResponse,
    ConfigHistory,
    DiagnosticPage,
    FleetStatus,
    MetricsResponse,
    ServeError,
)
from repro.serve.server import MAX_LINE_BYTES


class ServeClient:
    """One NDJSON connection to a `ValidationServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        read_timeout: float | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        # How long one op may wait for its response line (None = wait
        # forever).  A blown timeout surfaces as a typed
        # `ServeError("deadline")`, never a hang or a bare
        # `TimeoutError` the caller has to know asyncio internals for.
        self.read_timeout = read_timeout

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        connect_timeout: float | None = None,
        read_timeout: float | None = None,
    ) -> "ServeClient":
        try:
            if connect_timeout is None:
                reader, writer = await asyncio.open_connection(
                    host, port, limit=MAX_LINE_BYTES
                )
            else:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        host, port, limit=MAX_LINE_BYTES
                    ),
                    connect_timeout,
                )
        except asyncio.TimeoutError:
            raise ServeError(
                "deadline",
                f"connecting to {host}:{port} exceeded the "
                f"{connect_timeout}s connect timeout",
            ) from None
        return cls(reader, writer, read_timeout=read_timeout)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- the wire ------------------------------------------------------------

    async def _call(self, op: str, **payload) -> dict:
        message = dict(payload, op=op)
        self._writer.write(
            (json.dumps(message) + "\n").encode("utf-8")
        )
        try:
            if self.read_timeout is None:
                await self._writer.drain()
                line = await self._reader.readline()
            else:
                await asyncio.wait_for(
                    self._writer.drain(), self.read_timeout
                )
                line = await asyncio.wait_for(
                    self._reader.readline(), self.read_timeout
                )
        except asyncio.TimeoutError:
            raise ServeError(
                "deadline",
                f"op {op!r} exceeded the {self.read_timeout}s read "
                "timeout waiting on the server",
            ) from None
        if not line:
            raise ServeError(
                "bad-request", "server closed the connection mid-call"
            )
        envelope = json.loads(line.decode("utf-8"))
        version = envelope.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ServeError(
                "schema-mismatch",
                f"server speaks schema {version}, client expects "
                f"{SCHEMA_VERSION}",
            )
        if not envelope.get("ok"):
            error = envelope.get("error") or {}
            raise ServeError(
                error.get("code", "bad-request"),
                error.get("message", "unspecified server error"),
            )
        return envelope["data"]

    # -- typed ops -----------------------------------------------------------

    async def check(
        self,
        system: str,
        config_text: str,
        config_id: str | None = None,
        page_size: int | None = None,
        severity: str | None = None,
        kinds: tuple[str, ...] = (),
    ) -> CheckResponse:
        payload: dict = {
            "system": system,
            "config_text": config_text,
            "config_id": config_id,
            "severity": severity,
            "kinds": list(kinds),
        }
        if page_size is not None:
            payload["page_size"] = page_size
        return CheckResponse.from_dict(await self._call("check", **payload))

    async def page(
        self, cursor: str, limit: int | None = None
    ) -> DiagnosticPage:
        return DiagnosticPage.from_dict(
            await self._call("page", cursor=cursor, limit=limit)
        )

    async def history(self, system: str, config_id: str) -> ConfigHistory:
        return ConfigHistory.from_dict(
            await self._call("history", system=system, config_id=config_id)
        )

    async def status(self) -> FleetStatus:
        return FleetStatus.from_dict(await self._call("status"))

    async def metrics(self, limit: int | None = None) -> MetricsResponse:
        payload = {} if limit is None else {"limit": limit}
        return MetricsResponse.from_dict(
            await self._call("metrics", **payload)
        )

    async def ping(self) -> bool:
        return bool((await self._call("ping")).get("pong"))

    async def shutdown(self) -> None:
        await self._call("shutdown")

    # -- pagination helpers --------------------------------------------------

    async def iter_pages(self, first_page: DiagnosticPage):
        """Async-iterate every diagnostic from `first_page` onward,
        following cursors until exhaustion."""
        page = first_page
        while True:
            for item in page.items:
                yield item
            if page.cursor is None:
                return
            page = await self.page(page.cursor)

    async def check_all(
        self, system: str, config_text: str, **kwargs
    ) -> tuple[CheckResponse, list[dict]]:
        """Check, then drain every page: (response, all diagnostics
        that matched the request's filter)."""
        response = await self.check(system, config_text, **kwargs)
        items = [
            item async for item in self.iter_pages(response.page)
        ]
        return response, items


def submit_config(
    host: str,
    port: int,
    system: str,
    config_text: str,
    config_id: str | None = None,
    severity: str | None = None,
    kinds: tuple[str, ...] = (),
    connect_timeout: float | None = None,
    read_timeout: float | None = None,
) -> tuple[CheckResponse, list[dict]]:
    """One-shot synchronous submission (the ``submit`` CLI command)."""

    async def run():
        client = await ServeClient.connect(
            host,
            port,
            connect_timeout=connect_timeout,
            read_timeout=read_timeout,
        )
        try:
            return await client.check_all(
                system,
                config_text,
                config_id=config_id,
                severity=severity,
                kinds=kinds,
            )
        finally:
            await client.close()

    return asyncio.run(run())
