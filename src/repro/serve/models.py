"""Typed request/response models for the validation service.

Everything that crosses the `repro.serve` wire is a frozen dataclass
with an explicit `summary_dict()` / `from_dict()` pair, so the NDJSON
transport (`repro.serve.server` / `client`) stays a dumb pipe and the
schema lives in exactly one place.  `SCHEMA_VERSION` is embedded in
every response envelope; a client that sees a version it does not
know refuses loudly instead of misreading fields.

The service is *read-mostly and bounded by construction*: page sizes,
severity/kind filters, cursor lifetimes and config sizes all have
server-enforced ceilings (`MAX_PAGE_SIZE`, `MAX_FILTER_KINDS`,
`MAX_CONFIG_BYTES`), mirroring the DoS-protection posture of
production misconfiguration APIs - a client cannot ask one request to
materialize unbounded work.

Usage::

    from repro.serve import CheckRequest

    request = CheckRequest(system="mysql", config_text="port = 3306\n")
    request.validate()          # raises ServeError on a bad request
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field

from repro.checker.validate import (
    CONSTRAINT_KINDS,
    ERROR,
    KIND_UNKNOWN_PARAM,
    WARNING,
)

SCHEMA_VERSION = 1

# Server-enforced ceilings (DoS protection): one request can never ask
# for an unbounded page, an unbounded filter set, or an unbounded
# config parse.
MAX_PAGE_SIZE = 100
DEFAULT_PAGE_SIZE = 20
MAX_FILTER_KINDS = 8
MAX_CONFIG_BYTES = 1_000_000
MAX_HISTORY_DEPTH = 16

# Every kind slug a filter may name: the five constraint categories
# plus unknown-parameter near-miss findings.
FILTERABLE_KINDS = frozenset(CONSTRAINT_KINDS) | {KIND_UNKNOWN_PARAM}
SEVERITIES = (ERROR, WARNING)


class ServeError(Exception):
    """A request the service refuses, with a stable machine code.

    Codes are part of the wire schema (clients branch on them):
    ``unknown-system``, ``bad-request``, ``limit-exceeded``,
    ``bad-cursor``, ``cursor-expired``, ``unknown-config``,
    ``bad-op``, ``schema-mismatch``, and the degradation codes
    ``overloaded`` (admission queue full, retry later), ``deadline``
    (the request exceeded its processing deadline), ``circuit-open``
    (the system's checker is fused off after repeated faults) and
    ``checker-fault`` (the checker itself crashed on this request).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message

    def summary_dict(self) -> dict:
        return {"code": self.code, "message": self.message}


@dataclass(frozen=True)
class CheckRequest:
    """One config submission.

    `config_id` is the config's *identity* for diagnostic history:
    successive submissions under the same (system, config_id) pair are
    revisions of one config, and the response carries the diff against
    the previous revision.  Without a `config_id` the submission is
    anonymous - checked, but not tracked.
    """

    system: str
    config_text: str
    config_id: str | None = None
    page_size: int = DEFAULT_PAGE_SIZE
    severity: str | None = None  # ERROR | WARNING | None (no filter)
    kinds: tuple[str, ...] = ()  # () means every kind

    def validate(self) -> None:
        """Reject malformed or limit-violating requests up front."""
        if not self.system or not isinstance(self.system, str):
            raise ServeError("bad-request", "system name is required")
        if not isinstance(self.config_text, str):
            raise ServeError("bad-request", "config_text must be a string")
        if len(self.config_text.encode("utf-8")) > MAX_CONFIG_BYTES:
            raise ServeError(
                "limit-exceeded",
                f"config_text exceeds {MAX_CONFIG_BYTES} bytes",
            )
        if not isinstance(self.page_size, int) or self.page_size < 1:
            raise ServeError(
                "bad-request", "page_size must be a positive integer"
            )
        if self.page_size > MAX_PAGE_SIZE:
            raise ServeError(
                "limit-exceeded",
                f"page_size {self.page_size} exceeds the server limit "
                f"of {MAX_PAGE_SIZE}",
            )
        _validate_filters(self.severity, self.kinds)

    def summary_dict(self) -> dict:
        return {
            "system": self.system,
            "config_text": self.config_text,
            "config_id": self.config_id,
            "page_size": self.page_size,
            "severity": self.severity,
            "kinds": list(self.kinds),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckRequest":
        return cls(
            system=data.get("system", ""),
            config_text=data.get("config_text", ""),
            config_id=data.get("config_id"),
            page_size=data.get("page_size", DEFAULT_PAGE_SIZE),
            severity=data.get("severity"),
            kinds=tuple(data.get("kinds", ())),
        )


def _validate_filters(severity: str | None, kinds: tuple[str, ...]) -> None:
    if severity is not None and severity not in SEVERITIES:
        raise ServeError(
            "bad-request",
            f"severity must be one of {', '.join(SEVERITIES)}",
        )
    if len(kinds) > MAX_FILTER_KINDS:
        raise ServeError(
            "limit-exceeded",
            f"at most {MAX_FILTER_KINDS} kind filters per request",
        )
    unknown = [k for k in kinds if k not in FILTERABLE_KINDS]
    if unknown:
        raise ServeError(
            "bad-request",
            f"unknown diagnostic kind(s): {', '.join(sorted(unknown))}",
        )


@dataclass(frozen=True)
class DiagnosticPage:
    """One page of a result snapshot's diagnostics.

    `cursor` continues the walk (None at the end); `total` counts the
    snapshot's diagnostics before filtering, `matched` after.  Pages
    are cut from an *immutable* snapshot, so a cursor stays stable no
    matter how many new submissions interleave with the walk.
    """

    items: tuple[dict, ...]
    cursor: str | None
    total: int
    matched: int
    offset: int

    def summary_dict(self) -> dict:
        return {
            "items": [dict(item) for item in self.items],
            "cursor": self.cursor,
            "total": self.total,
            "matched": self.matched,
            "offset": self.offset,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiagnosticPage":
        return cls(
            items=tuple(data["items"]),
            cursor=data["cursor"],
            total=data["total"],
            matched=data["matched"],
            offset=data["offset"],
        )


@dataclass(frozen=True)
class HistoryDelta:
    """What changed between two revisions of one config identity.

    Diagnostics are matched by *finding identity* - (param, code,
    severity, message) - not by config line, so moving a setting to a
    different line is "unchanged" while fixing it is "removed".
    """

    revision: int
    previous_revision: int
    added: tuple[dict, ...]
    removed: tuple[dict, ...]
    unchanged: int

    def summary_dict(self) -> dict:
        return {
            "revision": self.revision,
            "previous_revision": self.previous_revision,
            "added": [dict(item) for item in self.added],
            "removed": [dict(item) for item in self.removed],
            "unchanged": self.unchanged,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistoryDelta":
        return cls(
            revision=data["revision"],
            previous_revision=data["previous_revision"],
            added=tuple(data["added"]),
            removed=tuple(data["removed"]),
            unchanged=data["unchanged"],
        )


@dataclass(frozen=True)
class ConfigHistory:
    """The audit trail of one tracked config identity."""

    system: str
    config_id: str
    revision: int
    deltas: tuple[HistoryDelta, ...]  # oldest first, bounded depth

    def summary_dict(self) -> dict:
        return {
            "system": self.system,
            "config_id": self.config_id,
            "revision": self.revision,
            "deltas": [delta.summary_dict() for delta in self.deltas],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConfigHistory":
        return cls(
            system=data["system"],
            config_id=data["config_id"],
            revision=data["revision"],
            deltas=tuple(
                HistoryDelta.from_dict(d) for d in data["deltas"]
            ),
        )


@dataclass(frozen=True)
class CheckResponse:
    """The service's answer to one `CheckRequest`.

    `result_id` names the immutable diagnostic snapshot this response
    was cut from - the anchor every later `page` call walks.
    `history` is present only for tracked configs past revision 1.
    """

    schema_version: int
    system: str
    config_id: str | None
    revision: int
    result_id: str
    flagged: bool
    errors: int
    warnings: int
    parameters_present: int
    parameters_checked: int
    page: DiagnosticPage
    history: HistoryDelta | None = None

    def summary_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "system": self.system,
            "config_id": self.config_id,
            "revision": self.revision,
            "result_id": self.result_id,
            "flagged": self.flagged,
            "errors": self.errors,
            "warnings": self.warnings,
            "parameters_present": self.parameters_present,
            "parameters_checked": self.parameters_checked,
            "page": self.page.summary_dict(),
            "history": (
                self.history.summary_dict() if self.history else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckResponse":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ServeError(
                "schema-mismatch",
                f"server speaks schema {version}, client expects "
                f"{SCHEMA_VERSION}",
            )
        history = data.get("history")
        return cls(
            schema_version=version,
            system=data["system"],
            config_id=data["config_id"],
            revision=data["revision"],
            result_id=data["result_id"],
            flagged=data["flagged"],
            errors=data["errors"],
            warnings=data["warnings"],
            parameters_present=data["parameters_present"],
            parameters_checked=data["parameters_checked"],
            page=DiagnosticPage.from_dict(data["page"]),
            history=HistoryDelta.from_dict(history) if history else None,
        )


@dataclass(frozen=True)
class MetricsResponse:
    """The service's telemetry snapshot (the ``metrics`` wire op).

    Exposes the serve tier's per-request latency histograms, roster
    warm-up timings and the pipeline cache gauges through one typed,
    schema-versioned surface.  Metric families are *bounded* like
    every other response: at most ``MAX_PAGE_SIZE`` names per family
    (sorted, so truncation is deterministic), with ``truncated``
    saying whether anything was cut.
    """

    schema_version: int
    checks_served: int
    uptime_seconds: float
    warmup_seconds: float
    warmup_by_system: dict  # system name -> compile seconds
    counters: dict  # metric name -> int
    gauges: dict  # metric name -> number
    histograms: dict  # metric name -> {buckets, counts, count, sum}
    truncated: bool = False

    def summary_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "checks_served": self.checks_served,
            "uptime_seconds": self.uptime_seconds,
            "warmup_seconds": self.warmup_seconds,
            "warmup_by_system": dict(self.warmup_by_system),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: dict(hist) for name, hist in self.histograms.items()
            },
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsResponse":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ServeError(
                "schema-mismatch",
                f"server speaks schema {version}, client expects "
                f"{SCHEMA_VERSION}",
            )
        return cls(
            schema_version=version,
            checks_served=data["checks_served"],
            uptime_seconds=data["uptime_seconds"],
            warmup_seconds=data["warmup_seconds"],
            warmup_by_system=data["warmup_by_system"],
            counters=data["counters"],
            gauges=data["gauges"],
            histograms=data["histograms"],
            truncated=data["truncated"],
        )


@dataclass(frozen=True)
class FleetStatus:
    """The always-on service's operational snapshot."""

    schema_version: int
    systems: tuple[str, ...]  # warm (checker-resident) systems
    checks_served: int
    configs_tracked: int
    results_retained: int
    uptime_seconds: float
    warmup_seconds: float
    workers: int
    cache_stats: dict = field(default_factory=dict)
    # Degradation posture: admission/deadline limits, shed and timeout
    # totals, and each system's circuit-breaker state.  Additive with
    # a default, so schema version 1 stays honest - old clients ignore
    # it, old servers simply omit it.
    resilience: dict = field(default_factory=dict)

    def summary_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "systems": list(self.systems),
            "checks_served": self.checks_served,
            "configs_tracked": self.configs_tracked,
            "results_retained": self.results_retained,
            "uptime_seconds": self.uptime_seconds,
            "warmup_seconds": self.warmup_seconds,
            "workers": self.workers,
            "cache_stats": self.cache_stats,
            "resilience": self.resilience,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetStatus":
        return cls(
            schema_version=data["schema_version"],
            systems=tuple(data["systems"]),
            checks_served=data["checks_served"],
            configs_tracked=data["configs_tracked"],
            results_retained=data["results_retained"],
            uptime_seconds=data["uptime_seconds"],
            warmup_seconds=data["warmup_seconds"],
            workers=data["workers"],
            cache_stats=data["cache_stats"],
            resilience=data.get("resilience", {}),
        )


# -- cursors -----------------------------------------------------------------
#
# A cursor is an opaque token encoding (result snapshot, offset, the
# filter it was cut with).  Binding the filter into the cursor keeps a
# paginated walk self-consistent: the client cannot accidentally
# change filters mid-walk and silently skip findings.


def encode_cursor(
    result_id: str,
    offset: int,
    severity: str | None,
    kinds: tuple[str, ...],
) -> str:
    payload = json.dumps(
        {"r": result_id, "o": offset, "s": severity, "k": list(kinds)},
        separators=(",", ":"),
        sort_keys=True,
    )
    return base64.urlsafe_b64encode(payload.encode("utf-8")).decode("ascii")


def decode_cursor(cursor: str) -> tuple[str, int, str | None, tuple[str, ...]]:
    """Inverse of `encode_cursor`; raises `ServeError('bad-cursor')`
    on anything that did not come out of it."""
    try:
        payload = json.loads(
            base64.urlsafe_b64decode(cursor.encode("ascii")).decode("utf-8")
        )
        result_id = payload["r"]
        offset = payload["o"]
        severity = payload["s"]
        kinds = tuple(payload["k"])
    except (
        KeyError,
        TypeError,
        ValueError,
        binascii.Error,
        UnicodeDecodeError,
    ):
        raise ServeError("bad-cursor", "unparseable pagination cursor")
    if not isinstance(result_id, str) or not isinstance(offset, int):
        raise ServeError("bad-cursor", "malformed pagination cursor")
    _validate_filters(severity, kinds)
    return result_id, offset, severity, kinds
