"""The always-on validation service core.

Every CLI `check` today pays full cold start: import the world, run
SPEX inference, compile the checker, then validate one file and exit.
`ValidationService` keeps the expensive parts - compiled checkers via
`PipelineCaches.checkers`, inference results, warm-boot snapshot
records - resident across requests, so a submission costs one config
parse plus validator closures (~tens of microseconds) instead of a
process boot (~half a second).

Concurrency model:

* All service *state* (histories, result snapshots, counters) is
  mutated only on the event loop thread, guarded by one asyncio lock
  around the commit section, so interleaved submissions serialize at
  the bookkeeping step.
* The CPU-bound part - `validate_config` against a compiled checker -
  runs on a bounded `ThreadPoolExecutor`.  Compiled checkers are
  immutable-by-convention after compilation (the fleet already shares
  them across worker threads), so N concurrent validations of one
  system are safe and bit-identical to serial runs.
* Result snapshots are immutable tuples; pagination cursors reference
  a snapshot by id, so an open cursor stays stable while any number
  of new submissions land.

Usage::

    import asyncio
    from repro.serve import ValidationService

    async def main():
        service = ValidationService(systems=["mysql"])
        await service.start()
        response = await service.check_config("mysql", "port = 70000\n")
        print(response.flagged, response.errors)
        await service.close()

    asyncio.run(main())
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.checker.compile import checker_for_system
from repro.checker.validate import ERROR, ValidationReport, validate_config
from repro.core.engine import SpexOptions
from repro.obs import MetricsRegistry, get_tracer
from repro.pipeline.cache import PipelineCaches
from repro.resilience import CircuitBreaker
from repro.serve.models import (
    DEFAULT_PAGE_SIZE,
    MAX_HISTORY_DEPTH,
    SCHEMA_VERSION,
    CheckRequest,
    CheckResponse,
    ConfigHistory,
    DiagnosticPage,
    FleetStatus,
    HistoryDelta,
    MetricsResponse,
    ServeError,
    decode_cursor,
    encode_cursor,
)

DEFAULT_MAX_RESULTS = 1024
DEFAULT_WORKERS = 4


def _finding_key(diagnostic: dict) -> tuple:
    """A diagnostic's identity across revisions of one config: what
    the finding *is*, not where it currently sits.  Excludes
    `config_line` deliberately - moving a setting to another line must
    not read as "fixed one problem, introduced another"."""
    return (
        diagnostic["param"],
        diagnostic["code"],
        diagnostic["severity"],
        diagnostic["message"],
    )


@dataclass
class _TrackedConfig:
    """Server-side state of one (system, config_id) identity."""

    revision: int = 0
    last_diagnostics: tuple[dict, ...] = ()
    deltas: deque = field(
        default_factory=lambda: deque(maxlen=MAX_HISTORY_DEPTH)
    )


class ValidationService:
    """Compiled checkers resident in memory, served over asyncio."""

    def __init__(
        self,
        systems: list[str] | None = None,
        caches: PipelineCaches | None = None,
        spex_options: SpexOptions | None = None,
        max_workers: int | None = None,
        max_results: int = DEFAULT_MAX_RESULTS,
        engine: str | None = None,
        max_pending: int | None = None,
        deadline_seconds: float | None = None,
        circuit_threshold: int = 5,
        circuit_reset_seconds: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        from repro.systems.registry import iter_systems

        # Materialise the roster eagerly so an unknown system fails at
        # construction (KeyError from the registry), not mid-serve.
        self._systems = {
            system.name: system for system in iter_systems(systems)
        }
        self.caches = caches if caches is not None else PipelineCaches()
        self._options = spex_options or SpexOptions()
        self._workers = max_workers or DEFAULT_WORKERS
        self._pool: ThreadPoolExecutor | None = None
        self._checkers: dict[str, object] = {}
        self._lock = asyncio.Lock()
        self._tracked: dict[tuple[str, str], _TrackedConfig] = {}
        self._results: OrderedDict[str, tuple[dict, ...]] = OrderedDict()
        self._max_results = max(1, max_results)
        self._checks_served = 0
        self._started_at: float | None = None
        self._warmup_seconds = 0.0
        # Per-service registry (not the process-wide one): concurrent
        # services in one process - the test suite runs several - must
        # not see each other's request latencies.
        self.registry = MetricsRegistry()
        self._warmup_by_system: dict[str, float] = {}
        # Launch engine pre-warmed per system during start(), so the
        # first interpreter-backed request never pays plan lowering.
        self._engine = engine
        # Degradation posture (see docs/ROBUSTNESS.md): a bounded
        # admission count sheds load with typed `overloaded` errors, a
        # per-request deadline converts stuck checks into typed
        # `deadline` errors, and one circuit breaker per served system
        # fuses a repeatedly-faulting checker off instead of letting
        # every request fail slowly.  All default off/forgiving; the
        # clock is injectable so tests drive cool-downs directly.
        self._max_pending = max_pending
        self._deadline_seconds = deadline_seconds
        self._inflight = 0
        self._breakers = {
            name: CircuitBreaker(
                threshold=circuit_threshold,
                reset_seconds=circuit_reset_seconds,
                clock=clock,
            )
            for name in self._systems
        }

    # -- lifecycle -----------------------------------------------------------

    @property
    def systems(self) -> tuple[str, ...]:
        return tuple(sorted(self._systems))

    @property
    def started(self) -> bool:
        return self._started_at is not None

    async def start(self) -> None:
        """Warm every system's compiled checker, in parallel on the
        worker pool.  Idempotent: a second start is a no-op."""
        if self.started:
            return
        self._pool = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-serve"
        )
        loop = asyncio.get_running_loop()
        begun = time.perf_counter()
        names = sorted(self._systems)
        checkers = await asyncio.gather(
            *(
                loop.run_in_executor(self._pool, self._compile_checker, name)
                for name in names
            )
        )
        self._checkers = dict(zip(names, checkers))
        self._warmup_seconds = time.perf_counter() - begun
        self._started_at = time.monotonic()

    def _compile_checker(self, name: str):
        begun = time.perf_counter()
        checker = checker_for_system(
            self._systems[name], self._options, caches=self.caches
        )
        self._warm_launch_plan(name)
        # Runs on pool threads during start(); plain dict assignment
        # per distinct key is safe and the timings feed the metrics op.
        elapsed = time.perf_counter() - begun
        self._warmup_by_system[name] = elapsed
        self.registry.gauge(f"serve.warmup_seconds.{name}", elapsed)
        return checker

    def _warm_launch_plan(self, name: str) -> None:
        """Lower the system program's launch plan for the configured
        engine at warm-up, so the first ground-truth launch request
        pays only execution, not lowering.  Plans memoize on the
        `Program` instance, so this is idempotent and thread-safe."""
        engine = self._engine
        if engine is None:
            return
        program = self._systems[name].program()
        if engine == "codegen":
            from repro.runtime.codegen import codegen_plan_for

            codegen_plan_for(program)
        elif engine == "compiled":
            from repro.runtime.compile import plan_for

            plan_for(program)

    async def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._started_at = None
        self._checkers = {}

    # -- the check path ------------------------------------------------------

    async def check(self, request: CheckRequest) -> CheckResponse:
        """Validate one submission and commit it to the history.

        Degradation order: shed first (cheapest refusal), then the
        circuit breaker (known-bad checker), then the deadline around
        the actual work - so an overloaded service answers every
        request *something* typed instead of queueing unboundedly or
        hanging."""
        request.validate()
        if (
            self._max_pending is not None
            and self._inflight >= self._max_pending
        ):
            self.registry.inc("serve.shed")
            raise ServeError(
                "overloaded",
                f"admission queue is full ({self._max_pending} pending); "
                "retry later",
            )
        breaker = self._breakers.get(request.system)
        if breaker is not None and not breaker.allow():
            self.registry.inc("serve.circuit_open")
            raise ServeError(
                "circuit-open",
                f"the {request.system} checker is fused off after "
                "repeated faults; retrying after the cool-down",
            )
        self._inflight += 1
        begun = time.perf_counter()
        try:
            tracer = get_tracer()
            if tracer.enabled:
                with tracer.span("serve.check", system=request.system):
                    response = await self._check_guarded(request, breaker)
            else:
                response = await self._check_guarded(request, breaker)
        finally:
            self._inflight -= 1
        self.registry.inc("serve.requests")
        self.registry.observe(
            "serve.check_seconds", time.perf_counter() - begun
        )
        return response

    async def _check_guarded(
        self, request: CheckRequest, breaker: CircuitBreaker | None
    ) -> CheckResponse:
        """Apply the per-request deadline and feed the system's
        circuit breaker: organic checker crashes (and deadline blows)
        count as faults, typed refusals do not."""
        try:
            if self._deadline_seconds is None:
                response = await self._check_inner(request)
            else:
                response = await asyncio.wait_for(
                    self._check_inner(request), self._deadline_seconds
                )
        except ServeError:
            raise
        except asyncio.TimeoutError:
            self.registry.inc("serve.deadline_timeouts")
            if breaker is not None:
                breaker.record_failure()
            raise ServeError(
                "deadline",
                f"request exceeded the {self._deadline_seconds}s "
                "processing deadline",
            ) from None
        except Exception as exc:
            self.registry.inc("serve.checker_faults")
            if breaker is not None:
                breaker.record_failure()
            raise ServeError(
                "checker-fault",
                f"the {request.system} checker failed on this request: "
                f"{type(exc).__name__}: {exc}",
            ) from exc
        if breaker is not None:
            breaker.record_success()
        return response

    async def _check_inner(self, request: CheckRequest) -> CheckResponse:
        checker = self._checker_for(request.system)
        loop = asyncio.get_running_loop()
        report: ValidationReport = await loop.run_in_executor(
            self._pool, validate_config, checker, request.config_text
        )
        diagnostics = tuple(d.summary_dict() for d in report.diagnostics)
        async with self._lock:
            revision, result_id, delta = self._commit(
                request, diagnostics
            )
            self._checks_served += 1
        page = self._build_page(
            result_id,
            diagnostics,
            offset=0,
            limit=request.page_size,
            severity=request.severity,
            kinds=request.kinds,
        )
        return CheckResponse(
            schema_version=SCHEMA_VERSION,
            system=request.system,
            config_id=request.config_id,
            revision=revision,
            result_id=result_id,
            flagged=report.flagged,
            errors=len(report.errors()),
            warnings=len(report.warnings()),
            parameters_present=report.parameters_present,
            parameters_checked=report.parameters_checked,
            page=page,
            history=delta,
        )

    async def check_config(
        self, system: str, config_text: str, config_id: str | None = None,
        **kwargs,
    ) -> CheckResponse:
        """Convenience wrapper building the `CheckRequest` inline."""
        return await self.check(
            CheckRequest(
                system=system,
                config_text=config_text,
                config_id=config_id,
                **kwargs,
            )
        )

    def _checker_for(self, system: str):
        if not self.started:
            raise ServeError("bad-request", "service is not started")
        checker = self._checkers.get(system)
        if checker is None:
            raise ServeError(
                "unknown-system",
                f"{system!r} is not served; warm systems: "
                f"{', '.join(sorted(self._checkers))}",
            )
        return checker

    def _commit(
        self, request: CheckRequest, diagnostics: tuple[dict, ...]
    ) -> tuple[int, str, HistoryDelta | None]:
        """Store the immutable result snapshot and, for tracked
        configs, advance the revision and compute the delta.  Runs
        under the service lock on the loop thread."""
        delta = None
        revision = 1
        if request.config_id is not None:
            key = (request.system, request.config_id)
            tracked = self._tracked.get(key)
            if tracked is None:
                tracked = self._tracked[key] = _TrackedConfig()
            previous = tracked.revision
            revision = previous + 1
            if previous > 0:
                delta = _diff(
                    tracked.last_diagnostics, diagnostics, revision
                )
                tracked.deltas.append(delta)
            tracked.revision = revision
            tracked.last_diagnostics = diagnostics
        result_id = self._store_result(request, revision, diagnostics)
        return revision, result_id, delta

    def _store_result(
        self, request: CheckRequest, revision: int, diagnostics
    ) -> str:
        digest = hashlib.sha256()
        digest.update(request.system.encode("utf-8"))
        digest.update(b"\x00")
        digest.update((request.config_id or "").encode("utf-8"))
        digest.update(b"\x00")
        digest.update(str(revision).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(request.config_text.encode("utf-8"))
        result_id = digest.hexdigest()[:24]
        self._results[result_id] = diagnostics
        self._results.move_to_end(result_id)
        while len(self._results) > self._max_results:
            self._results.popitem(last=False)
        return result_id

    # -- pagination ----------------------------------------------------------

    def page(self, cursor: str, limit: int | None = None) -> DiagnosticPage:
        """Continue a paginated diagnostic walk.

        The filter travels inside the cursor (see `models`), so the
        only per-call knob is the page size - still capped by
        `MAX_PAGE_SIZE` via `CheckRequest`-equivalent validation.
        """
        result_id, offset, severity, kinds = decode_cursor(cursor)
        if limit is not None:
            # Reuse the request-side ceiling without duplicating it.
            CheckRequest(
                system="-", config_text="", page_size=limit
            ).validate()
        snapshot = self._results.get(result_id)
        if snapshot is None:
            raise ServeError(
                "cursor-expired",
                "the result this cursor points at was evicted; resubmit "
                "the config",
            )
        return self._build_page(
            result_id,
            snapshot,
            offset=offset,
            limit=limit or DEFAULT_PAGE_SIZE,
            severity=severity,
            kinds=kinds,
        )

    def _build_page(
        self,
        result_id: str,
        snapshot: tuple[dict, ...],
        offset: int,
        limit: int,
        severity: str | None,
        kinds: tuple[str, ...],
    ) -> DiagnosticPage:
        matched = [
            d
            for d in snapshot
            if (severity is None or d["severity"] == severity)
            and (not kinds or d["kind"] in kinds)
        ]
        items = tuple(matched[offset:offset + limit])
        next_offset = offset + len(items)
        cursor = None
        if next_offset < len(matched):
            cursor = encode_cursor(result_id, next_offset, severity, kinds)
        return DiagnosticPage(
            items=items,
            cursor=cursor,
            total=len(snapshot),
            matched=len(matched),
            offset=offset,
        )

    # -- history and status --------------------------------------------------

    def history(self, system: str, config_id: str) -> ConfigHistory:
        tracked = self._tracked.get((system, config_id))
        if tracked is None:
            raise ServeError(
                "unknown-config",
                f"no submissions recorded for ({system}, {config_id})",
            )
        return ConfigHistory(
            system=system,
            config_id=config_id,
            revision=tracked.revision,
            deltas=tuple(tracked.deltas),
        )

    def status(self) -> FleetStatus:
        uptime = (
            time.monotonic() - self._started_at if self.started else 0.0
        )
        counters = self.registry.snapshot()["counters"]
        return FleetStatus(
            schema_version=SCHEMA_VERSION,
            systems=tuple(sorted(self._checkers)),
            checks_served=self._checks_served,
            configs_tracked=len(self._tracked),
            results_retained=len(self._results),
            uptime_seconds=uptime,
            warmup_seconds=self._warmup_seconds,
            workers=self._workers,
            cache_stats=self.caches.stats(),
            resilience={
                "max_pending": self._max_pending,
                "deadline_seconds": self._deadline_seconds,
                "shed": counters.get("serve.shed", 0),
                "deadline_timeouts": counters.get(
                    "serve.deadline_timeouts", 0
                ),
                "circuit_open": counters.get("serve.circuit_open", 0),
                "checker_faults": counters.get("serve.checker_faults", 0),
                "breakers": {
                    name: self._breakers[name].state
                    for name in sorted(self._breakers)
                },
            },
        )

    def metrics(self, limit: int | None = None) -> MetricsResponse:
        """Snapshot this service's telemetry as a typed response.

        Families are truncated to at most `limit` names (default
        `DEFAULT_PAGE_SIZE`, ceiling `MAX_PAGE_SIZE` - the same
        discipline as diagnostic pages) in sorted order, so the wire
        payload stays bounded no matter how many metric names
        accumulate; `truncated` says whether anything was cut.
        """
        if limit is not None:
            # Reuse the request-side page ceiling without duplicating it.
            CheckRequest(
                system="-", config_text="", page_size=limit
            ).validate()
        cap = limit or DEFAULT_PAGE_SIZE
        # Cache counters ride along as gauges so one op answers both
        # "how fast are requests" and "are the caches earning their keep".
        for layer, counters in self.caches.stats().items():
            for name, value in counters.items():
                self.registry.gauge(f"cache.{layer}.{name}", value)
        snap = self.registry.snapshot()
        truncated = False

        def bound(family: dict) -> dict:
            nonlocal truncated
            names = sorted(family)
            if len(names) > cap:
                truncated = True
                names = names[:cap]
            return {name: family[name] for name in names}

        uptime = (
            time.monotonic() - self._started_at if self.started else 0.0
        )
        return MetricsResponse(
            schema_version=SCHEMA_VERSION,
            checks_served=self._checks_served,
            uptime_seconds=uptime,
            warmup_seconds=self._warmup_seconds,
            warmup_by_system=dict(sorted(self._warmup_by_system.items())),
            counters=bound(snap["counters"]),
            gauges=bound(snap["gauges"]),
            histograms=bound(snap["histograms"]),
            truncated=truncated,
        )


def _diff(
    old: tuple[dict, ...], new: tuple[dict, ...], revision: int
) -> HistoryDelta:
    """Multiset diff by finding identity, preserving snapshot order."""
    old_counts: dict[tuple, int] = {}
    for diagnostic in old:
        key = _finding_key(diagnostic)
        old_counts[key] = old_counts.get(key, 0) + 1
    added = []
    unchanged = 0
    remaining = dict(old_counts)
    for diagnostic in new:
        key = _finding_key(diagnostic)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            unchanged += 1
        else:
            added.append(diagnostic)
    removed = []
    for diagnostic in old:
        key = _finding_key(diagnostic)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            removed.append(diagnostic)
    return HistoryDelta(
        revision=revision,
        previous_revision=revision - 1,
        added=tuple(added),
        removed=tuple(removed),
        unchanged=unchanged,
    )


# Re-exported severity constant for callers rendering service output.
__all__ = [
    "DEFAULT_MAX_RESULTS",
    "DEFAULT_WORKERS",
    "ERROR",
    "ValidationService",
]
