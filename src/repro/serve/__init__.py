"""Always-on validation service: compiled checkers served over a
typed async API.

The fourth pillar of the reproduction's growth (infer -> inject ->
check -> **serve**): where `repro.checker` validates one config per
CLI process, `repro.serve` keeps every system's compiled checker,
inference result and warm-boot machinery resident in one long-running
process and serves check requests over a newline-delimited-JSON socket
- cursor-paginated diagnostics, severity/kind filtering with
server-enforced limits, and per-config diagnostic history (what
changed between successive submissions of the same config).

Layering: `repro.serve` sits above `repro.checker` (whose compiled
validators it keeps resident) and `repro.pipeline` (whose caches it
shares), and below `repro.reporting` (which exposes the ``serve`` and
``submit`` CLI commands).
"""

from repro.serve.client import ServeClient, submit_config
from repro.serve.models import (
    DEFAULT_PAGE_SIZE,
    MAX_CONFIG_BYTES,
    MAX_FILTER_KINDS,
    MAX_HISTORY_DEPTH,
    MAX_PAGE_SIZE,
    SCHEMA_VERSION,
    CheckRequest,
    CheckResponse,
    ConfigHistory,
    DiagnosticPage,
    FleetStatus,
    HistoryDelta,
    MetricsResponse,
    ServeError,
)
from repro.serve.server import (
    BackgroundServer,
    ValidationServer,
)
from repro.serve.service import ValidationService

__all__ = [
    "BackgroundServer",
    "CheckRequest",
    "CheckResponse",
    "ConfigHistory",
    "DEFAULT_PAGE_SIZE",
    "DiagnosticPage",
    "FleetStatus",
    "HistoryDelta",
    "MAX_CONFIG_BYTES",
    "MAX_FILTER_KINDS",
    "MAX_HISTORY_DEPTH",
    "MAX_PAGE_SIZE",
    "MetricsResponse",
    "SCHEMA_VERSION",
    "ServeClient",
    "ServeError",
    "ValidationServer",
    "ValidationService",
    "submit_config",
]
