"""Newline-delimited-JSON socket transport for the validation service.

One request per line, one response per line.  Requests are
``{"op": ..., ...payload}``; responses are
``{"ok": true, "schema_version": N, "data": {...}}`` on success and
``{"ok": false, "schema_version": N, "error": {"code", "message"}}``
on refusal.  Ops: ``check``, ``page``, ``history``, ``status``,
``metrics``, ``ping``, ``shutdown``.

The stream reader's line limit doubles as the transport-level DoS
guard: a request line longer than ``MAX_LINE_BYTES`` is answered with
a ``limit-exceeded`` error and the connection is closed, before any
JSON parsing happens.  Everything above the line protocol - page-size
ceilings, filter caps, config-size limits - is enforced by the typed
models, so the transport stays a dumb pipe.

`BackgroundServer` runs a warmed service plus this transport on a
private event-loop thread - what the benchmark suite, the test tier
and embedding applications use to stand a serving instance up inside
an otherwise synchronous process.

Usage (foreground, what the ``serve`` CLI command does)::

    import asyncio
    from repro.serve import ValidationService, ValidationServer

    async def main():
        service = ValidationService(systems=["mysql"])
        await service.start()
        server = ValidationServer(service, host="127.0.0.1", port=7878)
        await server.start()
        await server.wait_closed()

    asyncio.run(main())
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.serve.models import (
    SCHEMA_VERSION,
    CheckRequest,
    ServeError,
)
from repro.serve.service import ValidationService

# One request line may carry a full config file (MAX_CONFIG_BYTES)
# plus JSON escaping overhead; anything bigger is refused unread.
MAX_LINE_BYTES = 4 * 1024 * 1024


def _ok(data: dict) -> bytes:
    return (
        json.dumps(
            {"ok": True, "schema_version": SCHEMA_VERSION, "data": data}
        )
        + "\n"
    ).encode("utf-8")


def _err(error: ServeError) -> bytes:
    return (
        json.dumps(
            {
                "ok": False,
                "schema_version": SCHEMA_VERSION,
                "error": error.summary_dict(),
            }
        )
        + "\n"
    ).encode("utf-8")


class ValidationServer:
    """Serve one `ValidationService` over a local TCP socket."""

    def __init__(
        self,
        service: ValidationService,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; updated on start()
        # How long one response write may sit in a full socket buffer
        # before the client is declared too slow and dropped (None =
        # wait forever).  A reader that stops consuming must not pin a
        # handler - and its buffered responses - indefinitely.
        self.drain_timeout = drain_timeout
        self._server: asyncio.AbstractServer | None = None
        self._closing = asyncio.Event()
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> None:
        if not self.service.started:
            await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        """Block until `stop()` (or a shutdown op) is called."""
        await self._closing.wait()
        await self.stop()

    async def stop(self) -> None:
        self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle connections block on readline forever; cancel them
        # deterministically instead of leaving the loop teardown to do
        # it mid-write.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        await self.service.close()

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while not self._closing.is_set():
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # line exceeded the stream limit
                    writer.write(
                        _err(
                            ServeError(
                                "limit-exceeded",
                                f"request line exceeds {MAX_LINE_BYTES} "
                                "bytes",
                            )
                        )
                    )
                    await self._drain(writer)
                    break
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(response)
                if not await self._drain(writer):
                    break  # too slow to keep serving; drop the client
        except ConnectionResetError:
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            # No `await wait_closed()` here: the handler may be mid-
            # cancellation (see `stop`), and the transport finishes
            # closing on the loop without being awaited.
            writer.close()

    async def _drain(self, writer) -> bool:
        """Flush the write buffer, bounded by `drain_timeout`.  False
        means the client read too slowly and must be dropped."""
        if self.drain_timeout is None:
            await writer.drain()
            return True
        try:
            await asyncio.wait_for(writer.drain(), self.drain_timeout)
            return True
        except asyncio.TimeoutError:
            self.service.registry.inc("serve.slow_client_drops")
            return False

    async def _dispatch(self, line: bytes) -> bytes:
        try:
            payload = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return _err(
                ServeError("bad-request", "request line is not valid JSON")
            )
        if not isinstance(payload, dict):
            return _err(
                ServeError("bad-request", "request must be a JSON object")
            )
        op = payload.get("op")
        try:
            if op == "check":
                request = CheckRequest.from_dict(payload)
                response = await self.service.check(request)
                return _ok(response.summary_dict())
            if op == "page":
                cursor = payload.get("cursor")
                if not isinstance(cursor, str):
                    raise ServeError("bad-request", "page needs a cursor")
                page = self.service.page(cursor, payload.get("limit"))
                return _ok(page.summary_dict())
            if op == "history":
                history = self.service.history(
                    payload.get("system", ""), payload.get("config_id", "")
                )
                return _ok(history.summary_dict())
            if op == "status":
                return _ok(self.service.status().summary_dict())
            if op == "metrics":
                metrics = self.service.metrics(payload.get("limit"))
                return _ok(metrics.summary_dict())
            if op == "ping":
                return _ok({"pong": True})
            if op == "shutdown":
                self._closing.set()
                return _ok({"stopping": True})
            raise ServeError("bad-op", f"unknown op {op!r}")
        except ServeError as exc:
            return _err(exc)


class BackgroundServer:
    """A warmed service + socket server on a private loop thread.

    Synchronous to drive - `start()` blocks until the service is warm
    and the socket is listening, `stop()` until everything is torn
    down - which is exactly what tests, benchmarks and the CLI's
    subprocess-free consumers need.
    """

    def __init__(
        self,
        systems: list[str] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        caches=None,
        max_workers: int | None = None,
        max_pending: int | None = None,
        deadline_seconds: float | None = None,
        drain_timeout: float | None = None,
    ) -> None:
        self._service_args = (
            systems, caches, max_workers, max_pending, deadline_seconds
        )
        self._drain_timeout = drain_timeout
        self._host = host
        self._port = port
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: ValidationServer | None = None
        self._startup_error: BaseException | None = None
        self.host: str = host
        self.port: int = 0

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        (
            systems,
            caches,
            max_workers,
            max_pending,
            deadline_seconds,
        ) = self._service_args
        try:
            service = ValidationService(
                systems=systems,
                caches=caches,
                max_workers=max_workers,
                max_pending=max_pending,
                deadline_seconds=deadline_seconds,
            )
            await service.start()
            self._server = ValidationServer(
                service,
                host=self._host,
                port=self._port,
                drain_timeout=self._drain_timeout,
            )
            await self._server.start()
        except BaseException as exc:  # surface on the caller's thread
            self._startup_error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self.port = self._server.port
        self._ready.set()
        await self._server.wait_closed()

    def stop(self) -> None:
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server._closing.set)
            except RuntimeError:
                # The loop already closed - a wire-initiated `shutdown`
                # op races this call; joining the thread is all that is
                # left to do.
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self._loop = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
