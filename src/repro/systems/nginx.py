"""nginx-mini: miniature web server, system #8.

The first subject defined *entirely* through the declarative
`repro.systems.spec` layer - no hand-maintained decoder/effective/
manual/truth dicts; every parameter is one `ParamSpec` row.

Beyond exercising the builder, this system carries the repo's
access-control traits end to end:

* ``root`` must be readable by the ``user`` identity - checked at
  startup with a blameless message naming directive, path and user;
* ``upload_store`` must be writable by the same identity - but the
  worker bails out *silently* when it is not (the classic nginx
  "uploads mysteriously 403" deployment mistake: an early termination
  no log line explains);
* ``upload_store_mode`` is installed verbatim via ``chmod`` - a
  permission-mode parameter (non-octal values are rejected at parse
  time, but a world-writable mode is accepted without comment).
"""

from __future__ import annotations

from repro.core.accuracy import (
    truth_access,
    truth_basic,
    truth_range,
    truth_semantic,
)
from repro.inject.ar import DirectiveDialect
from repro.systems.base import FunctionalTest, SubjectSystem
from repro.systems.registry import register
from repro.systems.spec import OsDir, OsFile, ParamSpec, SystemSpec

NGINX_MAIN = r"""
// nginx-mini
int listen_port = 8080;
int worker_count = 2;
int keepalive_timeout = 65;
int client_max_body = 1048576;
int sendfile_on = 1;
int upload_mode_bits = 493;
char *run_user = "www-data";
char *static_root = "/data/nginx/static";
char *upload_root = "/data/nginx/uploads";
char *index_name = "index.html";
char *access_log_path = "/var/log/nginx/access.log";
char *error_log_path = "/var/log/nginx/error.log";

int set_listen(char *arg) {
    listen_port = atoi(arg);
    return 0;
}

int set_worker_processes(char *arg) {
    worker_count = atoi(arg);
    if (worker_count < 1) {
        fprintf(stderr, "nginx: [emerg] invalid worker_processes \"%s\"\n",
                arg);
        exit(1);
    }
    return 0;
}

int set_user(char *arg) {
    if (getpwnam(arg) == NULL) {
        fprintf(stderr, "nginx: [emerg] getpwnam(\"%s\") failed\n", arg);
        exit(1);
    }
    run_user = arg;
    return 0;
}

int set_root(char *arg) {
    static_root = arg;
    return 0;
}

int set_upload_store(char *arg) {
    upload_root = arg;
    return 0;
}

int set_upload_store_mode(char *arg) {
    // Octal, like the real upload module's directive.
    upload_mode_bits = strtol(arg, NULL, 8);
    if (upload_mode_bits < 1 || upload_mode_bits > 4095) {
        fprintf(stderr,
                "nginx: [emerg] invalid upload_store_mode \"%s\"\n", arg);
        exit(1);
    }
    return 0;
}

int set_keepalive_timeout(char *arg) {
    keepalive_timeout = atoi(arg);
    return 0;
}

int set_client_max_body_size(char *arg) {
    client_max_body = atoi(arg);
    return 0;
}

int set_sendfile(char *arg) {
    if (strcasecmp(arg, "on") == 0) {
        sendfile_on = 1;
    } else if (strcasecmp(arg, "off") == 0) {
        sendfile_on = 0;
    } else {
        fprintf(stderr, "nginx: [emerg] invalid value \"%s\" in sendfile\n",
                arg);
        exit(1);
    }
    return 0;
}

int set_index(char *arg) {
    index_name = arg;
    return 0;
}

int set_access_log(char *arg) {
    access_log_path = arg;
    return 0;
}

int set_error_log(char *arg) {
    error_log_path = arg;
    return 0;
}

struct command_rec { char *name; void *func; };

struct command_rec ngx_commands[] = {
    { "listen", set_listen },
    { "worker_processes", set_worker_processes },
    { "user", set_user },
    { "root", set_root },
    { "upload_store", set_upload_store },
    { "upload_store_mode", set_upload_store_mode },
    { "keepalive_timeout", set_keepalive_timeout },
    { "client_max_body_size", set_client_max_body_size },
    { "sendfile", set_sendfile },
    { "index", set_index },
    { "access_log", set_access_log },
    { "error_log", set_error_log },
};

int read_config(char *path) {
    void *fp = fopen(path, "r");
    if (fp == NULL) {
        fprintf(stderr, "nginx: [emerg] open() \"%s\" failed\n", path);
        exit(1);
    }
    char *line = fgets(fp);
    while (line != NULL) {
        char *trimmed = str_trim(line);
        if (strlen(trimmed) > 0 && trimmed[0] != '#') {
            char *key = str_token(trimmed, 0);
            char *value = str_token(trimmed, 1);
            if (key != NULL && value != NULL) {
                int i;
                for (i = 0; i < 12; i++) {
                    if (strcmp(key, ngx_commands[i].name) == 0) {
                        ngx_commands[i].func(value);
                    }
                }
            }
        }
        line = fgets(fp);
    }
    fclose(fp);
    return 0;
}

int open_logs() {
    void *fp = fopen(access_log_path, "a");
    if (fp == NULL) {
        fprintf(stderr, "nginx: [emerg] open() \"%s\" failed\n",
                access_log_path);
        exit(1);
    }
    fclose(fp);
    fp = fopen(error_log_path, "a");
    if (fp == NULL) {
        fprintf(stderr, "nginx: [emerg] open() \"%s\" failed\n",
                error_log_path);
        exit(1);
    }
    fclose(fp);
    return 0;
}

int check_roots() {
    if (!is_directory(static_root)) {
        fprintf(stderr, "nginx: [emerg] root \"%s\" is not a directory\n",
                static_root);
        exit(1);
    }
    if (check_read_access(static_root, run_user) != 0) {
        // Blameless and precise: names the directive, the path and the
        // identity whose permission is missing.
        fprintf(stderr, "nginx: [emerg] root \"%s\" is not readable by "
                "user %s (fix the directory mode or the user directive)\n",
                static_root, run_user);
        exit(1);
    }
    chmod(upload_root, upload_mode_bits);
    if (check_write_access(upload_root, run_user) != 0) {
        // The deployment footgun: no log line, the master just never
        // starts its workers (silent early termination).
        return 1;
    }
    return 0;
}

int init_network() {
    int fd = socket(2, 1, 0);
    if (bind(fd, listen_port) != 0) {
        fprintf(stderr, "nginx: [emerg] bind() to port %d failed "
                "(98: Address already in use)\n", listen_port);
        exit(1);
    }
    listen(fd, 511);
    char *body_buf = malloc(client_max_body);
    return 0;
}

int keepalive_tick() {
    int wait = keepalive_timeout;
    if (wait > 2) { wait = 2; }
    sleep(wait);
    return 0;
}

int serve() {
    char *req = recv_request();
    while (req != NULL) {
        if (strncmp(req, "GET ", 4) == 0) {
            char *path = str_token(req, 1);
            if (sendfile_on != 0) {
                send_response(sprintf("HTTP/1.1 200 OK sendfile %s%s",
                                      static_root, path));
            } else {
                send_response(sprintf("HTTP/1.1 200 OK copy %s%s",
                                      static_root, path));
            }
        } else if (strncmp(req, "PUT ", 4) == 0) {
            char *path = str_token(req, 1);
            if (strlen(req) > client_max_body) {
                send_response("HTTP/1.1 413 Request Entity Too Large");
            } else {
                send_response(sprintf("HTTP/1.1 201 Created %s%s",
                                      upload_root, path));
            }
        } else if (strcmp(req, "STATUS") == 0) {
            send_response(sprintf("workers=%d sendfile=%d keepalive=%d",
                                  worker_count, sendfile_on,
                                  keepalive_timeout));
        } else {
            send_response("HTTP/1.1 400 Bad Request");
        }
        req = recv_request();
    }
    return 0;
}

int main(int argc, char **argv) {
    if (argc < 2) {
        fprintf(stderr, "usage: nginx <config>\n");
        return 2;
    }
    read_config(argv[1]);
    open_logs();
    if (check_roots() != 0) {
        return 1;
    }
    init_network();
    keepalive_tick();
    serve();
    return 0;
}
"""

ANNOTATIONS = """
{ @STRUCT = ngx_commands
  @PAR = [command_rec, 1]
  @VAR = ([command_rec, 2], $arg) }
"""

DEFAULT_CONFIG = """\
# nginx-mini configuration
listen 8080
worker_processes 2
user www-data
root /data/nginx/static
upload_store /data/nginx/uploads
upload_store_mode 0755
keepalive_timeout 65
client_max_body_size 1048576
sendfile on
index index.html
access_log /var/log/nginx/access.log
error_log /var/log/nginx/error.log
"""


def _tests() -> list[FunctionalTest]:
    return [
        FunctionalTest(
            name="fetch_index",
            requests=["GET /index.html"],
            oracle=lambda r: len(r) == 1 and r[0].startswith("HTTP/1.1 200"),
            duration=1.0,
        ),
        FunctionalTest(
            name="upload",
            requests=["PUT /report.txt"],
            oracle=lambda r: len(r) == 1 and r[0].startswith("HTTP/1.1 201"),
            duration=1.0,
        ),
        FunctionalTest(
            name="status",
            requests=["STATUS"],
            oracle=lambda r: len(r) == 1 and r[0].startswith("workers="),
            duration=0.5,
        ),
    ]


SPEC = SystemSpec(
    name="nginx",
    display_name="nginx",
    description="Miniature web server with access-control traits",
    sources={"nginx.c": NGINX_MAIN},
    annotations=ANNOTATIONS,
    dialect=DirectiveDialect(),
    config_path="/etc/nginx.conf",
    default_config=DEFAULT_CONFIG,
    params=[
        ParamSpec(
            "listen",
            decode="int",
            var="listen_port",
            manual="listen <port>.",
            truth=(
                truth_basic("listen", "int"),
                truth_semantic("listen", "PORT"),
            ),
        ),
        ParamSpec(
            "worker_processes",
            decode="int",
            var="worker_count",
            manual="worker_processes <n>: worker process count (>= 1).",
            truth=(
                truth_basic("worker_processes", "int"),
                truth_range("worker_processes"),
            ),
        ),
        ParamSpec(
            "user",
            decode="string",
            var="run_user",
            manual="user <name>: identity the workers run as.",
            truth=(
                truth_basic("user", "string"),
                truth_semantic("user", "USER"),
            ),
        ),
        ParamSpec(
            "root",
            decode="string",
            var="static_root",
            manual="root <directory>: document root, readable by user.",
            truth=(
                truth_basic("root", "string"),
                truth_semantic("root", "DIRECTORY"),
                truth_semantic("root", "PATH"),
                truth_access("root", "read"),
            ),
        ),
        ParamSpec(
            "upload_store",
            decode="string",
            var="upload_root",
            manual="upload_store <directory>: upload spool, writable "
            "by user.",
            truth=(
                truth_basic("upload_store", "string"),
                truth_semantic("upload_store", "PATH"),
                truth_access("upload_store", "write"),
            ),
        ),
        ParamSpec(
            "upload_store_mode",
            decode="string",
            # The handler parses octal text into mode bits; like
            # Apache's MaxMemFree (KB -> bytes) the stored value is a
            # transformation of the config text, so no effective-value
            # tracking.
            var=None,
            manual="upload_store_mode <octal>: permission mode chmod'ed "
            "onto upload_store.",
            truth=(
                # strtol returns long; the mini manual documents the
                # octal-text surface, the store is 64-bit.
                truth_basic("upload_store_mode", "long"),
                truth_semantic("upload_store_mode", "PERMISSION"),
                truth_range("upload_store_mode"),
                truth_access("upload_store_mode", "mode"),
            ),
        ),
        ParamSpec(
            "keepalive_timeout",
            decode="int",
            manual="keepalive_timeout <seconds>.",
            truth=(
                truth_basic("keepalive_timeout", "int"),
                truth_semantic("keepalive_timeout", "TIME"),
            ),
        ),
        ParamSpec(
            "client_max_body_size",
            decode="size",
            var="client_max_body",
            manual="client_max_body_size <bytes>.",
            truth=(
                truth_basic("client_max_body_size", "int"),
                truth_semantic("client_max_body_size", "SIZE"),
            ),
        ),
        ParamSpec(
            "sendfile",
            decode="bool",
            var="sendfile_on",
            manual="sendfile on|off.",
            truth=(
                truth_basic("sendfile", "string"),
                truth_range("sendfile"),
            ),
        ),
        ParamSpec(
            "index",
            decode="string",
            var="index_name",
            manual="index <filename>.",
            truth=(truth_basic("index", "string"),),
        ),
        ParamSpec(
            "access_log",
            decode="string",
            var="access_log_path",
            manual="access_log <path>.",
            truth=(
                truth_basic("access_log", "string"),
                truth_semantic("access_log", "FILE"),
            ),
        ),
        ParamSpec(
            "error_log",
            decode="string",
            var="error_log_path",
            # Undocumented by design: feeds the undocumented-constraint
            # analysis like Apache's ThreadLimit.
            truth=(
                truth_basic("error_log", "string"),
                truth_semantic("error_log", "FILE"),
            ),
        ),
    ],
    tests=_tests(),
    os_dirs=[
        OsDir("/data/nginx/static", mode=0o755, owner="root"),
        OsDir("/data/nginx/uploads", mode=0o755, owner="www-data"),
    ],
    os_files=[
        OsFile("/var/log/nginx/access.log"),
        OsFile("/var/log/nginx/error.log"),
    ],
    # nginx has no Tables 9-10 case set; weight the mix toward the
    # access-control mistakes this system exists to demonstrate.
    mistake_mix={
        "basic": 3.0,
        "semantic": 2.0,
        "range": 2.0,
        "access_control": 3.0,
    },
)


@register("nginx")
def build() -> SubjectSystem:
    return SPEC.build()
