"""Declarative system definitions: `SystemSpec` compiles to
`SubjectSystem`.

The hand-rolled modules under `repro.systems` repeat the same shape
per parameter - a decoder entry here, an effective-location entry
there, a manual excerpt in one dict and three ground-truth entries in
a helper - and keeping the four in sync is exactly the kind of
boilerplate that makes system #8+ expensive.  A `SystemSpec` states
each parameter *once* as a `ParamSpec` row (decoder slug, mapped
variable, manual excerpt, truth entries) plus system-wide data
(sources, dialect, tests, OS fixtures), and `build()` compiles the
lot into the existing `SubjectSystem` - byte-identical to what the
imperative builders produced, which the migration-parity tests
enforce.

Nothing downstream changes: registries, campaigns, checkers and the
serve tier keep consuming `SubjectSystem`.  The spec is a *front end*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.accuracy import TruthEntry
from repro.inject.ar import ConfigDialect
from repro.knowledge.apis import ApiSpec
from repro.runtime.os_model import EmulatedOS
from repro.systems.base import (
    FunctionalTest,
    SubjectSystem,
    decode_bool,
    decode_int,
    decode_size,
    decode_string,
    decode_time_seconds,
)

# Decoder slugs: declarative data instead of function references, so a
# spec row is serialisable and the lint tool can reason about it.
DECODERS: dict[str, Callable[[str], object]] = {
    "bool": decode_bool,
    "int": decode_int,
    "size": decode_size,
    "string": decode_string,
    "time": decode_time_seconds,
}

# `ParamSpec.var` sentinel: "same name as the parameter".  Distinct
# from None, which declares *no* effective location (the harness then
# skips silent-violation comparison for that parameter - some systems
# deliberately leave a parameter unmapped).
SAME_AS_NAME = ""


@dataclass(frozen=True)
class ParamSpec:
    """One configuration parameter, declared once.

    * ``decode`` - slug into `DECODERS`: how a *user* reads the value.
    * ``var`` / ``field_path`` - where the effective value lives after
      parsing (`SAME_AS_NAME` maps the parameter to the variable of
      the same name; None opts out of effective-value tracking).
    * ``manual`` - the documentation excerpt, or None for parameters
      that are undocumented by design (they feed the undocumented-
      constraint analysis).
    * ``truth`` - this parameter's ground-truth entries for Table 12
      accuracy scoring.  Truth is independent of the decoder: a
      boolean parameter may decode via ``bool`` while its truth entry
      says the stored representation is an int.
    """

    name: str
    decode: str = "string"
    var: str | None = SAME_AS_NAME
    field_path: tuple[str, ...] = ()
    manual: str | None = None
    truth: tuple[TruthEntry, ...] = ()


@dataclass(frozen=True)
class OsDir:
    """A directory the system expects in its emulated world."""

    path: str
    mode: int = 0o755
    owner: str = "root"


@dataclass(frozen=True)
class OsFile:
    """A file the system expects in its emulated world."""

    path: str
    content: str = ""
    mode: int = 0o644
    owner: str = "root"


@dataclass
class SystemSpec:
    """The declarative description `build()` compiles."""

    name: str
    display_name: str
    description: str
    sources: dict[str, str]
    annotations: str
    dialect: ConfigDialect
    config_path: str
    default_config: str
    params: list[ParamSpec] = field(default_factory=list)
    tests: list[FunctionalTest] = field(default_factory=list)
    # Cross-parameter truth (control deps, value relationships) that
    # belongs to no single `ParamSpec` row.
    extra_truth: list[TruthEntry] = field(default_factory=list)
    os_dirs: list[OsDir] = field(default_factory=list)
    os_files: list[OsFile] = field(default_factory=list)
    # Optional per-system mistake-mix override for the fleet corpus
    # (registered via `repro.checker.corpus.register_mistake_mix` at
    # build time); None keeps the study-derived marginals.
    mistake_mix: dict[str, float] | None = None
    custom_knowledge: list[ApiSpec] = field(default_factory=list)
    proprietary: bool = False
    confidential_counts: bool = False

    def build(self) -> SubjectSystem:
        """Compile to the runtime descriptor every tool consumes."""
        decoders: dict[str, Callable[[str], object]] = {}
        effective: dict[str, tuple[str, tuple[str, ...]]] = {}
        manual: dict[str, str] = {}
        truth: list[TruthEntry] = []
        seen: set[str] = set()
        for param in self.params:
            if param.name in seen:
                raise ValueError(
                    f"{self.name}: duplicate ParamSpec {param.name!r}"
                )
            seen.add(param.name)
            if param.decode not in DECODERS:
                raise ValueError(
                    f"{self.name}: {param.name!r} names unknown decoder "
                    f"{param.decode!r}; known: {', '.join(sorted(DECODERS))}"
                )
            decoders[param.name] = DECODERS[param.decode]
            if param.var is not None:
                var = param.var if param.var else param.name
                effective[param.name] = (var, tuple(param.field_path))
            if param.manual is not None:
                manual[param.name] = param.manual
            truth.extend(param.truth)
        truth.extend(self.extra_truth)

        setup_os = None
        if self.os_dirs or self.os_files:
            dirs = tuple(self.os_dirs)
            files = tuple(self.os_files)

            def setup_os(os_model: EmulatedOS) -> None:
                for entry in dirs:
                    node = os_model.add_dir(entry.path)
                    node.mode = entry.mode
                    node.owner = entry.owner
                for entry in files:
                    os_model.add_file(
                        entry.path,
                        entry.content,
                        mode=entry.mode,
                        owner=entry.owner,
                    )

        if self.mistake_mix is not None:
            from repro.checker.corpus import register_mistake_mix

            register_mistake_mix(self.name, dict(self.mistake_mix))

        return SubjectSystem(
            name=self.name,
            display_name=self.display_name,
            description=self.description,
            sources=dict(self.sources),
            annotations=self.annotations,
            dialect=self.dialect,
            config_path=self.config_path,
            default_config=self.default_config,
            tests=list(self.tests),
            effective_locations=effective,
            decoders=decoders,
            manual=manual,
            ground_truth=truth,
            custom_knowledge=list(self.custom_knowledge),
            setup_os=setup_os,
            proprietary=self.proprietary,
            confidential_counts=self.confidential_counts,
        )
