"""OpenLDAP-mini: miniature slapd.

Mirrors the real OpenLDAP traits the paper reports:

* **hybrid** mapping convention (Table 1): a handler table in the
  bconfig.c style (``ConfigArgs *c``) plus a strcasecmp dispatch chain;
* Figure 2: ``listener-threads`` > 16 segfaults after startup with
  nothing but "Segmentation fault" on the console - the hard-coded
  maximum is neither checked nor documented;
* Figure 3(d): ``index_intlen`` silently clamped into [4, 255];
* Figure 7(c): tiny ``sockbuf_max_incoming`` makes every request fail
  with "Can't contact LDAP server (-1)" and only generic connection
  logs;
* pointer-heavy limit enforcement that mis-attributes constraints
  without alias analysis (Table 12's lowest accuracy row);
* no control dependencies at all (Table 11 reports 0 for OpenLDAP).
"""

from __future__ import annotations

from repro.core.accuracy import (
    truth_basic,
    truth_range,
    truth_semantic,
    truth_value_rel,
)
from repro.inject.ar import DirectiveDialect
from repro.systems.base import FunctionalTest, SubjectSystem
from repro.systems.registry import register
from repro.systems.spec import OsDir, ParamSpec, SystemSpec

SLAPD_MAIN = r"""
// slapd-mini: main.c
int listener_threads = 1;
int worker_threads = 4;
int index_intlen = 4;
int sockbuf_max_incoming = 262144;
int entry_cache_bytes = 1048576;
int cachesize = 1000;
int cachefree = 100;
int sizelimit = 500;
int admin_sizelimit = 0;
int idletimeout = 0;
int writetimeout = 0;
int checkpoint_interval = 60;
int readonly_mode = 0;
int require_tls = 0;
char *pidfile_path = "/var/run/slapd.pid";
char *argsfile_path = "/var/run/slapd.args";
char *db_directory = "/data/ldap";
char *sockbuf;

int listener_slots[16];

struct config_args { int value_int; char *value_str; };
struct config_entry { char *name; void *handler; int takes_int; };

int cfg_index_intlen(struct config_args *c) {
    if (c->value_int < 4) {
        c->value_int = 4;
    } else if (c->value_int > 255) {
        c->value_int = 255;
    }
    index_intlen = c->value_int;
    return 0;
}

int cfg_sockbuf_max(struct config_args *c) {
    if (c->value_int > 1048576) {
        c->value_int = 1048576;
    }
    sockbuf_max_incoming = c->value_int;
    return 0;
}

int cfg_cache(struct config_args *c) {
    entry_cache_bytes = c->value_int;
    return 0;
}

int cfg_worker_threads(struct config_args *c) {
    if (c->value_int < 2) {
        fprintf(stderr, "slapd: invalid value for threads: %d (minimum 2)\n",
                c->value_int);
        exit(1);
    }
    if (c->value_int > 64) {
        fprintf(stderr, "slapd: invalid value for threads: %d (maximum 64)\n",
                c->value_int);
        exit(1);
    }
    worker_threads = c->value_int;
    return 0;
}

struct config_entry config_table[] = {
    { "index_intlen", cfg_index_intlen, 1 },
    { "sockbuf_max_incoming", cfg_sockbuf_max, 1 },
    { "entry_cache_bytes", cfg_cache, 1 },
    { "threads", cfg_worker_threads, 1 },
};

int parse_bool_value(char *key, char *value) {
    if (strcasecmp(value, "on") == 0) {
        return 1;
    }
    if (strcasecmp(value, "off") == 0) {
        return 0;
    }
    fprintf(stderr, "slapd: %s expects on|off, got \"%s\"\n", key, value);
    exit(1);
    return 0;
}

int handle_directive(char *key, char *value) {
    int i;
    struct config_args args;
    for (i = 0; i < 4; i++) {
        if (strcasecmp(key, config_table[i].name) == 0) {
            args.value_int = (int)strtol(value, NULL, 10);
            args.value_str = value;
            config_table[i].handler(&args);
            return 0;
        }
    }
    // Comparison-based half of the hybrid convention.
    if (strcasecmp(key, "listener-threads") == 0) {
        listener_threads = (int)strtol(value, NULL, 10);
        return 0;
    }
    if (strcasecmp(key, "cachesize") == 0) {
        cachesize = (int)strtol(value, NULL, 10);
        return 0;
    }
    if (strcasecmp(key, "cachefree") == 0) {
        cachefree = (int)strtol(value, NULL, 10);
        return 0;
    }
    if (strcasecmp(key, "sizelimit") == 0) {
        sizelimit = (int)strtol(value, NULL, 10);
        return 0;
    }
    if (strcasecmp(key, "idletimeout") == 0) {
        idletimeout = (int)strtol(value, NULL, 10);
        return 0;
    }
    if (strcasecmp(key, "writetimeout") == 0) {
        writetimeout = (int)strtol(value, NULL, 10);
        return 0;
    }
    if (strcasecmp(key, "checkpoint") == 0) {
        checkpoint_interval = (int)strtol(value, NULL, 10);
        return 0;
    }
    if (strcasecmp(key, "readonly") == 0) {
        readonly_mode = parse_bool_value(key, value);
        return 0;
    }
    if (strcasecmp(key, "require_tls") == 0) {
        require_tls = parse_bool_value(key, value);
        return 0;
    }
    if (strcasecmp(key, "pidfile") == 0) {
        pidfile_path = value;
        return 0;
    }
    if (strcasecmp(key, "argsfile") == 0) {
        argsfile_path = value;
        return 0;
    }
    if (strcasecmp(key, "directory") == 0) {
        db_directory = value;
        return 0;
    }
    // Unknown directives are ignored, as slapd does for modules.
    return 0;
}

int read_config(char *path) {
    void *fp = fopen(path, "r");
    if (fp == NULL) {
        fprintf(stderr, "slapd: could not open config file %s\n", path);
        return 1;
    }
    char *line = fgets(fp);
    while (line != NULL) {
        char *trimmed = str_trim(line);
        if (strlen(trimmed) > 0 && trimmed[0] != '#') {
            char *key = str_token(trimmed, 0);
            char *value = str_token(trimmed, 1);
            if (key != NULL && value != NULL) {
                handle_directive(key, value);
            }
        }
        line = fgets(fp);
    }
    fclose(fp);
    return 0;
}

int init_listeners() {
    // Hard-coded maximum of 16 listener slots: values beyond that
    // corrupt memory (the Figure 2 vulnerability, kept unfixed as the
    // real developers refused to change it).
    int i;
    for (i = 0; i < listener_threads; i++) {
        listener_slots[i] = i;
    }
    return 0;
}

int check_environment() {
    // Independent checks combined into one flag: no check guards
    // another (OpenLDAP infers zero control dependencies, Table 11).
    int ok = 1;
    if (!is_directory(db_directory)) {
        ok = 0;  // fails without any message: early termination
    }
    void *pid = fopen(pidfile_path, "w");
    if (pid == NULL) {
        ok = 0;  // also silent
    } else {
        fwrite_str(pid, "4242\n");
        fclose(pid);
    }
    void *args = fopen(argsfile_path, "w");
    if (args == NULL) {
        ok = 0;  // also silent
    } else {
        fclose(args);
    }
    if (ok == 0) {
        return 1;
    }
    return 0;
}

int init_caches() {
    sockbuf = malloc(sockbuf_max_incoming);
    char *entry_cache = malloc(entry_cache_bytes);
    // Pointer-mediated limit enforcement (bconfig.c style).  Without
    // alias analysis the limits get attributed to both candidates.
    int admin = 0;
    int *lim = &sizelimit;
    if (admin != 0) {
        lim = &admin_sizelimit;
    }
    if (*lim > 100000) {
        *lim = 100000;
    }
    int *lo = &cachefree;
    int *hi = &cachesize;
    if (admin != 0) {
        hi = &sizelimit;
    }
    if (*lo >= *hi) {
        *hi = *lo + 1;
    }
    return 0;
}

int idle_tick(long started) {
    // Capped naps keep an absurd timeout from hanging the server.
    if (idletimeout > 0) {
        int nap = idletimeout;
        if (nap > 2) {
            nap = 2;
        }
        sleep(nap);
    }
    if (writetimeout > 0) {
        int wnap = writetimeout;
        if (wnap > 2) {
            wnap = 2;
        }
        sleep(wnap);
    }
    if (checkpoint_interval > 0) {
        int cnap = checkpoint_interval;
        if (cnap > 2) {
            cnap = 2;
        }
        sleep(cnap);
    }
    return 0;
}

int serve() {
    char *req = recv_request();
    while (req != NULL) {
        if (strlen(req) > sockbuf_max_incoming) {
            syslog(6, "conn=11 fd=12 ACCEPT from IP=127.0.0.1");
            syslog(6, "conn=11 fd=12 closed (connection lost)");
            send_response("Can't contact LDAP server (-1)");
        } else if (strncmp(req, "BIND ", 5) == 0) {
            if (readonly_mode == 1 && require_tls == 1) {
                send_response("BIND refused: TLS required");
            } else {
                send_response("BIND ok");
            }
        } else if (strncmp(req, "SEARCH ", 7) == 0) {
            char *term = str_token(req, 1);
            int limit = sizelimit;
            send_response(sprintf("RESULT success=1 term=%s limit=%d",
                                  term, limit));
        } else if (strcmp(req, "PING") == 0) {
            send_response("PONG");
        } else {
            send_response("ERR unknown operation");
        }
        req = recv_request();
    }
    return 0;
}

int main(int argc, char **argv) {
    if (argc < 2) {
        fprintf(stderr, "usage: slapd <config>\n");
        return 2;
    }
    if (read_config(argv[1]) != 0) {
        return 1;
    }
    init_listeners();
    if (check_environment() != 0) {
        return 1;
    }
    init_caches();
    idle_tick(time(NULL));
    serve();
    return 0;
}
"""

ANNOTATIONS = """
{ @STRUCT = config_table
  @PAR = [config_entry, 1]
  @VAR = ([config_entry, 2], $c) }
{ @PARSER = handle_directive
  @PAR = $key
  @VAR = $value }
"""

DEFAULT_CONFIG = """\
# slapd-mini configuration
listener-threads 1
threads 4
index_intlen 4
sockbuf_max_incoming 262144
entry_cache_bytes 1048576
cachesize 1000
cachefree 100
sizelimit 500
idletimeout 0
writetimeout 0
checkpoint 60
readonly off
require_tls off
pidfile /var/run/slapd.pid
argsfile /var/run/slapd.args
directory /data/ldap
"""

MANUAL = {
    "listener-threads": "listener-threads <integer>: number of listener threads.",
    "threads": "threads <integer>: worker threads, between 2 and 64.",
    "index_intlen": "index_intlen <integer>: key length for integer indices.",
    "sockbuf_max_incoming": (
        "sockbuf_max_incoming <bytes>: maximum incoming LDAP PDU size."
    ),
    "entry_cache_bytes": "entry_cache_bytes <bytes>: entry cache memory.",
    "cachesize": "cachesize <integer>: entries cached.",
    "cachefree": (
        "cachefree <integer>: entries to free when full; "
        "must be smaller than cachesize."
    ),
    "sizelimit": "sizelimit <integer>: maximum entries returned per search.",
    "idletimeout": "idletimeout <seconds>: drop idle connections.",
    "writetimeout": "writetimeout <seconds>: drop blocked writers.",
    "checkpoint": "checkpoint <seconds>: database checkpoint interval.",
    "readonly": "readonly on|off.",
    "require_tls": "require_tls on|off.",
    "pidfile": "pidfile <path>: file holding the server PID.",
    "argsfile": "argsfile <path>: file holding the command line.",
    "directory": "directory <path>: database directory.",
}


def _tests() -> list[FunctionalTest]:
    return [
        FunctionalTest(
            name="ping",
            requests=["PING"],
            oracle=lambda responses: responses == ["PONG"],
            duration=0.5,
        ),
        FunctionalTest(
            name="bind",
            requests=["BIND cn=admin secret"],
            oracle=lambda responses: responses == ["BIND ok"],
            duration=1.0,
        ),
        FunctionalTest(
            name="search",
            requests=["SEARCH alpha"],
            oracle=lambda responses: len(responses) == 1
            and responses[0].startswith("RESULT success=1 term=alpha"),
            duration=2.0,
        ),
    ]


SPEC = SystemSpec(
    name="openldap",
    display_name="OpenLDAP",
    description="Miniature slapd with the paper's OpenLDAP traits",
    sources={"slapd.c": SLAPD_MAIN},
    annotations=ANNOTATIONS,
    dialect=DirectiveDialect(),
    config_path="/etc/openldap/slapd.conf",
    default_config=DEFAULT_CONFIG,
    params=[
        ParamSpec(
            "listener-threads",
            decode="int",
            var="listener_threads",
            manual=MANUAL["listener-threads"],
            truth=(truth_basic("listener-threads", "int"),),
        ),
        ParamSpec(
            "threads",
            decode="int",
            var="worker_threads",
            manual=MANUAL["threads"],
            truth=(
                truth_basic("threads", "int"),
                truth_range("threads"),
            ),
        ),
        ParamSpec(
            "index_intlen",
            decode="int",
            manual=MANUAL["index_intlen"],
            truth=(
                truth_basic("index_intlen", "int"),
                truth_range("index_intlen"),
            ),
        ),
        ParamSpec(
            "sockbuf_max_incoming",
            decode="size",
            manual=MANUAL["sockbuf_max_incoming"],
            truth=(
                truth_basic("sockbuf_max_incoming", "int"),
                truth_semantic("sockbuf_max_incoming", "SIZE"),
                truth_range("sockbuf_max_incoming"),
            ),
        ),
        ParamSpec(
            "entry_cache_bytes",
            decode="size",
            manual=MANUAL["entry_cache_bytes"],
            truth=(
                truth_basic("entry_cache_bytes", "int"),
                truth_semantic("entry_cache_bytes", "SIZE"),
            ),
        ),
        ParamSpec(
            "cachesize",
            decode="int",
            manual=MANUAL["cachesize"],
            truth=(truth_basic("cachesize", "int"),),
        ),
        ParamSpec(
            "cachefree",
            decode="int",
            manual=MANUAL["cachefree"],
            truth=(truth_basic("cachefree", "int"),),
        ),
        ParamSpec(
            "sizelimit",
            decode="int",
            manual=MANUAL["sizelimit"],
            truth=(
                truth_basic("sizelimit", "int"),
                truth_range("sizelimit"),
            ),
        ),
        ParamSpec(
            "idletimeout",
            decode="int",
            manual=MANUAL["idletimeout"],
            truth=(
                truth_basic("idletimeout", "int"),
                truth_semantic("idletimeout", "TIME"),
            ),
        ),
        ParamSpec(
            "writetimeout",
            decode="int",
            manual=MANUAL["writetimeout"],
            truth=(
                truth_basic("writetimeout", "int"),
                truth_semantic("writetimeout", "TIME"),
            ),
        ),
        ParamSpec(
            "checkpoint",
            decode="int",
            var="checkpoint_interval",
            manual=MANUAL["checkpoint"],
            truth=(
                truth_basic("checkpoint", "int"),
                truth_semantic("checkpoint", "TIME"),
            ),
        ),
        # readonly / require_tls are deliberately untracked: their
        # stores flip int flags the harness observes behaviourally.
        ParamSpec(
            "readonly",
            decode="string",
            var=None,
            manual=MANUAL["readonly"],
            truth=(
                truth_basic("readonly", "string"),
                truth_range("readonly"),
            ),
        ),
        ParamSpec(
            "require_tls",
            decode="string",
            var=None,
            manual=MANUAL["require_tls"],
            truth=(
                truth_basic("require_tls", "string"),
                truth_range("require_tls"),
            ),
        ),
        ParamSpec(
            "pidfile",
            decode="string",
            var="pidfile_path",
            manual=MANUAL["pidfile"],
            truth=(
                truth_basic("pidfile", "string"),
                truth_semantic("pidfile", "FILE"),
            ),
        ),
        ParamSpec(
            "argsfile",
            decode="string",
            var="argsfile_path",
            manual=MANUAL["argsfile"],
            truth=(
                truth_basic("argsfile", "string"),
                truth_semantic("argsfile", "FILE"),
            ),
        ),
        ParamSpec(
            "directory",
            decode="string",
            var="db_directory",
            manual=MANUAL["directory"],
            truth=(
                truth_basic("directory", "string"),
                truth_semantic("directory", "DIRECTORY"),
            ),
        ),
    ],
    tests=_tests(),
    extra_truth=[
        # True relation: cachefree < cachesize.  The aliased pointer
        # also yields cachefree < sizelimit, which is NOT ground truth
        # (mis-attribution), reproducing the paper's 50% value-rel
        # accuracy for OpenLDAP.
        truth_value_rel("cachefree", "cachesize"),
    ],
    os_dirs=[OsDir("/data/ldap")],
)


@register("openldap")
def build() -> SubjectSystem:
    return SPEC.build()
