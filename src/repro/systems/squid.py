"""Squid-mini: miniature Squid proxy.

Paper traits reproduced:

* comparison-based mapping (Table 1) with only 2 lines of annotation
  (Table 4);
* the Figure 6(c) boolean pattern: anything that is not "on" is
  silently treated as off - even "yes"/"enable" (the largest silent
  violation/overruling column of Tables 5 and 8);
* Figure 6(d): ``sscanf(token, "%i", &i)`` parsing whose result is
  undefined on invalid input;
* Figure 5(c): an occupied ``icp_port`` aborts with the misleading
  "FATAL: Cannot open ICP Port" message;
* case-sensitive strcmp value parsing for the enum directives
  (Table 6: Squid is the one system with a case-sensitive majority).
"""

from __future__ import annotations

from repro.core.accuracy import (
    truth_basic,
    truth_ctrl_dep,
    truth_range,
    truth_semantic,
)
from repro.inject.ar import DirectiveDialect
from repro.systems.base import FunctionalTest, SubjectSystem
from repro.systems.registry import register
from repro.systems.spec import SAME_AS_NAME, OsDir, ParamSpec, SystemSpec

SQUID_MAIN = r"""
// squid-mini
int http_port = 3128;
int icp_port = 3130;
int cache_mem_mb = 256;
int request_body_max_size = 1048576;
int reply_body_max_size = 0;
int readahead_gap_kb = 16;
int pconn_timeout = 120;
int client_lifetime = 86400;
int connect_retry_delay = 150;
int max_filedescriptors = 1024;
int memory_pools = 1;
int half_closed_clients = 0;
int detect_broken_pconn = 0;
int client_db = 1;
int httpd_suppress_version = 0;
int buffered_logs = 0;
int dns_defnames = 0;
int replacement_policy_code = 1;
int mem_policy_code = 1;
int uri_whitespace_code = 1;
char *cache_dir = "/var/cache/squid";
char *coredump_dir = "/var/cache/squid";
char *pid_filename = "/var/run/squid.pid";
char *visible_hostname = "localhost";
char *dns_nameserver = "127.0.0.1";

char *mem_pool;
char *idle_pool;
int memory_pools_limit = 5;
int dns_ok = 0;

int parse_line(char *key, char *value) {
    int n;
    // Booleans in the Figure 6(c) style: everything that is not
    // exactly "on" silently becomes off - including "yes"/"enable".
    if (strcmp(key, "memory_pools") == 0) {
        if (strcasecmp(value, "on") == 0) { memory_pools = 1; }
        else { memory_pools = 0; }
        return 0;
    }
    if (strcmp(key, "half_closed_clients") == 0) {
        if (strcasecmp(value, "on") == 0) { half_closed_clients = 1; }
        else { half_closed_clients = 0; }
        return 0;
    }
    if (strcmp(key, "detect_broken_pconn") == 0) {
        if (strcasecmp(value, "on") == 0) { detect_broken_pconn = 1; }
        else { detect_broken_pconn = 0; }
        return 0;
    }
    if (strcmp(key, "client_db") == 0) {
        if (strcasecmp(value, "on") == 0) { client_db = 1; }
        else { client_db = 0; }
        return 0;
    }
    if (strcmp(key, "httpd_suppress_version_string") == 0) {
        if (strcasecmp(value, "on") == 0) { httpd_suppress_version = 1; }
        else { httpd_suppress_version = 0; }
        return 0;
    }
    // These two use case-SENSITIVE compares (inconsistent on purpose,
    // part of Squid's mixed Table 6 row): "ON" silently means off.
    if (strcmp(key, "buffered_logs") == 0) {
        if (strcmp(value, "on") == 0) { buffered_logs = 1; }
        else { buffered_logs = 0; }
        return 0;
    }
    if (strcmp(key, "dns_defnames") == 0) {
        if (strcmp(value, "on") == 0) { dns_defnames = 1; }
        else { dns_defnames = 0; }
        return 0;
    }
    // Enum directives, case-sensitive, with FATAL on unknown values.
    if (strcmp(key, "cache_replacement_policy") == 0) {
        if (strcmp(value, "lru") == 0) { replacement_policy_code = 1; }
        else if (strcmp(value, "heap") == 0) { replacement_policy_code = 2; }
        else {
            fprintf(stderr, "FATAL: Unknown cache_replacement_policy '%s'\n",
                    value);
            exit(1);
        }
        return 0;
    }
    if (strcmp(key, "memory_replacement_policy") == 0) {
        if (strcmp(value, "lru") == 0) { mem_policy_code = 1; }
        else if (strcmp(value, "heap") == 0) { mem_policy_code = 2; }
        else {
            fprintf(stderr, "FATAL: Unknown memory_replacement_policy '%s'\n",
                    value);
            exit(1);
        }
        return 0;
    }
    if (strcmp(key, "uri_whitespace") == 0) {
        if (strcmp(value, "strip") == 0) { uri_whitespace_code = 1; }
        else if (strcmp(value, "deny") == 0) { uri_whitespace_code = 2; }
        else if (strcmp(value, "allow") == 0) { uri_whitespace_code = 3; }
        else { uri_whitespace_code = 1; }  // silently strip
        return 0;
    }
    // Integers through sscanf %i (Figure 6d): undefined on bad input.
    if (strcmp(key, "http_port") == 0) {
        sscanf(value, "%i", &n);
        http_port = n;
        return 0;
    }
    if (strcmp(key, "icp_port") == 0) {
        sscanf(value, "%i", &n);
        icp_port = n;
        return 0;
    }
    if (strcmp(key, "cache_mem") == 0) {
        sscanf(value, "%i", &n);
        cache_mem_mb = n;
        return 0;
    }
    if (strcmp(key, "request_body_max_size") == 0) {
        sscanf(value, "%i", &n);
        request_body_max_size = n;
        return 0;
    }
    if (strcmp(key, "reply_body_max_size") == 0) {
        sscanf(value, "%i", &n);
        reply_body_max_size = n;
        return 0;
    }
    if (strcmp(key, "readahead_gap") == 0) {
        sscanf(value, "%i", &n);
        readahead_gap_kb = n;
        return 0;
    }
    if (strcmp(key, "pconn_timeout") == 0) {
        sscanf(value, "%i", &n);
        pconn_timeout = n;
        return 0;
    }
    if (strcmp(key, "client_lifetime") == 0) {
        sscanf(value, "%i", &n);
        client_lifetime = n;
        return 0;
    }
    if (strcmp(key, "connect_retry_delay") == 0) {
        sscanf(value, "%i", &n);
        connect_retry_delay = n;
        return 0;
    }
    if (strcmp(key, "memory_pools_limit") == 0) {
        sscanf(value, "%i", &n);
        memory_pools_limit = n;
        return 0;
    }
    if (strcmp(key, "max_filedescriptors") == 0) {
        sscanf(value, "%i", &n);
        if (max_filedescriptors > 65536) {
            max_filedescriptors = 65536;
        }
        max_filedescriptors = n;
        return 0;
    }
    if (strcmp(key, "cache_dir") == 0) {
        cache_dir = value;
        return 0;
    }
    if (strcmp(key, "coredump_dir") == 0) {
        coredump_dir = value;
        return 0;
    }
    if (strcmp(key, "pid_filename") == 0) {
        pid_filename = value;
        return 0;
    }
    if (strcmp(key, "visible_hostname") == 0) {
        visible_hostname = value;
        return 0;
    }
    if (strcmp(key, "dns_nameservers") == 0) {
        dns_nameserver = value;
        return 0;
    }
    return 0;  // unknown directives ignored
}

int read_config(char *path) {
    void *fp = fopen(path, "r");
    if (fp == NULL) {
        fprintf(stderr, "FATAL: Unable to open configuration file: %s\n", path);
        exit(1);
    }
    char *line = fgets(fp);
    while (line != NULL) {
        char *trimmed = str_trim(line);
        if (strlen(trimmed) > 0 && trimmed[0] != '#') {
            char *key = str_token(trimmed, 0);
            char *value = str_token(trimmed, 1);
            if (key != NULL && value != NULL) {
                parse_line(key, value);
            }
        }
        line = fgets(fp);
    }
    fclose(fp);
    return 0;
}

int open_ports() {
    int fd = socket(2, 1, 0);
    if (bind(fd, http_port) != 0) {
        fprintf(stderr, "FATAL: Cannot bind HTTP socket\n");
        exit(1);
    }
    listen(fd, 64);
    if (icp_port > 0) {
        int icp = socket(2, 2, 0);
        if (bind(icp, htons(icp_port)) != 0) {
            // Figure 5(c): misleading, never names the parameter.
            fprintf(stderr, "FATAL: Cannot open ICP Port\n");
            exit(1);
        }
    }
    return 0;
}

int init_cache() {
    // cache_mem is in MBytes; the store arena is allocated in bytes.
    mem_pool = malloc(cache_mem_mb * 1048576);
    if (mem_pool == NULL) {
        mem_pool = malloc(1048576);
    }
    int gap = readahead_gap_kb * 1024;
    char *gap_buf = malloc(gap);
    if (memory_pools != 0) {
        // memory_pools_limit only matters with pooling enabled.
        idle_pool = malloc(memory_pools_limit * 1048576);
    }
    // Swap state lives under cache_dir; a missing directory crashes
    // the rebuild (no check, Squid's storeDirOpenSwapLogs style).
    void *swap = fopen(sprintf("%s/swap.state", cache_dir), "w");
    fwrite_str(swap, "SWAP-LOG v1\n");
    fclose(swap);
    char *body_buf = malloc(request_body_max_size);
    int pt = pconn_timeout;
    if (pt > 1) { pt = 1; }
    sleep(pt);
    void *pid = fopen(pid_filename, "w");
    if (pid != NULL) {
        fwrite_str(pid, "4242\n");
        fclose(pid);
    }
    return 0;
}

int init_dns() {
    if (inet_addr(dns_nameserver) < 0) {
        dns_ok = 0;  // silently disabled: DNS lookups will fail later
        return 0;
    }
    dns_ok = 1;
    return 0;
}

int throttle_retry() {
    if (connect_retry_delay > 0) {
        int ms = connect_retry_delay;
        if (ms > 1000) { ms = 1000; }
        sleep_ms(ms);
    }
    return 0;
}

int serve() {
    char *req = recv_request();
    while (req != NULL) {
        if (strncmp(req, "GET ", 4) == 0) {
            char *url = str_token(req, 1);
            send_response(sprintf("TCP_MISS/200 %s policy=%d",
                                  url, replacement_policy_code));
        } else if (strncmp(req, "POST ", 5) == 0) {
            int body = atoi(str_token(req, 2));
            if (request_body_max_size > 0 && body > request_body_max_size) {
                send_response("413 Request Entity Too Large");
            } else {
                send_response("200 Stored");
            }
        } else if (strncmp(req, "DNS ", 4) == 0) {
            if (dns_ok == 1) {
                send_response(sprintf("DNS OK %s", str_token(req, 1)));
            } else {
                send_response("503 DNS service unavailable");
            }
        } else if (strcmp(req, "MGR info") == 0) {
            send_response(sprintf("mem=%d MB host=%s",
                                  cache_mem_mb, visible_hostname));
        } else {
            send_response("400 Bad Request");
        }
        req = recv_request();
    }
    return 0;
}

int main(int argc, char **argv) {
    if (argc < 2) {
        fprintf(stderr, "usage: squid <config>\n");
        return 2;
    }
    read_config(argv[1]);
    open_ports();
    init_cache();
    init_dns();
    throttle_retry();
    serve();
    return 0;
}
"""

ANNOTATIONS = """
{ @PARSER = parse_line
  @PAR = $key @VAR = $value }
"""

DEFAULT_CONFIG = """\
# squid-mini configuration
http_port 3128
icp_port 0
cache_mem 256
request_body_max_size 1048576
reply_body_max_size 0
readahead_gap 16
pconn_timeout 120
client_lifetime 86400
connect_retry_delay 150
max_filedescriptors 1024
memory_pools_limit 5
memory_pools on
half_closed_clients off
detect_broken_pconn off
client_db on
httpd_suppress_version_string off
buffered_logs on
dns_defnames off
cache_replacement_policy lru
memory_replacement_policy lru
uri_whitespace strip
cache_dir /var/cache/squid
coredump_dir /var/cache/squid
pid_filename /var/run/squid.pid
visible_hostname localhost
dns_nameservers 127.0.0.1
"""

MANUAL = {
    "http_port": "http_port <port>: the HTTP listening port.",
    "icp_port": "icp_port <port>: the ICP (UDP) port; 0 disables ICP.",
    "cache_mem": "cache_mem <MB>: memory cache size in megabytes.",
    "request_body_max_size": "request_body_max_size <bytes>.",
    "reply_body_max_size": "reply_body_max_size <bytes>; 0 is unlimited.",
    "readahead_gap": "readahead_gap <KB>: read-ahead buffer per connection.",
    "pconn_timeout": "pconn_timeout <seconds>.",
    "client_lifetime": "client_lifetime <seconds>.",
    "memory_pools": "memory_pools on|off.",
    "memory_pools_limit": (
        "memory_pools_limit <MB>: idle pool cap. Only used when "
        "memory_pools is on."
    ),
    "half_closed_clients": "half_closed_clients on|off.",
    "detect_broken_pconn": "detect_broken_pconn on|off.",
    "client_db": "client_db on|off.",
    "httpd_suppress_version_string": "httpd_suppress_version_string on|off.",
    "buffered_logs": "buffered_logs on|off.",
    "dns_defnames": "dns_defnames on|off.",
    "cache_replacement_policy": "cache_replacement_policy lru|heap.",
    "memory_replacement_policy": "memory_replacement_policy lru|heap.",
    "uri_whitespace": "uri_whitespace strip|deny|allow.",
    "cache_dir": "cache_dir <path>: on-disk cache directory.",
    "coredump_dir": "coredump_dir <path>.",
    "pid_filename": "pid_filename <path>.",
    "visible_hostname": "visible_hostname <host>.",
    "dns_nameservers": "dns_nameservers <ip>.",
    # connect_retry_delay and max_filedescriptors are undocumented.
}


def _tests() -> list[FunctionalTest]:
    return [
        FunctionalTest(
            name="fetch",
            requests=["GET http://example.com/"],
            oracle=lambda r: len(r) == 1
            and r[0].startswith("TCP_MISS/200 http://example.com/"),
            duration=1.0,
        ),
        FunctionalTest(
            name="post_small",
            requests=["POST /upload 4096"],
            oracle=lambda r: r == ["200 Stored"],
            duration=1.5,
        ),
        FunctionalTest(
            name="dns",
            requests=["DNS example.com"],
            oracle=lambda r: r == ["DNS OK example.com"],
            duration=2.0,
        ),
        FunctionalTest(
            name="mgr_info",
            requests=["MGR info"],
            oracle=lambda r: len(r) == 1 and r[0].startswith("mem="),
            duration=0.5,
        ),
    ]


# (config name, decoder slug, effective variable, extra truth).  The
# renamed variables (cache_mem -> cache_mem_mb etc.) are the paper's
# unit-in-the-name pattern; `sscanf %i` parsing ignores the unit.
_INTS = [
    ("http_port", "int", SAME_AS_NAME,
     (truth_semantic("http_port", "PORT"),)),
    ("icp_port", "int", SAME_AS_NAME,
     (truth_semantic("icp_port", "PORT"),)),
    ("cache_mem", "int", "cache_mem_mb",
     (truth_semantic("cache_mem", "SIZE"),)),
    ("request_body_max_size", "size", SAME_AS_NAME,
     (truth_semantic("request_body_max_size", "SIZE"),)),
    ("reply_body_max_size", "size", SAME_AS_NAME, ()),
    ("readahead_gap", "int", "readahead_gap_kb",
     (truth_semantic("readahead_gap", "SIZE"),)),
    ("pconn_timeout", "int", SAME_AS_NAME,
     (truth_semantic("pconn_timeout", "TIME"),)),
    ("client_lifetime", "int", SAME_AS_NAME, ()),
    ("connect_retry_delay", "int", SAME_AS_NAME,
     (truth_semantic("connect_retry_delay", "TIME"),)),
    ("max_filedescriptors", "int", SAME_AS_NAME,
     (truth_range("max_filedescriptors"),)),
    ("memory_pools_limit", "int", SAME_AS_NAME,
     (truth_semantic("memory_pools_limit", "SIZE"),)),
]

# Figure 6(c) booleans, stored as int flags; the one rename hides the
# "_string" suffix the directive carries but the variable dropped.
_BOOLS = [
    ("memory_pools", SAME_AS_NAME),
    ("half_closed_clients", SAME_AS_NAME),
    ("detect_broken_pconn", SAME_AS_NAME),
    ("client_db", SAME_AS_NAME),
    ("httpd_suppress_version_string", "httpd_suppress_version"),
    ("buffered_logs", SAME_AS_NAME),
    ("dns_defnames", SAME_AS_NAME),
]

# Enum directives deliberately carry NO effective location (var=None):
# their values vanish into case-sensitive strcmp chains that store
# policy *codes*, so silent-violation comparison cannot map them.
_ENUMS = [
    "cache_replacement_policy",
    "memory_replacement_policy",
    "uri_whitespace",
]

_STRS = [
    ("cache_dir", SAME_AS_NAME,
     (truth_semantic("cache_dir", "FILE"),)),
    ("coredump_dir", SAME_AS_NAME, ()),
    ("pid_filename", SAME_AS_NAME,
     (truth_semantic("pid_filename", "FILE"),)),
    ("visible_hostname", SAME_AS_NAME, ()),
    ("dns_nameservers", "dns_nameserver",
     (truth_semantic("dns_nameservers", "IP_ADDRESS"),)),
]

SPEC = SystemSpec(
    name="squid",
    display_name="Squid",
    description="Miniature Squid with the paper's Squid traits",
    sources={"squid.c": SQUID_MAIN},
    annotations=ANNOTATIONS,
    dialect=DirectiveDialect(),
    config_path="/etc/squid/squid.conf",
    default_config=DEFAULT_CONFIG,
    params=[
        ParamSpec(
            name,
            decode=decode,
            var=var,
            manual=MANUAL.get(name),
            truth=(truth_basic(name, "int"),) + extra,
        )
        for name, decode, var, extra in _INTS
    ]
    + [
        ParamSpec(
            name,
            decode="bool",
            var=var,
            manual=MANUAL.get(name),
            truth=(truth_basic(name, "int"), truth_range(name)),
        )
        for name, var in _BOOLS
    ]
    + [
        ParamSpec(
            name,
            decode="string",
            var=None,
            manual=MANUAL.get(name),
            truth=(truth_basic(name, "string"), truth_range(name)),
        )
        for name in _ENUMS
    ]
    + [
        ParamSpec(
            name,
            decode="string",
            var=var,
            manual=MANUAL.get(name),
            truth=(truth_basic(name, "string"),) + extra,
        )
        for name, var, extra in _STRS
    ],
    tests=_tests(),
    extra_truth=[truth_ctrl_dep("memory_pools_limit", "memory_pools")],
    os_dirs=[OsDir("/var/cache/squid")],
)


@register("squid")
def build() -> SubjectSystem:
    return SPEC.build()
