"""Subject-system descriptor: everything the tools need to analyse,
run, and judge one system.

* sources + annotations       -> SPEX
* dialect + default config    -> SPEX-INJ's AR
* functional tests + oracles  -> SPEX-INJ's testing loop
* effective-value locations   -> silent-violation detection
* manual                      -> undocumented-constraint detection
* ground truth                -> Table 12 accuracy

Usage - fetch a registered system and drive the tools directly::

    from repro.inject import Campaign, InjectionHarness
    from repro.systems import get_system

    system = get_system("vsftpd")
    program = system.program()          # parse-and-link, memoized
    template = system.template_ar()     # ConfErr-style config AR

    assert InjectionHarness(system).baseline_ok()
    report = Campaign(system).run()     # the system's Table 5 row

Systems register a builder with `repro.systems.registry.register`
and are discovered lazily; see `docs/ADDING_A_SYSTEM.md` for the
full walkthrough of every field below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.accuracy import TruthEntry
from repro.inject.ar import ConfigAR, ConfigDialect
from repro.knowledge.apis import ApiSpec
from repro.lang.program import Program
from repro.runtime.os_model import EmulatedOS


@dataclass
class FunctionalTest:
    """One functional test: traffic plus an oracle over the responses.

    `duration` is the nominal wall-clock cost used by the paper's
    shortest-test-first scheduling optimisation.
    """

    name: str
    requests: list[str]
    oracle: Callable[[list[str]], bool]
    duration: float = 1.0


# Decoders turn the *injected string* into the value a user intends;
# silent violation = effective value differs without notification.


def decode_int(text: str) -> object:
    try:
        return int(text.strip())
    except ValueError:
        return text.strip()


_SIZE_SUFFIXES = {
    "k": 1024,
    "kb": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
}


def decode_size(text: str) -> object:
    """User intent for size values: understands K/M/G suffixes."""
    raw = text.strip().lower()
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if raw.endswith(suffix):
            number = raw[: -len(suffix)].strip()
            try:
                return int(number) * _SIZE_SUFFIXES[suffix]
            except ValueError:
                return text
    return decode_int(text)


_TRUE_WORDS = {"on", "yes", "true", "enable", "enabled", "1"}
_FALSE_WORDS = {"off", "no", "false", "disable", "disabled", "0"}


def decode_bool(text: str) -> object:
    raw = text.strip().lower()
    if raw in _TRUE_WORDS:
        return 1
    if raw in _FALSE_WORDS:
        return 0
    return text


def decode_string(text: str) -> object:
    return text.strip()


def decode_time_seconds(text: str) -> object:
    return decode_int(text)


@dataclass
class SubjectSystem:
    """A complete evaluated system."""

    name: str
    display_name: str
    description: str
    sources: dict[str, str]
    annotations: str
    dialect: ConfigDialect
    config_path: str
    default_config: str
    tests: list[FunctionalTest] = field(default_factory=list)
    # param -> (global var, field path) for post-run effective values
    effective_locations: dict[str, tuple[str, tuple[str, ...]]] = field(
        default_factory=dict
    )
    # param -> decoder from injected string to intended value
    decoders: dict[str, Callable[[str], object]] = field(default_factory=dict)
    manual: dict[str, str] = field(default_factory=dict)
    ground_truth: list[TruthEntry] = field(default_factory=list)
    custom_knowledge: list[ApiSpec] = field(default_factory=list)
    setup_os: Callable[[EmulatedOS], None] | None = None
    proprietary: bool = False
    # Parameters whose count the vendor keeps confidential (Storage-A).
    confidential_counts: bool = False

    _program: Program | None = None

    def program(self) -> Program:
        """Parse-and-link, memoized."""
        if self._program is None:
            self._program = Program.from_sources(self.sources, name=self.name)
        return self._program

    def invalidate_memos(self) -> None:
        """Drop derived state (the parsed program) so the next
        `program()` call re-reads `sources`.  The registry calls this
        from `clear_instance_cache()` so instances that escaped into
        caller hands before the clear cannot serve stale parses."""
        self._program = None

    def template_ar(self) -> ConfigAR:
        return ConfigAR.parse(self.default_config, self.dialect)

    def loc(self) -> int:
        return self.program().count_code_lines()

    def make_os(self) -> EmulatedOS:
        os_model = EmulatedOS()
        # Standard fixtures every system's injection campaign relies on:
        # a directory where a file is expected, a plain file where a
        # directory is expected, and one occupied port.
        os_model.add_dir("/data/injected_dir")
        os_model.add_file("/data/injected_file", "not a directory\n")
        # A root-only directory: the guaranteed-denied target for
        # access-control mistake injection (non-root identities can
        # neither read nor write it).
        restricted = os_model.add_dir("/data/restricted_dir")
        restricted.mode = 0o700
        os_model.occupy_port(3130)
        if self.setup_os is not None:
            self.setup_os(os_model)
        return os_model

    def install_config(self, os_model: EmulatedOS, text: str) -> None:
        os_model.add_file(self.config_path, text)

    def decoder_for(self, param: str) -> Callable[[str], object]:
        return self.decoders.get(param, decode_string)
