"""Apache-mini: miniature httpd.

Paper traits reproduced:

* Figure 4(b)'s structure-based mapping to parsing functions
  (AP_INIT_TAKE1-style command table, value arrives in each handler's
  ``arg`` parameter);
* Figure 6(b): ``MaxMemFree`` is in KBytes while every other size
  parameter uses bytes (``value * 1024`` before the allocator);
* Figure 7(b): ``ThreadLimit 100000`` aborts during startup with the
  misleading "Unable to create access scoreboard" message;
* ``atoi`` in the handlers (Table 8: 27 parameters behind unsafe
  transformations);
* division-by-zero and scoreboard overrun crashes under extreme
  values (Table 5a: 5 crash/hang entries for Apache).
"""

from __future__ import annotations

from repro.core.accuracy import (
    truth_basic,
    truth_ctrl_dep,
    truth_range,
    truth_semantic,
)
from repro.inject.ar import DirectiveDialect
from repro.systems.base import FunctionalTest, SubjectSystem
from repro.systems.registry import register
from repro.systems.spec import OsDir, ParamSpec, SystemSpec

HTTPD_MAIN = r"""
// httpd-mini
int listen_port = 80;
int thread_limit = 64;
int threads_per_child = 25;
int server_limit = 16;
int max_keepalive_requests = 100;
int keep_alive = 1;
int keep_alive_timeout = 5;
int request_timeout = 60;
int send_buffer_size = 8192;
int ap_max_mem_free = 2048 * 1024;
int hostname_lookups = 0;
int log_level_code = 4;
char *document_root = "/data/www";
char *server_name = "localhost";
char *run_user = "www-data";
char *pid_file_path = "/var/run/httpd.pid";
char *accept_filter_mode = "data";

int worker_score[64];
char *scoreboard;
char *free_pool;
char *resolved_ip;

int set_listen_port(char *arg) {
    listen_port = atoi(arg);
    return 0;
}

int set_thread_limit(char *arg) {
    thread_limit = atoi(arg);
    return 0;
}

int set_threads_per_child(char *arg) {
    threads_per_child = atoi(arg);
    return 0;
}

int set_server_limit(char *arg) {
    server_limit = atoi(arg);
    return 0;
}

int set_max_keepalive(char *arg) {
    max_keepalive_requests = atoi(arg);
    return 0;
}

int set_keep_alive(char *arg) {
    // Apache accepts On/Off case-insensitively.
    if (strcasecmp(arg, "on") == 0) {
        keep_alive = 1;
    } else if (strcasecmp(arg, "off") == 0) {
        keep_alive = 0;
    } else {
        fprintf(stderr, "AH00525: KeepAlive must be On or Off, got %s\n", arg);
        exit(1);
    }
    return 0;
}

int set_keep_alive_timeout(char *arg) {
    keep_alive_timeout = atoi(arg);
    return 0;
}

int set_request_timeout(char *arg) {
    request_timeout = atoi(arg);
    return 0;
}

int set_send_buffer_size(char *arg) {
    send_buffer_size = atoi(arg);
    return 0;
}

int set_max_mem_free(char *arg) {
    // Figure 6(b): unlike the other size directives (bytes), this one
    // is in KBytes.
    int value = atoi(arg);
    ap_max_mem_free = value * 1024;
    return 0;
}

int set_hostname_lookups(char *arg) {
    if (strcasecmp(arg, "on") == 0) { hostname_lookups = 1; }
    else if (strcasecmp(arg, "off") == 0) { hostname_lookups = 0; }
    else if (strcasecmp(arg, "double") == 0) { hostname_lookups = 2; }
    else { hostname_lookups = 0; }  // silently off
    return 0;
}

int set_log_level(char *arg) {
    if (strcasecmp(arg, "debug") == 0) { log_level_code = 7; }
    else if (strcasecmp(arg, "info") == 0) { log_level_code = 6; }
    else if (strcasecmp(arg, "notice") == 0) { log_level_code = 5; }
    else if (strcasecmp(arg, "warn") == 0) { log_level_code = 4; }
    else if (strcasecmp(arg, "error") == 0) { log_level_code = 3; }
    else {
        fprintf(stderr, "AH00526: Invalid LogLevel %s\n", arg);
        exit(1);
    }
    return 0;
}

int set_document_root(char *arg) {
    if (!is_directory(arg)) {
        fprintf(stderr, "AH00112: DocumentRoot '%s' does not exist\n", arg);
        exit(1);
    }
    document_root = arg;
    return 0;
}

int set_server_name(char *arg) {
    server_name = arg;
    return 0;
}

int set_user(char *arg) {
    if (getpwnam(arg) == NULL) {
        fprintf(stderr, "AH00544: could not find user %s\n", arg);
        exit(1);
    }
    run_user = arg;
    return 0;
}

int set_pid_file(char *arg) {
    pid_file_path = arg;
    return 0;
}

int set_accept_filter(char *arg) {
    // Case-SENSITIVE, unlike the other enum directives.
    if (strcmp(arg, "data") == 0) { accept_filter_mode = "data"; }
    else if (strcmp(arg, "httpready") == 0) { accept_filter_mode = "httpready"; }
    else { accept_filter_mode = "none"; }  // silently none
    return 0;
}

struct command_rec { char *name; void *func; };

struct command_rec core_cmds[] = {
    { "Listen", set_listen_port },
    { "ThreadLimit", set_thread_limit },
    { "ThreadsPerChild", set_threads_per_child },
    { "ServerLimit", set_server_limit },
    { "MaxKeepAliveRequests", set_max_keepalive },
    { "KeepAlive", set_keep_alive },
    { "KeepAliveTimeout", set_keep_alive_timeout },
    { "TimeOut", set_request_timeout },
    { "SendBufferSize", set_send_buffer_size },
    { "MaxMemFree", set_max_mem_free },
    { "HostnameLookups", set_hostname_lookups },
    { "LogLevel", set_log_level },
    { "DocumentRoot", set_document_root },
    { "ServerName", set_server_name },
    { "User", set_user },
    { "PidFile", set_pid_file },
    { "AcceptFilter", set_accept_filter },
};

int read_config(char *path) {
    void *fp = fopen(path, "r");
    if (fp == NULL) {
        fprintf(stderr, "httpd: could not open document config file %s\n",
                path);
        exit(1);
    }
    char *line = fgets(fp);
    while (line != NULL) {
        char *trimmed = str_trim(line);
        if (strlen(trimmed) > 0 && trimmed[0] != '#') {
            char *key = str_token(trimmed, 0);
            char *value = str_token(trimmed, 1);
            if (key != NULL && value != NULL) {
                int i;
                for (i = 0; i < 17; i++) {
                    if (strcasecmp(key, core_cmds[i].name) == 0) {
                        core_cmds[i].func(value);
                    }
                }
            }
        }
        line = fgets(fp);
    }
    fclose(fp);
    return 0;
}

int create_scoreboard() {
    // Connection buckets: ServerLimit 0 divides by zero (SIGFPE).
    int per_bucket = thread_limit / server_limit;
    // Figure 7(b): the scoreboard allocation fails for absurd thread
    // limits and the message never mentions ThreadLimit.
    scoreboard = malloc(thread_limit * server_limit * 4096);
    if (scoreboard == NULL) {
        fprintf(stderr, "Cannot allocate memory: AH00004: Unable to create "
                "access scoreboard (anonymous shared memory failure)\n");
        exit(1);
    }
    // Hard-coded 64 worker slots; ThreadsPerChild beyond that corrupts
    // memory with no check.
    int i;
    for (i = 0; i < threads_per_child; i++) {
        worker_score[i] = 0;
    }
    free_pool = malloc(ap_max_mem_free);
    return per_bucket;
}

int init_network() {
    int fd = socket(2, 1, 0);
    if (bind(fd, listen_port) != 0) {
        fprintf(stderr, "(98)Address already in use: AH00072: make_sock: "
                "could not bind to address\n");
        exit(1);
    }
    listen(fd, 128);
    char *buf = malloc(send_buffer_size);
    return 0;
}

int resolve_server_name() {
    resolved_ip = gethostbyname(server_name);
    if (resolved_ip == NULL) {
        // AH00558-style warning: does not name the directive.
        fprintf(stderr, "AH00558: could not reliably determine the "
                "server's fully qualified domain name\n");
    }
    return 0;
}

int keepalive_tick() {
    if (keep_alive != 0) {
        int wait = keep_alive_timeout;
        if (wait > 2) { wait = 2; }
        sleep(wait);
    }
    return 0;
}

int serve() {
    char *req = recv_request();
    int served = 0;
    while (req != NULL) {
        if (strncmp(req, "GET ", 4) == 0) {
            char *path = str_token(req, 1);
            if (resolved_ip == NULL) {
                send_response("HTTP/1.1 502 cannot resolve own name");
            } else {
                send_response(sprintf("HTTP/1.1 200 OK %s%s root-ok",
                                      document_root, path));
            }
        } else if (strcmp(req, "STATUS") == 0) {
            send_response(sprintf("workers=%d keepalive=%d",
                                  threads_per_child, keep_alive));
        } else {
            send_response("HTTP/1.1 400 Bad Request");
        }
        served = served + 1;
        req = recv_request();
    }
    return 0;
}

int main(int argc, char **argv) {
    if (argc < 2) {
        fprintf(stderr, "usage: httpd <config>\n");
        return 2;
    }
    read_config(argv[1]);
    create_scoreboard();
    init_network();
    resolve_server_name();
    keepalive_tick();
    serve();
    return 0;
}
"""

ANNOTATIONS = """
{ @STRUCT = core_cmds
  @PAR = [command_rec, 1]
  @VAR = ([command_rec, 2], $arg) }
"""

DEFAULT_CONFIG = """\
# httpd-mini configuration
Listen 80
ThreadLimit 64
ThreadsPerChild 25
ServerLimit 16
MaxKeepAliveRequests 100
KeepAlive On
KeepAliveTimeout 5
TimeOut 60
SendBufferSize 8192
MaxMemFree 2048
HostnameLookups Off
LogLevel warn
DocumentRoot /data/www
ServerName localhost
User www-data
PidFile /var/run/httpd.pid
AcceptFilter data
"""

MANUAL = {
    "Listen": "Listen <port>.",
    "ThreadsPerChild": "ThreadsPerChild <n>: threads per child process.",
    "ServerLimit": "ServerLimit <n>: upper bound of child processes.",
    "MaxKeepAliveRequests": "MaxKeepAliveRequests <n>.",
    "KeepAlive": "KeepAlive On|Off.",
    "KeepAliveTimeout": "KeepAliveTimeout <seconds>.",
    "TimeOut": "TimeOut <seconds>.",
    "SendBufferSize": "SendBufferSize <bytes>.",
    "MaxMemFree": "MaxMemFree <KBytes>: free-list memory cap per allocator.",
    "HostnameLookups": "HostnameLookups On|Off|Double.",
    "LogLevel": "LogLevel debug|info|notice|warn|error.",
    "DocumentRoot": "DocumentRoot <directory>.",
    "ServerName": "ServerName <hostname>.",
    "User": "User <username>.",
    "PidFile": "PidFile <path>.",
    # ThreadLimit and AcceptFilter are undocumented in the mini manual
    # (the real ThreadLimit footgun of Figure 7b).
}


def _tests() -> list[FunctionalTest]:
    return [
        FunctionalTest(
            name="fetch_index",
            requests=["GET /index.html"],
            oracle=lambda r: len(r) == 1 and r[0].startswith("HTTP/1.1 200 OK"),
            duration=1.0,
        ),
        FunctionalTest(
            name="status",
            requests=["STATUS"],
            oracle=lambda r: len(r) == 1 and r[0].startswith("workers="),
            duration=0.5,
        ),
        FunctionalTest(
            name="two_requests",
            requests=["GET /a.html", "GET /b.html"],
            oracle=lambda r: len(r) == 2
            and all(x.startswith("HTTP/1.1 200") for x in r),
            duration=2.0,
        ),
    ]


SPEC = SystemSpec(
    name="apache",
    display_name="Apache httpd",
    description="Miniature httpd with the paper's Apache traits",
    sources={"httpd.c": HTTPD_MAIN},
    annotations=ANNOTATIONS,
    dialect=DirectiveDialect(),
    config_path="/etc/httpd.conf",
    default_config=DEFAULT_CONFIG,
    params=[
        ParamSpec(
            "Listen",
            decode="int",
            var="listen_port",
            manual=MANUAL["Listen"],
            truth=(
                truth_basic("Listen", "int"),
                truth_semantic("Listen", "PORT"),
            ),
        ),
        # Undocumented in the mini manual (the real ThreadLimit footgun
        # of Figure 7b).
        ParamSpec(
            "ThreadLimit",
            decode="int",
            var="thread_limit",
            truth=(truth_basic("ThreadLimit", "int"),),
        ),
        ParamSpec(
            "ThreadsPerChild",
            decode="int",
            var="threads_per_child",
            manual=MANUAL["ThreadsPerChild"],
            truth=(truth_basic("ThreadsPerChild", "int"),),
        ),
        ParamSpec(
            "ServerLimit",
            decode="int",
            var="server_limit",
            manual=MANUAL["ServerLimit"],
            truth=(truth_basic("ServerLimit", "int"),),
        ),
        ParamSpec(
            "MaxKeepAliveRequests",
            decode="int",
            var="max_keepalive_requests",
            manual=MANUAL["MaxKeepAliveRequests"],
            truth=(truth_basic("MaxKeepAliveRequests", "int"),),
        ),
        ParamSpec(
            "KeepAlive",
            decode="bool",
            var="keep_alive",
            manual=MANUAL["KeepAlive"],
            truth=(
                truth_basic("KeepAlive", "string"),
                truth_range("KeepAlive"),
            ),
        ),
        ParamSpec(
            "KeepAliveTimeout",
            decode="int",
            var="keep_alive_timeout",
            manual=MANUAL["KeepAliveTimeout"],
            truth=(
                truth_basic("KeepAliveTimeout", "int"),
                truth_semantic("KeepAliveTimeout", "TIME"),
            ),
        ),
        ParamSpec(
            "TimeOut",
            decode="int",
            var="request_timeout",
            manual=MANUAL["TimeOut"],
            truth=(truth_basic("TimeOut", "int"),),
        ),
        ParamSpec(
            "SendBufferSize",
            decode="size",
            var="send_buffer_size",
            manual=MANUAL["SendBufferSize"],
            truth=(
                truth_basic("SendBufferSize", "int"),
                truth_semantic("SendBufferSize", "SIZE"),
            ),
        ),
        # Figure 6(b): expressed in KB, stored in bytes - a transformed
        # store, so no effective-value tracking (intent is the KB text).
        ParamSpec(
            "MaxMemFree",
            decode="int",
            var=None,
            manual=MANUAL["MaxMemFree"],
            truth=(
                truth_basic("MaxMemFree", "int"),
                truth_semantic("MaxMemFree", "SIZE"),
            ),
        ),
        ParamSpec(
            "HostnameLookups",
            decode="string",
            var="hostname_lookups",
            manual=MANUAL["HostnameLookups"],
            truth=(
                truth_basic("HostnameLookups", "string"),
                truth_range("HostnameLookups"),
            ),
        ),
        # The enum store is a syslog level code, not the config text.
        ParamSpec(
            "LogLevel",
            decode="string",
            var=None,
            manual=MANUAL["LogLevel"],
            truth=(
                truth_basic("LogLevel", "string"),
                truth_range("LogLevel"),
            ),
        ),
        ParamSpec(
            "DocumentRoot",
            decode="string",
            var="document_root",
            manual=MANUAL["DocumentRoot"],
            truth=(
                truth_basic("DocumentRoot", "string"),
                truth_semantic("DocumentRoot", "DIRECTORY"),
            ),
        ),
        ParamSpec(
            "ServerName",
            decode="string",
            var="server_name",
            manual=MANUAL["ServerName"],
            truth=(
                truth_basic("ServerName", "string"),
                truth_semantic("ServerName", "HOSTNAME"),
            ),
        ),
        ParamSpec(
            "User",
            decode="string",
            var="run_user",
            manual=MANUAL["User"],
            truth=(
                truth_basic("User", "string"),
                truth_semantic("User", "USER"),
            ),
        ),
        ParamSpec(
            "PidFile",
            decode="string",
            var="pid_file_path",
            manual=MANUAL["PidFile"],
            truth=(truth_basic("PidFile", "string"),),
        ),
        # Undocumented, like ThreadLimit.
        ParamSpec(
            "AcceptFilter",
            decode="string",
            var="accept_filter_mode",
            truth=(
                truth_basic("AcceptFilter", "string"),
                truth_range("AcceptFilter"),
            ),
        ),
    ],
    tests=_tests(),
    extra_truth=[truth_ctrl_dep("KeepAliveTimeout", "KeepAlive")],
    os_dirs=[OsDir("/data/www")],
)


@register("apache")
def build() -> SubjectSystem:
    return SPEC.build()
