"""PostgreSQL-mini: miniature postgres.

Paper traits reproduced:

* the exact Figure 4(a) mapping convention: ``ConfigureNamesInt``
  tables with name / variable address / default / min / max;
* GUC-style uniform checking that *names the parameter* on rejection -
  PostgreSQL's mostly good reactions (only 3 of its 49 exposed
  vulnerabilities were confirmed; crash and silent-violation columns
  are nearly empty in Table 5a);
* Figure 3(e): ``commit_siblings`` takes effect only when ``fsync``
  is on - plus further control dependencies whose violations are
  silently ignored (PostgreSQL's dominant column, 35 silent
  ignorances);
* one crash: an absurd ``shared_buffers`` makes the arena allocation
  fail and the zeroing pass dereferences NULL.
"""

from __future__ import annotations

from repro.core.accuracy import (
    truth_basic,
    truth_ctrl_dep,
    truth_range,
    truth_semantic,
    truth_value_rel,
)
from repro.inject.ar import KeyValueDialect
from repro.systems.base import (
    FunctionalTest,
    SubjectSystem,
    decode_bool,
    decode_int,
    decode_string,
)
from repro.systems.registry import register

POSTGRES_MAIN = r"""
// postgres-mini
int pg_port = 5432;
int max_connections = 100;
int shared_buffers = 16384;
int work_mem = 4096;
int maintenance_work_mem = 65536;
int DeadlockTimeout = 1000;
int enableFsync = 1;
int CommitSiblings = 5;
int commit_delay = 0;
int checkpoint_timeout = 300;
int checkpoint_warning = 30;
int wal_keep_segments = 0;
int min_wal_size = 80;
int max_wal_size = 1024;
int archive_mode = 0;
int logging_collector = 0;
int autovacuum = 1;
int autovacuum_naptime = 60;
char *data_directory = "/data/pg";
char *unix_socket_directories = "/var/run";
char *archive_command = "";
char *log_directory = "/var/log/pg";

char *shared_arena;

struct config_int { char *name; int *var; int def; int min; int max; };
struct config_str { char *name; char **var; };

struct config_int ConfigureNamesInt[] = {
    { "port", &pg_port, 5432, 1, 65535 },
    { "max_connections", &max_connections, 100, 1, 262143 },
    { "shared_buffers", &shared_buffers, 16384, 16, 1073741823 },
    { "work_mem", &work_mem, 4096, 64, 2147483647 },
    { "maintenance_work_mem", &maintenance_work_mem, 65536, 1024, 2147483647 },
    { "deadlock_timeout", &DeadlockTimeout, 1000, 1, 2147483647 },
    { "fsync", &enableFsync, 1, 0, 1 },
    { "commit_siblings", &CommitSiblings, 5, 0, 1000 },
    { "commit_delay", &commit_delay, 0, 0, 100000 },
    { "checkpoint_timeout", &checkpoint_timeout, 300, 30, 86400 },
    { "checkpoint_warning", &checkpoint_warning, 30, 0, 2147483647 },
    { "wal_keep_segments", &wal_keep_segments, 0, 0, 10000 },
    { "min_wal_size", &min_wal_size, 80, 32, 2147483647 },
    { "max_wal_size", &max_wal_size, 1024, 2, 2147483647 },
    { "archive_mode", &archive_mode, 0, 0, 1 },
    { "logging_collector", &logging_collector, 0, 0, 1 },
    { "autovacuum", &autovacuum, 1, 0, 1 },
    { "autovacuum_naptime", &autovacuum_naptime, 60, 1, 2147483 },
};

struct config_str ConfigureNamesString[] = {
    { "data_directory", &data_directory },
    { "unix_socket_directories", &unix_socket_directories },
    { "archive_command", &archive_command },
    { "log_directory", &log_directory },
};

int set_config_option(char *key, char *value) {
    int i;
    for (i = 0; i < 18; i++) {
        if (strcasecmp(key, ConfigureNamesInt[i].name) == 0) {
            char *end;
            long v = strtol(value, &end, 10);
            if (strlen(end) > 0) {
                fprintf(stderr, "FATAL: parameter \"%s\" requires a "
                        "numeric value\n", ConfigureNamesInt[i].name);
                exit(1);
            }
            if (v < ConfigureNamesInt[i].min) {
                fprintf(stderr, "FATAL: %d is outside the valid range for "
                        "parameter \"%s\" (%d .. %d)\n", (int)v,
                        ConfigureNamesInt[i].name, ConfigureNamesInt[i].min,
                        ConfigureNamesInt[i].max);
                exit(1);
            }
            if (v > ConfigureNamesInt[i].max) {
                fprintf(stderr, "FATAL: %d is outside the valid range for "
                        "parameter \"%s\" (%d .. %d)\n", (int)v,
                        ConfigureNamesInt[i].name, ConfigureNamesInt[i].min,
                        ConfigureNamesInt[i].max);
                exit(1);
            }
            *ConfigureNamesInt[i].var = (int)v;
            return 0;
        }
    }
    for (i = 0; i < 4; i++) {
        if (strcasecmp(key, ConfigureNamesString[i].name) == 0) {
            *ConfigureNamesString[i].var = value;
            return 0;
        }
    }
    fprintf(stderr, "FATAL: unrecognized configuration parameter \"%s\"\n",
            key);
    exit(1);
    return 0;
}

int read_config(char *path) {
    void *fp = fopen(path, "r");
    if (fp == NULL) {
        fprintf(stderr, "postgres: could not access %s\n", path);
        exit(1);
    }
    char *line = fgets(fp);
    while (line != NULL) {
        char *trimmed = str_trim(line);
        if (strlen(trimmed) > 0 && trimmed[0] != '#') {
            char *eq = strchr(trimmed, '=');
            if (eq != NULL) {
                int pos = strlen(trimmed) - strlen(eq);
                char *key = str_trim(str_substr(trimmed, 0, pos));
                char *value = str_trim(eq + 1);
                set_config_option(key, value);
            }
        }
        line = fgets(fp);
    }
    fclose(fp);
    return 0;
}

int init_shared_memory() {
    // Arena sized in 8 KB pages; absurd sizes fail allocation and the
    // zeroing pass crashes (the one PostgreSQL crash in Table 5a).
    shared_arena = malloc(shared_buffers * 8192);
    memset(shared_arena, 0, 64);
    return 0;
}

int check_dirs() {
    if (!is_directory(data_directory)) {
        fprintf(stderr, "postgres: could not access the server "
                "configuration file\n");  // misleading: wrong subject
        exit(1);
    }
    if (!is_directory(unix_socket_directories)) {
        return 1;  // silent early termination
    }
    if (logging_collector != 0) {
        if (!is_directory(log_directory)) {
            return 1;  // silent, and only with the collector on
        }
    }
    return 0;
}

int check_wal_sizes() {
    if (max_wal_size < min_wal_size) {
        fprintf(stderr, "FATAL: \"max_wal_size\" must be at least twice "
                "\"min_wal_size\"\n");
        exit(1);
    }
    return 0;
}

int init_network() {
    int fd = socket(2, 1, 0);
    if (bind(fd, pg_port) != 0) {
        fprintf(stderr, "LOG: could not bind IPv4 address: Address "
                "already in use\n");
        fprintf(stderr, "FATAL: could not create any TCP/IP sockets\n");
        exit(1);
    }
    listen(fd, 64);
    return 0;
}

int checkpointer_tick() {
    int ct = checkpoint_timeout;
    if (ct > 2) { ct = 2; }
    sleep(ct);
    return 0;
}

int MinimumActiveBackends(int min) {
    if (min > 0) {
        return 1;
    }
    return 0;
}

int RecordTransactionCommit() {
    if (enableFsync != 0) {
        // Figure 3(e): commit_siblings only consulted under fsync.
        if (MinimumActiveBackends(CommitSiblings)) {
            if (commit_delay > 0) {
                usleep(commit_delay);
            }
            return 1;
        }
    }
    return 0;
}

int run_archiver() {
    if (archive_mode != 0) {
        if (strlen(archive_command) == 0) {
            return 0;  // silently does nothing
        }
        send_response(sprintf("archived via %s", archive_command));
    }
    return 0;
}

int serve() {
    char *req = recv_request();
    while (req != NULL) {
        if (strncmp(req, "SELECT", 6) == 0) {
            send_response("1 row");
        } else if (strcmp(req, "COMMIT") == 0) {
            RecordTransactionCommit();
            send_response("COMMIT");
        } else if (strcmp(req, "ARCHIVE") == 0) {
            run_archiver();
            send_response("archive pass done");
        } else if (strcmp(req, "PING") == 0) {
            send_response("PONG");
        } else {
            send_response("ERROR: syntax error");
        }
        req = recv_request();
    }
    return 0;
}

int main(int argc, char **argv) {
    if (argc < 2) {
        fprintf(stderr, "usage: postgres <config>\n");
        return 2;
    }
    read_config(argv[1]);
    check_wal_sizes();
    init_shared_memory();
    if (check_dirs() != 0) {
        return 1;
    }
    init_network();
    checkpointer_tick();
    serve();
    return 0;
}
"""

ANNOTATIONS = """
{ @STRUCT = ConfigureNamesInt
  @PAR = [config_int, 1]
  @VAR = [config_int, 2]
  @MIN = [config_int, 4]
  @MAX = [config_int, 5] }
{ @STRUCT = ConfigureNamesString
  @PAR = [config_str, 1]
  @VAR = [config_str, 2] }
"""

DEFAULT_CONFIG = """\
# postgres-mini configuration
port=5432
max_connections=100
shared_buffers=16384
work_mem=4096
maintenance_work_mem=65536
deadlock_timeout=1000
fsync=1
commit_siblings=5
commit_delay=0
checkpoint_timeout=300
checkpoint_warning=30
wal_keep_segments=0
min_wal_size=80
max_wal_size=1024
archive_mode=0
logging_collector=0
autovacuum=1
autovacuum_naptime=60
data_directory=/data/pg
unix_socket_directories=/var/run
archive_command=
log_directory=/var/log/pg
"""

MANUAL = {
    "port": "port: 1..65535.",
    "max_connections": "max_connections: 1..262143.",
    "shared_buffers": "shared_buffers <8KB pages>: 16..1073741823.",
    "work_mem": "work_mem <KB>: 64..2147483647.",
    "maintenance_work_mem": "maintenance_work_mem <KB>: 1024..2147483647.",
    "deadlock_timeout": "deadlock_timeout <ms>: 1..2147483647.",
    "fsync": "fsync 0|1: force WAL to disk.",
    "commit_delay": "commit_delay <microseconds>: 0..100000.",
    "checkpoint_timeout": "checkpoint_timeout <s>: 30..86400.",
    "min_wal_size": "min_wal_size <MB>: 32..2147483647.",
    "max_wal_size": "max_wal_size <MB>: 2..2147483647.",
    "archive_mode": "archive_mode 0|1. See also archive_command.",
    "archive_command": "archive_command <cmd>: used when archive_mode is on.",
    "logging_collector": "logging_collector 0|1.",
    "log_directory": "log_directory <path>: used by the collector.",
    "autovacuum": "autovacuum 0|1.",
    "autovacuum_naptime": "autovacuum_naptime <s>: 1..2147483.",
    "data_directory": "data_directory <path>.",
    "unix_socket_directories": "unix_socket_directories <path>.",
    # undocumented: commit_siblings (and its fsync dependency),
    # checkpoint_warning, wal_keep_segments.
}


def _tests() -> list[FunctionalTest]:
    return [
        FunctionalTest(
            name="ping",
            requests=["PING"],
            oracle=lambda r: r == ["PONG"],
            duration=0.3,
        ),
        FunctionalTest(
            name="select",
            requests=["SELECT 1"],
            oracle=lambda r: r == ["1 row"],
            duration=1.0,
        ),
        FunctionalTest(
            name="commit",
            requests=["COMMIT"],
            oracle=lambda r: r == ["COMMIT"],
            duration=1.5,
        ),
        FunctionalTest(
            name="archive",
            requests=["ARCHIVE"],
            oracle=lambda r: len(r) >= 1 and r[-1] == "archive pass done",
            duration=2.0,
        ),
    ]


def _setup_os(os_model) -> None:
    os_model.add_dir("/data/pg")
    os_model.add_dir("/var/log/pg")


def _ground_truth():
    ints = [
        "port",
        "max_connections",
        "shared_buffers",
        "work_mem",
        "maintenance_work_mem",
        "deadlock_timeout",
        "fsync",
        "commit_siblings",
        "commit_delay",
        "checkpoint_timeout",
        "checkpoint_warning",
        "wal_keep_segments",
        "min_wal_size",
        "max_wal_size",
        "archive_mode",
        "logging_collector",
        "autovacuum",
        "autovacuum_naptime",
    ]
    strs = [
        "data_directory",
        "unix_socket_directories",
        "archive_command",
        "log_directory",
    ]
    truth = [truth_basic(p, "int") for p in ints]
    truth += [truth_basic(p, "string") for p in strs]
    truth += [truth_range(p) for p in ints]
    truth += [
        truth_semantic("port", "PORT"),
        truth_semantic("shared_buffers", "SIZE"),
        truth_semantic("commit_delay", "TIME"),
        truth_semantic("checkpoint_timeout", "TIME"),
        truth_semantic("data_directory", "DIRECTORY"),
        truth_semantic("unix_socket_directories", "DIRECTORY"),
        truth_semantic("log_directory", "DIRECTORY"),
        truth_ctrl_dep("commit_siblings", "fsync"),
        truth_ctrl_dep("commit_delay", "fsync"),
        truth_ctrl_dep("log_directory", "logging_collector"),
        truth_ctrl_dep("archive_command", "archive_mode"),
        truth_value_rel("min_wal_size", "max_wal_size"),
    ]
    return truth


@register("postgresql")
def build() -> SubjectSystem:
    ints = [
        "port",
        "max_connections",
        "shared_buffers",
        "work_mem",
        "maintenance_work_mem",
        "deadlock_timeout",
        "fsync",
        "commit_siblings",
        "commit_delay",
        "checkpoint_timeout",
        "checkpoint_warning",
        "wal_keep_segments",
        "min_wal_size",
        "max_wal_size",
        "archive_mode",
        "logging_collector",
        "autovacuum",
        "autovacuum_naptime",
    ]
    decoders = {p: decode_int for p in ints}
    var_of = {
        "port": "pg_port",
        "max_connections": "max_connections",
        "shared_buffers": "shared_buffers",
        "work_mem": "work_mem",
        "maintenance_work_mem": "maintenance_work_mem",
        "deadlock_timeout": "DeadlockTimeout",
        "fsync": "enableFsync",
        "commit_siblings": "CommitSiblings",
        "commit_delay": "commit_delay",
        "checkpoint_timeout": "checkpoint_timeout",
        "checkpoint_warning": "checkpoint_warning",
        "wal_keep_segments": "wal_keep_segments",
        "min_wal_size": "min_wal_size",
        "max_wal_size": "max_wal_size",
        "archive_mode": "archive_mode",
        "logging_collector": "logging_collector",
        "autovacuum": "autovacuum",
        "autovacuum_naptime": "autovacuum_naptime",
        "data_directory": "data_directory",
        "unix_socket_directories": "unix_socket_directories",
        "archive_command": "archive_command",
        "log_directory": "log_directory",
    }
    return SubjectSystem(
        name="postgresql",
        display_name="PostgreSQL",
        description="Miniature postgres with the paper's PostgreSQL traits",
        sources={"postgres.c": POSTGRES_MAIN},
        annotations=ANNOTATIONS,
        dialect=KeyValueDialect("="),
        config_path="/etc/postgresql.conf",
        default_config=DEFAULT_CONFIG,
        tests=_tests(),
        effective_locations={p: (v, ()) for p, v in var_of.items()},
        decoders=decoders,
        manual=MANUAL,
        ground_truth=_ground_truth(),
        setup_os=_setup_os,
    )
