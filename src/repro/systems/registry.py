"""Registry of the seven evaluated subject systems."""

from __future__ import annotations

from repro.systems.base import SubjectSystem

_BUILDERS = {}
_CACHE: dict[str, SubjectSystem] = {}


def register(name: str):
    def deco(fn):
        _BUILDERS[name] = fn
        return fn

    return deco


def _ensure_loaded() -> None:
    # Import for side effects (each module registers its builder).
    from repro.systems import (  # noqa: F401
        apache,
        mysql,
        openldap,
        postgresql,
        squid,
        storage_a,
        vsftpd,
    )


def system_names() -> list[str]:
    _ensure_loaded()
    return sorted(_BUILDERS)


def get_system(name: str) -> SubjectSystem:
    _ensure_loaded()
    if name not in _CACHE:
        _CACHE[name] = _BUILDERS[name]()
    return _CACHE[name]


def all_systems() -> list[SubjectSystem]:
    return [get_system(name) for name in system_names()]
