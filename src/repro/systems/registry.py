"""Registry of the subject systems (the paper's seven plus later
additions such as the declarative-built nginx miniature).

Builders register themselves on import; instances are memoized.  The
bulk API (`iter_systems`, `load_all`) is what the campaign pipeline
uses to enumerate sweep targets without materialising systems it will
end up skipping (e.g. cached ones).
"""

from __future__ import annotations

from typing import Iterator

from repro.systems.base import SubjectSystem

_BUILDERS = {}
_CACHE: dict[str, SubjectSystem] = {}


def register(name: str):
    def deco(fn):
        _BUILDERS[name] = fn
        return fn

    return deco


def _ensure_loaded() -> None:
    # Import for side effects (each module registers its builder).
    from repro.systems import (  # noqa: F401
        apache,
        mysql,
        nginx,
        openldap,
        postgresql,
        squid,
        storage_a,
        vsftpd,
    )


def system_names() -> list[str]:
    _ensure_loaded()
    return sorted(_BUILDERS)


def is_registered(name: str) -> bool:
    _ensure_loaded()
    return name in _BUILDERS


def get_system(name: str) -> SubjectSystem:
    _ensure_loaded()
    if name not in _CACHE:
        _CACHE[name] = _BUILDERS[name]()
    return _CACHE[name]


def iter_systems(names: list[str] | None = None) -> Iterator[SubjectSystem]:
    """Lazily yield systems - all of them, or the named subset in the
    given order.  Unknown names raise `KeyError` up front so a sweep
    fails before any work is done."""
    _ensure_loaded()
    selected = system_names() if names is None else list(names)
    unknown = [n for n in selected if n not in _BUILDERS]
    if unknown:
        raise KeyError(
            f"unknown system(s): {', '.join(unknown)}; "
            f"registered: {', '.join(system_names())}"
        )
    for name in selected:
        yield get_system(name)


def load_all() -> dict[str, SubjectSystem]:
    """Materialise every registered system, keyed by name."""
    return {system.name: system for system in iter_systems()}


def all_systems() -> list[SubjectSystem]:
    return list(iter_systems())


def clear_instance_cache() -> None:
    """Drop memoized instances (builders stay registered).  Tests use
    this to get pristine `SubjectSystem` objects.

    Contract: the clear also invalidates the derived-state memos
    (`SubjectSystem.program()`) on every instance handed out so far.
    Callers holding a reference across a clear keep a *usable* object
    - its next `program()` call re-parses current `sources` - rather
    than a stale parse from before whatever mutation motivated the
    clear.  `template_ar()` is unmemoized by design and needs no
    invalidation."""
    for system in _CACHE.values():
        system.invalidate_memos()
    _CACHE.clear()
