"""MySQL-mini: miniature mysqld.

Paper traits reproduced:

* structure-based mapping through sys_var tables that carry min/max
  (§5.2: the global table enforces uniform validity checking - but the
  clamping is *silent*, giving MySQL's 71 silent violations);
* Figure 3(b)/5(b): ``ft_stopword_file`` reaches open() through the
  ``my_open`` wrapper; a directory path crashes the server;
* Figure 3(f)/5(f): ``ft_min_word_len < ft_max_word_len`` - violating
  it breaks full-text search with no message;
* Figure 7(a): ``performance_schema_events_waits_history_size = 0``
  crashes with SIGFPE (ring-buffer modulo);
* Figure 6(a): ``innodb_file_format_check`` values are case-sensitive
  while every other string option is case-insensitive (Table 6's
  single sensitive entry);
* safe strtol parsing only (Table 8: 0 unsafe transformations).
"""

from __future__ import annotations

from repro.core.accuracy import (
    truth_basic,
    truth_ctrl_dep,
    truth_range,
    truth_semantic,
    truth_value_rel,
)
from repro.inject.ar import KeyValueDialect
from repro.systems.base import FunctionalTest, SubjectSystem
from repro.systems.registry import register
from repro.systems.spec import SAME_AS_NAME, OsDir, ParamSpec, SystemSpec

MYSQLD_MAIN = r"""
// mysqld-mini
int mysql_port = 3306;
int max_connections = 151;
int key_buffer_size = 8388608;
int sort_buffer_size = 262144;
int max_allowed_packet = 4194304;
int wait_timeout = 28800;
int interactive_timeout = 28800;
int net_retry_count = 10;
int table_open_cache = 400;
int ft_min_word_len = 4;
int ft_max_word_len = 84;
int waits_history_size = 10;
int innodb_thread_sleep_delay = 10000;
int innodb_thread_concurrency = 0;
int thread_cache_size = 9;
int slow_query_log = 0;
char *datadir = "/data/mysql";
char *ft_stopword_file = "";
char *socket_path = "/var/run/mysqld.sock";
char *pid_file = "/var/run/mysqld.pid";
char *log_error = "/var/log/mysqld.log";
char *slow_query_log_file = "/var/log/mysql-slow.log";
char *innodb_file_format_check = "Antelope";
char *binlog_format = "STATEMENT";
char *innodb_flush_method = "fsync";

char *key_buffer;
char *sort_buffer;
int waits_ring_pos = 0;
int stopword_count = 0;

struct sys_var_int { char *name; int *var; int def; int min; int max; };
struct sys_var_str { char *name; char **var; };

struct sys_var_int int_vars[] = {
    { "port", &mysql_port, 3306, 0, 65535 },
    { "max_connections", &max_connections, 151, 1, 100000 },
    { "key_buffer_size", &key_buffer_size, 8388608, 8, 1073741824 },
    { "sort_buffer_size", &sort_buffer_size, 262144, 1024, 1073741824 },
    { "max_allowed_packet", &max_allowed_packet, 4194304, 1024, 1073741824 },
    { "wait_timeout", &wait_timeout, 28800, 1, 31536000 },
    { "interactive_timeout", &interactive_timeout, 28800, 1, 31536000 },
    { "net_retry_count", &net_retry_count, 10, 1, 100000 },
    { "table_open_cache", &table_open_cache, 400, 1, 524288 },
    { "ft_min_word_len", &ft_min_word_len, 4, 1, 84 },
    { "ft_max_word_len", &ft_max_word_len, 84, 10, 84 },
    { "performance_schema_events_waits_history_size", &waits_history_size,
      10, 0, 1048576 },
    { "innodb_thread_sleep_delay", &innodb_thread_sleep_delay,
      10000, 0, 1000000 },
    { "innodb_thread_concurrency", &innodb_thread_concurrency, 0, 0, 1000 },
    { "thread_cache_size", &thread_cache_size, 9, 0, 16384 },
    { "slow_query_log", &slow_query_log, 0, 0, 1 },
};

struct sys_var_str str_vars[] = {
    { "datadir", &datadir },
    { "ft_stopword_file", &ft_stopword_file },
    { "socket", &socket_path },
    { "pid_file", &pid_file },
    { "log_error", &log_error },
    { "slow_query_log_file", &slow_query_log_file },
    { "innodb_file_format_check", &innodb_file_format_check },
    { "binlog_format", &binlog_format },
    { "innodb_flush_method", &innodb_flush_method },
};

int apply_setting(char *key, char *value) {
    int i;
    for (i = 0; i < 16; i++) {
        if (strcasecmp(key, int_vars[i].name) == 0) {
            long v = strtol(value, NULL, 10);
            // Uniform table-driven validity checking (§5.2), but the
            // adjustment is silent - MySQL's silent violations.
            if (v < int_vars[i].min) { v = int_vars[i].min; }
            if (v > int_vars[i].max) { v = int_vars[i].max; }
            *int_vars[i].var = (int)v;
            return 0;
        }
    }
    for (i = 0; i < 9; i++) {
        if (strcasecmp(key, str_vars[i].name) == 0) {
            *str_vars[i].var = value;
            return 0;
        }
    }
    fprintf(stderr, "[ERROR] unknown variable '%s=%s'\n", key, value);
    exit(1);
    return 0;
}

int read_config(char *path) {
    void *fp = fopen(path, "r");
    if (fp == NULL) {
        fprintf(stderr, "[ERROR] Could not open %s\n", path);
        exit(1);
    }
    char *line = fgets(fp);
    while (line != NULL) {
        char *trimmed = str_trim(line);
        if (strlen(trimmed) > 0 && trimmed[0] != '#' && trimmed[0] != '[') {
            char *eq = strchr(trimmed, '=');
            if (eq != NULL) {
                int pos = strlen(trimmed) - strlen(eq);
                char *key = str_trim(str_substr(trimmed, 0, pos));
                char *value = str_trim(eq + 1);
                apply_setting(key, value);
            }
        }
        line = fgets(fp);
    }
    fclose(fp);
    return 0;
}

int validate_options() {
    // innodb_file_format_check: case-SENSITIVE (Figure 6a), unlike
    // every other enum option in the server.
    if (strcmp(innodb_file_format_check, "Antelope") != 0) {
        if (strcmp(innodb_file_format_check, "Barracuda") != 0) {
            fprintf(stderr, "[ERROR] Invalid innodb_file_format_check "
                    "value: %s\n", innodb_file_format_check);
            exit(1);
        }
    }
    if (strcasecmp(binlog_format, "statement") != 0) {
        if (strcasecmp(binlog_format, "row") != 0) {
            if (strcasecmp(binlog_format, "mixed") != 0) {
                fprintf(stderr, "[ERROR] unknown binlog format: %s\n",
                        binlog_format);
                exit(1);
            }
        }
    }
    if (strcasecmp(innodb_flush_method, "fsync") != 0) {
        if (strcasecmp(innodb_flush_method, "O_DSYNC") != 0) {
            if (strcasecmp(innodb_flush_method, "O_DIRECT") != 0) {
                fprintf(stderr, "[ERROR] Unrecognized value %s for "
                        "innodb_flush_method\n", innodb_flush_method);
                exit(1);
            }
        }
    }
    return 0;
}

int my_open(char *FileName, int Flags) {
    int fd = open(FileName, Flags);
    return fd;
}

void *my_fopen(char *FileName, char *mode) {
    void *fp = fopen(FileName, mode);
    return fp;
}

int ft_init_stopwords() {
    if (strlen(ft_stopword_file) == 0) {
        return 0;
    }
    void *fp = my_fopen(ft_stopword_file, "r");
    if (fp == NULL) {
        fprintf(stderr, "[ERROR] Aborting\n");  // never names the file
        exit(1);
    }
    char *line = fgets(fp);
    // No NULL check: a directory path opens but reads NULL (the
    // Figure 5b crash).
    int n = strlen(line);
    while (line != NULL) {
        stopword_count = stopword_count + 1;
        line = fgets(fp);
    }
    fclose(fp);
    return n;
}

int init_storage() {
    key_buffer = malloc(key_buffer_size);
    sort_buffer = malloc(sort_buffer_size);
    // Independent environment checks combined into one verdict.
    int ok = 1;
    if (!is_directory(datadir)) {
        ok = 0;  // silent early termination
    }
    void *pid = fopen(pid_file, "w");
    if (pid == NULL) {
        ok = 0;  // silent
    } else {
        fwrite_str(pid, "4242\n");
        fclose(pid);
    }
    if (ok == 0) {
        return 1;
    }
    return 0;
}

int init_perf_schema() {
    // Ring-buffer position: modulo by zero crashes with SIGFPE
    // (Figure 7a) and there is no log message at all.
    waits_ring_pos = 7 % waits_history_size;
    return 0;
}

int init_network() {
    int fd = socket(2, 1, 0);
    if (bind(fd, mysql_port) != 0) {
        fprintf(stderr, "[ERROR] Can't start server: Bind on TCP/IP "
                "port: Address already in use. port: %d\n", mysql_port);
        exit(1);
    }
    listen(fd, 128);
    return 0;
}

int connection_reaper() {
    int w = wait_timeout;
    if (w > 2) { w = 2; }
    sleep(w);
    int iw = interactive_timeout;
    if (iw > 2) { iw = 2; }
    sleep(iw);
    return 0;
}

int innodb_throttle() {
    if (innodb_thread_concurrency > 0) {
        // The sleep delay only matters with a concurrency cap set.
        usleep(innodb_thread_sleep_delay);
    }
    return 0;
}

int ft_word_matches(char *word) {
    int length = strlen(word);
    if (length >= ft_min_word_len && length < ft_max_word_len) {
        return 1;
    }
    return 0;
}

int serve() {
    char *req = recv_request();
    while (req != NULL) {
        if (strncmp(req, "FTSEARCH ", 9) == 0) {
            char *word = str_token(req, 1);
            if (ft_word_matches(word)) {
                send_response(sprintf("FT RESULT %s", word));
            } else {
                send_response("FT EMPTY");
            }
        } else if (strncmp(req, "QUERY ", 6) == 0) {
            send_response(sprintf("OK rows=1 q=%s", str_token(req, 1)));
        } else if (strcmp(req, "PING") == 0) {
            send_response("PONG");
        } else if (strcmp(req, "STATUS") == 0) {
            send_response(sprintf("uptime=1 max_conn=%d", max_connections));
        } else {
            send_response("ERR syntax");
        }
        req = recv_request();
    }
    return 0;
}

int main(int argc, char **argv) {
    if (argc < 2) {
        fprintf(stderr, "usage: mysqld <config>\n");
        return 2;
    }
    read_config(argv[1]);
    validate_options();
    if (init_storage() != 0) {
        return 1;
    }
    ft_init_stopwords();
    init_perf_schema();
    init_network();
    connection_reaper();
    innodb_throttle();
    serve();
    return 0;
}
"""

ANNOTATIONS = """
{ @STRUCT = int_vars
  @PAR = [sys_var_int, 1]
  @VAR = [sys_var_int, 2]
  @MIN = [sys_var_int, 4]
  @MAX = [sys_var_int, 5] }
{ @STRUCT = str_vars
  @PAR = [sys_var_str, 1]
  @VAR = [sys_var_str, 2] }
"""

DEFAULT_CONFIG = """\
# mysqld-mini configuration
port=3306
max_connections=151
key_buffer_size=8388608
sort_buffer_size=262144
max_allowed_packet=4194304
wait_timeout=28800
interactive_timeout=28800
net_retry_count=10
table_open_cache=400
ft_min_word_len=4
ft_max_word_len=84
performance_schema_events_waits_history_size=10
innodb_thread_sleep_delay=10000
innodb_thread_concurrency=0
thread_cache_size=9
slow_query_log=0
datadir=/data/mysql
ft_stopword_file=
socket=/var/run/mysqld.sock
pid_file=/var/run/mysqld.pid
log_error=/var/log/mysqld.log
slow_query_log_file=/var/log/mysql-slow.log
innodb_file_format_check=Antelope
binlog_format=STATEMENT
innodb_flush_method=fsync
"""

MANUAL = {
    "port": "port: TCP port, 0..65535.",
    "max_connections": "max_connections: 1..100000.",
    "key_buffer_size": "key_buffer_size <bytes>: 8..1073741824.",
    "sort_buffer_size": "sort_buffer_size <bytes>: 1024..1073741824.",
    "max_allowed_packet": "max_allowed_packet <bytes>, 1K..1G.",
    "wait_timeout": "wait_timeout <seconds>: 1..31536000.",
    "interactive_timeout": "interactive_timeout <seconds>: 1..31536000.",
    "table_open_cache": "table_open_cache: 1..524288.",
    "ft_min_word_len": "ft_min_word_len: 1..84, minimum full-text word length.",
    "ft_max_word_len": "ft_max_word_len: 10..84, maximum full-text word length.",
    "datadir": "datadir <path>: data directory.",
    "ft_stopword_file": "ft_stopword_file <file>: stopword list.",
    "socket": "socket <path>: unix socket file.",
    "pid_file": "pid_file <path>.",
    "log_error": "log_error <path>.",
    "binlog_format": "binlog_format STATEMENT|ROW|MIXED.",
    "slow_query_log": "slow_query_log 0|1.",
    "innodb_thread_concurrency": "innodb_thread_concurrency: 0..1000.",
    "innodb_flush_method": "innodb_flush_method fsync|O_DSYNC|O_DIRECT.",
    "innodb_file_format_check": "innodb_file_format_check: file format.",
    # undocumented: performance_schema_events_waits_history_size,
    # innodb_thread_sleep_delay (+ its concurrency dependency),
    # net_retry_count, thread_cache_size, slow_query_log(_file),
    # and the ft_min<ft_max relationship.
}


def _tests() -> list[FunctionalTest]:
    return [
        FunctionalTest(
            name="ping",
            requests=["PING"],
            oracle=lambda r: r == ["PONG"],
            duration=0.3,
        ),
        FunctionalTest(
            name="query",
            requests=["QUERY select1"],
            oracle=lambda r: r == ["OK rows=1 q=select1"],
            duration=1.0,
        ),
        FunctionalTest(
            name="fulltext",
            requests=["FTSEARCH hello"],
            oracle=lambda r: r == ["FT RESULT hello"],
            duration=2.0,
        ),
        FunctionalTest(
            name="status",
            requests=["STATUS"],
            oracle=lambda r: len(r) == 1 and r[0].startswith("uptime="),
            duration=0.5,
        ),
    ]


# (config name, decoder slug, effective variable, extra truth).  Every
# sys_var_int row carries the table's min/max columns, so every int
# parameter gets a range truth; the renames follow the real server
# (`port` lands in `mysql_port`, the performance-schema mouthful in
# `waits_history_size`).
_INTS = [
    ("port", "int", "mysql_port",
     (truth_semantic("port", "PORT"),)),
    ("max_connections", "int", SAME_AS_NAME, ()),
    ("key_buffer_size", "size", SAME_AS_NAME,
     (truth_semantic("key_buffer_size", "SIZE"),)),
    ("sort_buffer_size", "size", SAME_AS_NAME,
     (truth_semantic("sort_buffer_size", "SIZE"),)),
    ("max_allowed_packet", "size", SAME_AS_NAME, ()),
    ("wait_timeout", "int", SAME_AS_NAME,
     (truth_semantic("wait_timeout", "TIME"),)),
    ("interactive_timeout", "int", SAME_AS_NAME,
     (truth_semantic("interactive_timeout", "TIME"),)),
    ("net_retry_count", "int", SAME_AS_NAME, ()),
    ("table_open_cache", "int", SAME_AS_NAME, ()),
    ("ft_min_word_len", "int", SAME_AS_NAME, ()),
    ("ft_max_word_len", "int", SAME_AS_NAME, ()),
    ("performance_schema_events_waits_history_size", "int",
     "waits_history_size", ()),
    ("innodb_thread_sleep_delay", "int", SAME_AS_NAME,
     (truth_semantic("innodb_thread_sleep_delay", "TIME"),)),
    ("innodb_thread_concurrency", "int", SAME_AS_NAME, ()),
    ("thread_cache_size", "int", SAME_AS_NAME, ()),
    ("slow_query_log", "int", SAME_AS_NAME, ()),
]

_STRS = [
    ("datadir", SAME_AS_NAME,
     (truth_semantic("datadir", "DIRECTORY"),)),
    ("ft_stopword_file", SAME_AS_NAME,
     (truth_semantic("ft_stopword_file", "FILE"),)),
    ("socket", "socket_path", ()),
    ("pid_file", SAME_AS_NAME,
     (truth_semantic("pid_file", "FILE"),)),
    ("log_error", SAME_AS_NAME, ()),
    ("slow_query_log_file", SAME_AS_NAME, ()),
]

# Enum directives validated by strcmp ladders (innodb_file_format_check
# is the single case-sensitive one, Figure 6a); their value sets are
# range truth.
_ENUMS = [
    "innodb_file_format_check",
    "binlog_format",
    "innodb_flush_method",
]

SPEC = SystemSpec(
    name="mysql",
    display_name="MySQL",
    description="Miniature mysqld with the paper's MySQL traits",
    sources={"mysqld.c": MYSQLD_MAIN},
    annotations=ANNOTATIONS,
    dialect=KeyValueDialect("="),
    config_path="/etc/my.cnf",
    default_config=DEFAULT_CONFIG,
    params=[
        ParamSpec(
            name,
            decode=decode,
            var=var,
            manual=MANUAL.get(name),
            truth=(truth_basic(name, "int"), truth_range(name)) + extra,
        )
        for name, decode, var, extra in _INTS
    ]
    + [
        ParamSpec(
            name,
            decode="string",
            var=var,
            manual=MANUAL.get(name),
            truth=(truth_basic(name, "string"),) + extra,
        )
        for name, var, extra in _STRS
    ]
    + [
        ParamSpec(
            name,
            decode="string",
            var=SAME_AS_NAME,
            manual=MANUAL.get(name),
            truth=(truth_basic(name, "string"), truth_range(name)),
        )
        for name in _ENUMS
    ],
    tests=_tests(),
    extra_truth=[
        truth_value_rel("ft_min_word_len", "ft_max_word_len"),
        truth_ctrl_dep(
            "innodb_thread_sleep_delay", "innodb_thread_concurrency"
        ),
    ],
    os_dirs=[OsDir("/data/mysql")],
)


@register("mysql")
def build() -> SubjectSystem:
    return SPEC.build()
