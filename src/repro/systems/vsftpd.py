"""VSFTP-mini: miniature vsftpd.

Paper traits reproduced:

* structure-based mapping (parseconf.c-style bool/int/str tables);
* the highest crash count of the open-source systems (Table 5a);
* the most control dependencies (Table 11: 68) and the dominant
  silent-ignorance column, including Figure 7(e):
  ``virtual_use_local_privs`` has no effect under
  ``one_process_mode=yes``;
* the listen/listen_ipv6 false dependency filtered by MAY-belief
  (§2.2.4);
* ``atoi`` everywhere (Table 8: 20 parameters behind unsafe APIs).
"""

from __future__ import annotations

from repro.core.accuracy import (
    truth_basic,
    truth_ctrl_dep,
    truth_range,
    truth_semantic,
)
from repro.inject.ar import KeyValueDialect
from repro.systems.base import FunctionalTest, SubjectSystem
from repro.systems.registry import register
from repro.systems.spec import SAME_AS_NAME, ParamSpec, SystemSpec

VSFTPD_MAIN = r"""
// vsftpd-mini
int listen_ipv4 = 1;
int listen_ipv6 = 0;
int listen_port = 21;
int max_clients = 0;
int max_per_ip = 0;
int anonymous_enable = 1;
int anon_upload_enable = 0;
int anon_mkdir_write_enable = 0;
int anon_max_rate = 0;
int local_enable = 0;
int write_enable = 0;
int chroot_local_user = 0;
int virtual_use_local_privs = 0;
int one_process_mode = 0;
int ssl_enable = 0;
int ssl_tlsv1 = 1;
int require_ssl_reuse = 1;
int idle_session_timeout = 300;
int data_connection_timeout = 300;
int accept_timeout = 60;
int connect_timeout = 60;
int trans_chunk_size = 8192;
int delay_failed_login = 1;
char *ftp_username = "ftp";
char *banner_file = "";
char *local_root = "";

int per_ip_table[64];

struct conf_bool { char *name; int *var; };
struct conf_int { char *name; int *var; };
struct conf_str { char *name; char **var; };

struct conf_bool bool_table[] = {
    { "listen", &listen_ipv4 },
    { "listen_ipv6", &listen_ipv6 },
    { "anonymous_enable", &anonymous_enable },
    { "anon_upload_enable", &anon_upload_enable },
    { "anon_mkdir_write_enable", &anon_mkdir_write_enable },
    { "local_enable", &local_enable },
    { "write_enable", &write_enable },
    { "chroot_local_user", &chroot_local_user },
    { "virtual_use_local_privs", &virtual_use_local_privs },
    { "one_process_mode", &one_process_mode },
    { "ssl_enable", &ssl_enable },
    { "ssl_tlsv1", &ssl_tlsv1 },
    { "require_ssl_reuse", &require_ssl_reuse },
    { "delay_failed_login", &delay_failed_login },
};

struct conf_int int_table[] = {
    { "listen_port", &listen_port },
    { "max_clients", &max_clients },
    { "max_per_ip", &max_per_ip },
    { "anon_max_rate", &anon_max_rate },
    { "idle_session_timeout", &idle_session_timeout },
    { "data_connection_timeout", &data_connection_timeout },
    { "accept_timeout", &accept_timeout },
    { "connect_timeout", &connect_timeout },
    { "trans_chunk_size", &trans_chunk_size },
};

struct conf_str str_table[] = {
    { "ftp_username", &ftp_username },
    { "banner_file", &banner_file },
    { "local_root", &local_root },
};

int parse_bool_setting(char *value) {
    // vsftpd accepts YES/NO case-insensitively (and 1/0).
    if (strcasecmp(value, "yes") == 0) { return 1; }
    if (strcasecmp(value, "true") == 0) { return 1; }
    if (strcmp(value, "1") == 0) { return 1; }
    if (strcasecmp(value, "no") == 0) { return 0; }
    if (strcasecmp(value, "false") == 0) { return 0; }
    if (strcmp(value, "0") == 0) { return 0; }
    fprintf(stderr, "500 OOPS: bad bool value in config file: %s\n", value);
    exit(1);
    return 0;
}

int apply_bool_setting(char *key, char *value) {
    int i;
    for (i = 0; i < 14; i++) {
        if (strcasecmp(key, bool_table[i].name) == 0) {
            *bool_table[i].var = parse_bool_setting(value);
            return 1;
        }
    }
    return 0;
}

int apply_int_setting(char *key, char *value) {
    int i;
    for (i = 0; i < 9; i++) {
        if (strcasecmp(key, int_table[i].name) == 0) {
            // atoi: garbage parses as 0, overflow wraps (unsafe API).
            *int_table[i].var = atoi(value);
            return 1;
        }
    }
    return 0;
}

int apply_str_setting(char *key, char *value) {
    int i;
    for (i = 0; i < 3; i++) {
        if (strcasecmp(key, str_table[i].name) == 0) {
            *str_table[i].var = value;
            return 1;
        }
    }
    return 0;
}

int apply_setting(char *key, char *value) {
    if (apply_bool_setting(key, value)) { return 0; }
    if (apply_int_setting(key, value)) { return 0; }
    if (apply_str_setting(key, value)) { return 0; }
    fprintf(stderr, "500 OOPS: unrecognised variable in config file: %s\n", key);
    exit(1);
    return 0;
}

int read_config(char *path) {
    void *fp = fopen(path, "r");
    if (fp == NULL) {
        fprintf(stderr, "500 OOPS: cannot open config file: %s\n", path);
        exit(1);
    }
    char *line = fgets(fp);
    while (line != NULL) {
        char *trimmed = str_trim(line);
        if (strlen(trimmed) > 0 && trimmed[0] != '#') {
            char *eq = strchr(trimmed, '=');
            if (eq != NULL) {
                int pos = strlen(trimmed) - strlen(eq);
                char *key = str_trim(str_substr(trimmed, 0, pos));
                char *value = str_trim(eq + 1);
                apply_setting(key, value);
            }
        }
        line = fgets(fp);
    }
    fclose(fp);
    return 0;
}

int init_network() {
    int fd;
    if (listen_ipv4 != 0) {
        fd = socket(2, 1, 0);
        if (bind(fd, listen_port) != 0) {
            return 1;  // silent: no message names the port
        }
        listen(fd, 32);
    }
    if (listen_ipv6 != 0) {
        fd = socket(10, 1, 0);
        if (bind(fd, listen_port) != 0) {
            return 1;
        }
        listen(fd, 32);
    }
    return 0;
}

int sanitize_limits() {
    // Undocumented clamps (Table 8's undocumented data ranges).
    if (max_clients < 0) {
        max_clients = 0;
    }
    if (max_per_ip < 0) {
        max_per_ip = 0;
    }
    return 0;
}

int init_session_tables() {
    // Hard-coded 64-entry per-IP table; max_per_ip beyond it corrupts
    // memory with no check (crash under extreme values).
    int i;
    for (i = 0; i < max_per_ip; i++) {
        per_ip_table[i] = 0;
    }
    return 0;
}

int check_users() {
    if (getpwnam(ftp_username) == NULL) {
        fprintf(stderr, "500 OOPS: cannot locate user specified in "
                "ftp_username: %s\n", ftp_username);
        exit(1);
    }
    if (strlen(banner_file) > 0) {
        void *fp = fopen(banner_file, "r");
        if (fp == NULL) {
            return 1;  // silent early termination
        }
        fclose(fp);
    }
    return 0;
}

int session_timers() {
    int idle = idle_session_timeout;
    if (idle > 2) { idle = 2; }
    sleep(idle);
    int dconn = data_connection_timeout;
    if (dconn > 2) { dconn = 2; }
    sleep(dconn);
    int conn = connect_timeout;
    if (conn > 2) { conn = 2; }
    sleep(conn);
    char *chunk_buf = malloc(trans_chunk_size);
    return 0;
}

int wait_for_connection() {
    // accept_timeout bounds the accept() wait; an absurd value makes
    // startup appear hung (uncapped on purpose).
    if (accept_timeout > 0) {
        sleep(accept_timeout / 20);
    }
    return 0;
}

int transfer_delay(int bytes) {
    // Chunk accounting happens for every transfer: a zero chunk size
    // divides by zero (SIGFPE) with no message.
    int chunks = bytes / trans_chunk_size;
    if (anon_max_rate > 0) {
        return chunks;
    }
    return 0;
}

int handle_login(char *user) {
    if (strcmp(user, "anonymous") == 0) {
        if (anonymous_enable == 0) {
            send_response("530 Anonymous access denied");
            return 1;
        }
        send_response("230 Anonymous login ok");
        return 0;
    }
    if (local_enable == 0) {
        send_response("530 Local logins disabled");
        return 1;
    }
    if (one_process_mode == 0) {
        // Figure 7(e): virtual_use_local_privs is consulted only
        // outside one_process_mode; otherwise silently ignored.
        if (virtual_use_local_privs != 0) {
            send_response("230 Local login ok (virtual privs)");
            return 0;
        }
    }
    if (chroot_local_user != 0) {
        if (strlen(local_root) > 0) {
            if (!is_directory(local_root)) {
                send_response("530 Login incorrect");
                return 1;
            }
        }
    }
    send_response("230 Local login ok");
    return 0;
}

int handle_store(char *path) {
    if (write_enable == 0) {
        send_response("550 Permission denied");
        return 1;
    }
    if (anon_upload_enable == 0) {
        send_response("550 Anonymous uploads disabled");
        return 1;
    }
    transfer_delay(65536);
    send_response(sprintf("226 Stored %s", path));
    return 0;
}

int handle_retrieve(char *path) {
    transfer_delay(65536);
    send_response(sprintf("226 Sent %s", path));
    return 0;
}

int handle_ssl_probe() {
    if (ssl_enable != 0) {
        if (ssl_tlsv1 != 0) {
            send_response("234 TLSv1 ok");
            return 0;
        }
        if (require_ssl_reuse != 0) {
            send_response("234 TLS session reuse required");
            return 0;
        }
        send_response("234 TLS ok");
        return 0;
    }
    send_response("530 TLS not enabled");
    return 0;
}

int serve() {
    char *req = recv_request();
    while (req != NULL) {
        if (strncmp(req, "USER ", 5) == 0) {
            handle_login(req + 5);
        } else if (strncmp(req, "STOR ", 5) == 0) {
            handle_store(req + 5);
        } else if (strncmp(req, "RETR ", 5) == 0) {
            handle_retrieve(req + 5);
        } else if (strcmp(req, "AUTH TLS") == 0) {
            handle_ssl_probe();
        } else if (strcmp(req, "NOOP") == 0) {
            send_response("200 NOOP ok");
        } else {
            send_response("500 Unknown command");
        }
        req = recv_request();
    }
    return 0;
}

int main(int argc, char **argv) {
    if (argc < 2) {
        fprintf(stderr, "usage: vsftpd <config>\n");
        return 2;
    }
    read_config(argv[1]);
    sanitize_limits();
    if (init_network() != 0) {
        return 1;
    }
    init_session_tables();
    if (check_users() != 0) {
        return 1;
    }
    session_timers();
    wait_for_connection();
    serve();
    return 0;
}
"""

ANNOTATIONS = """
{ @STRUCT = bool_table
  @PAR = [conf_bool, 1]
  @VAR = [conf_bool, 2] }
{ @STRUCT = int_table
  @PAR = [conf_int, 1]
  @VAR = [conf_int, 2] }
{ @STRUCT = str_table
  @PAR = [conf_str, 1]
  @VAR = [conf_str, 2] }
"""

DEFAULT_CONFIG = """\
# vsftpd-mini configuration
listen=YES
listen_ipv6=NO
listen_port=21
max_clients=0
max_per_ip=4
anonymous_enable=YES
anon_upload_enable=NO
anon_mkdir_write_enable=NO
anon_max_rate=0
local_enable=YES
write_enable=NO
chroot_local_user=NO
virtual_use_local_privs=NO
one_process_mode=NO
ssl_enable=NO
ssl_tlsv1=YES
require_ssl_reuse=YES
idle_session_timeout=300
data_connection_timeout=300
accept_timeout=60
connect_timeout=60
trans_chunk_size=8192
delay_failed_login=1
ftp_username=ftp
banner_file=
local_root=
"""

MANUAL = {
    "listen": "listen YES|NO: run in standalone IPv4 mode.",
    "listen_ipv6": "listen_ipv6 YES|NO: run in standalone IPv6 mode.",
    "listen_port": "listen_port <port>: the listening port.",
    "max_clients": "max_clients <n>: maximum concurrent clients.",
    "max_per_ip": "max_per_ip <n>: maximum sessions per source address.",
    "anonymous_enable": "anonymous_enable YES|NO.",
    "anon_upload_enable": (
        "anon_upload_enable YES|NO. Requires write_enable=YES."
    ),
    "local_enable": "local_enable YES|NO.",
    "write_enable": "write_enable YES|NO.",
    "ssl_enable": "ssl_enable YES|NO.",
    "ssl_tlsv1": "ssl_tlsv1 YES|NO. Only relevant with ssl_enable.",
    "idle_session_timeout": "idle_session_timeout <seconds>.",
    "data_connection_timeout": "data_connection_timeout <seconds>.",
    "accept_timeout": "accept_timeout <seconds>.",
    "connect_timeout": "connect_timeout <seconds>.",
    "ftp_username": "ftp_username <user>: the anonymous-FTP user.",
    "banner_file": "banner_file <path>: greeting text file.",
    "local_root": "local_root <path>: chroot directory for local users.",
    # one_process_mode, virtual_use_local_privs, chroot_local_user,
    # trans_chunk_size, anon_max_rate, delay_failed_login,
    # anon_mkdir_write_enable, require_ssl_reuse are undocumented in
    # the mini manual - including their control dependencies
    # (Table 8's 47 undocumented control dependencies for VSFTP).
}


def _tests() -> list[FunctionalTest]:
    return [
        FunctionalTest(
            name="noop",
            requests=["NOOP"],
            oracle=lambda r: r == ["200 NOOP ok"],
            duration=0.3,
        ),
        FunctionalTest(
            name="anon_login",
            requests=["USER anonymous"],
            oracle=lambda r: r == ["230 Anonymous login ok"],
            duration=1.0,
        ),
        FunctionalTest(
            name="local_login",
            requests=["USER alice"],
            oracle=lambda r: len(r) == 1 and r[0].startswith("230"),
            duration=1.5,
        ),
        FunctionalTest(
            name="retrieve",
            requests=["USER anonymous", "RETR welcome.msg"],
            oracle=lambda r: len(r) == 2 and r[1] == "226 Sent welcome.msg",
            duration=2.0,
        ),
    ]


def _bool_param(name: str) -> ParamSpec:
    """Bool-table parameter: YES/NO surface, int-typed store, mapped
    to the same-named variable (``listen`` aliases ``listen_ipv4``)."""
    return ParamSpec(
        name,
        decode="bool",
        var="listen_ipv4" if name == "listen" else SAME_AS_NAME,
        manual=MANUAL.get(name),
        truth=(truth_basic(name, "int"),),
    )


_BOOLS = [
    "listen",
    "listen_ipv6",
    "anonymous_enable",
    "anon_upload_enable",
    "anon_mkdir_write_enable",
    "local_enable",
    "write_enable",
    "chroot_local_user",
    "virtual_use_local_privs",
    "one_process_mode",
    "ssl_enable",
    "ssl_tlsv1",
    "require_ssl_reuse",
    "delay_failed_login",
]

# Int-table parameters and their extra truth beyond the basic type.
_INTS: list[tuple[str, tuple]] = [
    ("listen_port", (truth_semantic("listen_port", "PORT"),)),
    ("max_clients", (truth_range("max_clients"),)),
    ("max_per_ip", (truth_range("max_per_ip"),)),
    ("anon_max_rate", ()),
    ("idle_session_timeout", (truth_semantic("idle_session_timeout", "TIME"),)),
    (
        "data_connection_timeout",
        (truth_semantic("data_connection_timeout", "TIME"),),
    ),
    ("accept_timeout", (truth_semantic("accept_timeout", "TIME"),)),
    ("connect_timeout", (truth_semantic("connect_timeout", "TIME"),)),
    ("trans_chunk_size", (truth_semantic("trans_chunk_size", "SIZE"),)),
]

_STRS: list[tuple[str, str]] = [
    ("ftp_username", "USER"),
    ("banner_file", "FILE"),
    ("local_root", "DIRECTORY"),
]

SPEC = SystemSpec(
    name="vsftpd",
    display_name="VSFTP",
    description="Miniature vsftpd with the paper's VSFTP traits",
    sources={"vsftpd.c": VSFTPD_MAIN},
    annotations=ANNOTATIONS,
    dialect=KeyValueDialect("="),
    config_path="/etc/vsftpd.conf",
    default_config=DEFAULT_CONFIG,
    params=[_bool_param(name) for name in _BOOLS]
    + [
        ParamSpec(
            name,
            decode="int",
            manual=MANUAL.get(name),
            truth=(truth_basic(name, "int"),) + extra,
        )
        for name, extra in _INTS
    ]
    + [
        ParamSpec(
            name,
            decode="string",
            manual=MANUAL.get(name),
            truth=(truth_basic(name, "string"), truth_semantic(name, sem)),
        )
        for name, sem in _STRS
    ],
    tests=_tests(),
    extra_truth=[
        truth_ctrl_dep("ssl_tlsv1", "ssl_enable"),
        truth_ctrl_dep("require_ssl_reuse", "ssl_tlsv1"),
        truth_ctrl_dep("chroot_local_user", "local_enable"),
        truth_ctrl_dep("require_ssl_reuse", "ssl_enable"),
        truth_ctrl_dep("virtual_use_local_privs", "one_process_mode"),
        truth_ctrl_dep("virtual_use_local_privs", "local_enable"),
        truth_ctrl_dep("local_root", "chroot_local_user"),
        truth_ctrl_dep("anon_upload_enable", "write_enable"),
        truth_ctrl_dep("trans_chunk_size", "anon_max_rate"),
    ],
)


@register("vsftpd")
def build() -> SubjectSystem:
    return SPEC.build()
