"""The 18-project mapping-convention survey (Table 1).

Each entry carries a minimal MiniC snippet exercising the project's
real parameter-to-variable mapping convention, plus the Figure 4-style
annotation a developer would write.  The classifier derives the
convention from the annotations, reproducing Table 1's finding that
every surveyed project uses structure, comparison, container, or a
combination (OpenLDAP's hybrid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.annotations import parse_annotations
from repro.core.mapping import extract_mappings
from repro.ir import build_ir
from repro.lang.program import Program


@dataclass(frozen=True)
class SurveyEntry:
    project: str
    description: str
    expected_convention: str  # structure | comparison | container | hybrid
    snippet: str
    annotations: str


def classify(entry: SurveyEntry) -> str:
    """Convention derived from the annotation kinds, 'hybrid' when the
    project mixes interfaces."""
    annotations, _ = parse_annotations(entry.annotations)
    kinds = {a.convention for a in annotations}
    if len(kinds) > 1:
        return "hybrid"
    return next(iter(kinds))


def validate(entry: SurveyEntry) -> bool:
    """The snippet compiles and the toolkits extract at least one
    parameter mapping from it."""
    program = Program.from_sources({f"{entry.project}.c": entry.snippet})
    module = build_ir(program)
    annotations, _ = parse_annotations(entry.annotations)
    result = extract_mappings(module, annotations)
    return bool(result.seeds or result.getters)


_STRUCT_DIRECT = """
struct config_int {{ char *name; int *var; int def; }};
int {var} = {default};
struct config_int {table}[] = {{
    {{ "{param}", &{var}, {default} }},
}};
"""

_STRUCT_FUNC = """
struct command {{ char *name; void *handler; }};
char *{var} = "";
int {handler}(char *arg) {{
    {var} = arg;
    return 0;
}}
struct command {table}[] = {{
    {{ "{param}", {handler} }},
}};
"""

_COMPARISON = """
int {var} = {default};
int {parser}(char *key, char *value) {{
    if (strcasecmp(key, "{param}") == 0) {{
        {var} = atoi(value);
        return 0;
    }}
    return 1;
}}
"""

_CONTAINER = """
int {getter}(char *key);
int setup() {{
    int value = {getter}("{param}");
    sleep(value);
    return 0;
}}
"""

_ANN_STRUCT_DIRECT = """
{{ @STRUCT = {table}
  @PAR = [config_int, 1]
  @VAR = [config_int, 2] }}
"""

_ANN_STRUCT_FUNC = """
{{ @STRUCT = {table}
  @PAR = [command, 1]
  @VAR = ([command, 2], $arg) }}
"""

_ANN_COMPARISON = """
{{ @PARSER = {parser}
  @PAR = $key
  @VAR = $value }}
"""

_ANN_CONTAINER = """
{{ @GETTER = {getter}
  @PAR = 1
  @VAR = $RET }}
"""


def _struct_direct(project, desc, table, param, var, default=10):
    return SurveyEntry(
        project,
        desc,
        "structure",
        _STRUCT_DIRECT.format(table=table, param=param, var=var, default=default),
        _ANN_STRUCT_DIRECT.format(table=table),
    )


def _struct_func(project, desc, table, param, var, handler):
    return SurveyEntry(
        project,
        desc,
        "structure",
        _STRUCT_FUNC.format(table=table, param=param, var=var, handler=handler),
        _ANN_STRUCT_FUNC.format(table=table),
    )


def _comparison(project, desc, parser, param, var, default=10):
    return SurveyEntry(
        project,
        desc,
        "comparison",
        _COMPARISON.format(parser=parser, param=param, var=var, default=default),
        _ANN_COMPARISON.format(parser=parser),
    )


def _container(project, desc, getter, param):
    return SurveyEntry(
        project,
        desc,
        "container",
        _CONTAINER.format(getter=getter, param=param),
        _ANN_CONTAINER.format(getter=getter),
    )


def survey_entries() -> list[SurveyEntry]:
    """The 18 projects of Table 1, in the paper's order."""
    openldap_snippet = (
        _STRUCT_FUNC.format(
            table="config_table",
            param="index_intlen",
            var="index_intlen_str",
            handler="cfg_generic",
        )
        + _COMPARISON.format(
            parser="handle_directive",
            param="sockbuf_max",
            var="sockbuf_max_incoming",
            default=262144,
        )
    )
    openldap_ann = _ANN_STRUCT_FUNC.format(table="config_table") + _ANN_COMPARISON.format(
        parser="handle_directive"
    )
    return [
        _struct_direct(
            "Storage-A", "Storage", "storage_options", "log.filesize", "log_filesize"
        ),
        _struct_direct("MySQL", "DB", "sys_vars", "max_connections", "max_conn"),
        _struct_direct(
            "PostgreSQL", "DB", "ConfigureNamesInt", "deadlock_timeout",
            "DeadlockTimeout", 1000,
        ),
        _struct_func(
            "Apache httpd", "Web", "core_cmds", "DocumentRoot", "document_root",
            "set_document_root",
        ),
        _struct_direct("lighttpd", "Web", "config_values", "server.port", "srv_port"),
        _struct_direct("Nginx", "Web", "ngx_core_commands", "worker_processes", "workers"),
        _struct_direct("OpenSSH", "SSH", "keywords", "MaxAuthTries", "max_auth_tries"),
        _struct_direct("Postfix", "Email", "var_table", "queue_run_delay", "run_delay"),
        _struct_direct("VSFTP", "FTP", "parseconf_int_array", "listen_port", "listen_port"),
        _comparison("Squid", "Proxy", "parse_line", "icp_port", "icp_port", 3130),
        _comparison("Redis", "DB", "loadServerConfig", "timeout", "maxidletime", 0),
        _comparison("ntpd", "NTP", "getconfig", "tinker_panic", "panic_threshold"),
        _comparison("CVS", "SCM", "parse_config", "TopLevelAdmin", "top_level_admin"),
        _container("Hypertable", "DB", "get_i32", "Connection.Retry.Interval"),
        _container("MongoDB", "DB", "getParameter", "journalCommitInterval"),
        _container("AOLServer", "Web", "Ns_ConfigGetInt", "maxthreads"),
        _container("Subversion", "SCM", "svn_config_get_int", "http-max-connections"),
        SurveyEntry("OpenLDAP", "LDAP", "hybrid", openldap_snippet, openldap_ann),
    ]


def convention_counts() -> dict[str, int]:
    counts: dict[str, int] = {}
    for entry in survey_entries():
        kind = classify(entry)
        counts[kind] = counts.get(kind, 0) + 1
    return counts
