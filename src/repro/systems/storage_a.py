"""Storage-A-mini: the anonymized commercial storage OS.

Paper traits reproduced:

* structure-based mapping with min/max columns, uniformly enforced -
  but the adjustment is silent (74 silent violations, zero crashes and
  zero early terminations in Table 5a: the defensive coding of §5.2);
* Figure 1: the iSCSI initiator name only matches registered
  initiators case-sensitively; an uppercase letter silently breaks
  share lookup (75 rounds of support communication in the real case);
* Figure 3(a)/5(a): ``log.filesize`` is a 32-bit integer; 9000000000
  silently wraps, "9G" parses as 9 bytes;
* the unit zoo of Table 7 (B/KB/MB/GB sizes, us/ms/s/min/h times)
  mitigated by unit-suffix naming (§5.2: "cleanup.msec",
  "takeover.sec");
* feature-gate control dependencies whose violations are silently
  ignored (83 silent ignorances - the largest column);
* proprietary library APIs imported into the knowledge base
  (wafl_reserve, ontap_schedule_scrub, netapp_register_port).
"""

from __future__ import annotations

from repro.core.accuracy import (
    truth_basic,
    truth_ctrl_dep,
    truth_range,
    truth_semantic,
)
from repro.inject.ar import DirectiveDialect
from repro.knowledge import ApiSpec, ArgFact, SemanticType, Unit
from repro.systems.base import (
    FunctionalTest,
    SubjectSystem,
    decode_bool,
    decode_int,
    decode_size,
    decode_string,
)
from repro.systems.registry import register

# -- proprietary API runtime emulation ------------------------------------
# The knowledge base learns these via `custom_knowledge` (§2.2.2:
# "we also imported its proprietary library APIs"); the runtime needs
# matching implementations.

from repro.runtime.builtins import register as _register_builtin


@_register_builtin("wafl_reserve")
def _wafl_reserve(interp, args, loc):
    size = args[0] if args and isinstance(args[0], int) else 0
    if size <= 0 or size > (1 << 40):
        return -1
    return 0


@_register_builtin("ontap_schedule_scrub")
def _ontap_schedule_scrub(interp, args, loc):
    hours = args[0] if args and isinstance(args[0], int) else 0
    return 0 if hours > 0 else -1


@_register_builtin("netapp_register_port")
def _netapp_register_port(interp, args, loc):
    port = args[0] if args and isinstance(args[0], int) else -1
    rc = interp.os.try_bind(port)
    if rc < 0:
        interp.errno = -rc
        return -1
    return 0


STORAGE_MAIN = r"""
// storage-a-mini (anonymized commercial storage OS)
int log_filesize = 1048576;
int log_rotate_count = 8;
int nvram_buffer = 65536;
int raid_stripe_kb = 64;
int wafl_cache_mb = 512;
int snapshot_reserve_gb = 1;
int iscsi_max_connections = 64;
int nfs_xfer_size = 32768;
int autosupport_poll_usec = 500000;
int cleanup_msec = 200;
int takeover_sec = 30;
int heartbeat_sec = 5;
int dedupe_schedule_min = 60;
int scrub_interval_hour = 24;
int iscsi_enable = 0;
int nfs_enable = 1;
int cifs_enable = 0;
int autosupport_enable = 1;
int cluster_enable = 0;
int cifs_share_hidden = 0;
char *iscsi_initiator_name = "iqn.2013-01.com.example:host1";
char *autosupport_mailhost = "localhost";
char *log_dir = "/var/log";
char *audit_logfile = "/var/log/audit.log";
char *admin_mode = "full";

char *log_buffer;
char *nvram_pool;
int iscsi_sessions = 0;

struct opt_int { char *name; int *var; int def; int min; int max; };
struct opt_str { char *name; char **var; };
struct opt_bool { char *name; int *var; };

struct opt_int int_options[] = {
    { "log.filesize", &log_filesize, 1048576, 4096, 1073741824 },
    { "log.rotate.count", &log_rotate_count, 8, 1, 100 },
    { "nvram.buffer", &nvram_buffer, 65536, 4096, 16777216 },
    { "raid.stripe.kb", &raid_stripe_kb, 64, 4, 1024 },
    { "wafl.cache.mb", &wafl_cache_mb, 512, 64, 16384 },
    { "snapshot.reserve.gb", &snapshot_reserve_gb, 1, 0, 1 },
    { "iscsi.max.connections", &iscsi_max_connections, 64, 1, 1024 },
    { "nfs.tcp.xfersize", &nfs_xfer_size, 32768, 8192, 1048576 },
    { "autosupport.poll.usec", &autosupport_poll_usec, 500000, 1000, 10000000 },
    { "cleanup.msec", &cleanup_msec, 200, 10, 60000 },
    { "takeover.sec", &takeover_sec, 30, 1, 600 },
    { "heartbeat.sec", &heartbeat_sec, 5, 1, 60 },
    { "dedupe.schedule.min", &dedupe_schedule_min, 60, 1, 1440 },
    { "scrub.interval.hour", &scrub_interval_hour, 24, 1, 168 },
};

struct opt_str str_options[] = {
    { "iscsi.initiator.name", &iscsi_initiator_name },
    { "autosupport.mailhost", &autosupport_mailhost },
    { "log.dir", &log_dir },
    { "audit.logfile", &audit_logfile },
    { "security.admin.mode", &admin_mode },
};

struct opt_bool bool_options[] = {
    { "iscsi.enable", &iscsi_enable },
    { "nfs.enable", &nfs_enable },
    { "cifs.enable", &cifs_enable },
    { "autosupport.enable", &autosupport_enable },
    { "cluster.enable", &cluster_enable },
    { "cifs.share.hidden", &cifs_share_hidden },
};

int parse_onoff(char *key, char *value) {
    if (strcasecmp(value, "on") == 0) { return 1; }
    if (strcasecmp(value, "off") == 0) { return 0; }
    // Uniform explicit rejection, naming the option (good practice).
    fprintf(stderr, "option %s: expected on|off, got '%s'\n", key, value);
    exit(2);
    return 0;
}

int apply_int_option(char *key, char *value) {
    int i;
    for (i = 0; i < 14; i++) {
        if (strcasecmp(key, int_options[i].name) == 0) {
            // atoi keeps the legacy behaviour: "9G" reads as 9.
            int v = atoi(value);
            if (v < int_options[i].min) { v = int_options[i].min; }
            if (v > int_options[i].max) { v = int_options[i].max; }
            *int_options[i].var = v;  // silent adjustment
            return 1;
        }
    }
    return 0;
}

int apply_str_option(char *key, char *value) {
    int i;
    for (i = 0; i < 5; i++) {
        if (strcasecmp(key, str_options[i].name) == 0) {
            *str_options[i].var = value;
            return 1;
        }
    }
    return 0;
}

int apply_bool_option(char *key, char *value) {
    int i;
    for (i = 0; i < 6; i++) {
        if (strcasecmp(key, bool_options[i].name) == 0) {
            *bool_options[i].var = parse_onoff(key, value);
            return 1;
        }
    }
    return 0;
}

int apply_option(char *key, char *value) {
    if (apply_int_option(key, value)) { return 0; }
    if (apply_str_option(key, value)) { return 0; }
    if (apply_bool_option(key, value)) { return 0; }
    return 0;  // unknown options ignored (forward compatibility)
}

int read_config(char *path) {
    void *fp = fopen(path, "r");
    if (fp == NULL) {
        fprintf(stderr, "storage: cannot read options file %s\n", path);
        exit(2);
    }
    char *line = fgets(fp);
    while (line != NULL) {
        char *trimmed = str_trim(line);
        if (strlen(trimmed) > 0 && trimmed[0] != '#') {
            char *key = str_token(trimmed, 0);
            char *value = str_token(trimmed, 1);
            if (key != NULL && value != NULL) {
                apply_option(key, value);
            }
        }
        line = fgets(fp);
    }
    fclose(fp);
    return 0;
}

int validate_admin_mode() {
    if (strcasecmp(admin_mode, "full") != 0) {
        if (strcasecmp(admin_mode, "readonly") != 0) {
            if (strcasecmp(admin_mode, "none") != 0) {
                fprintf(stderr, "option security.admin.mode: invalid value "
                        "'%s', using 'full'\n", admin_mode);
                admin_mode = "full";
            }
        }
    }
    return 0;
}

int init_wafl() {
    // Everything allocation-related is defensively checked: Storage-A
    // has zero crash entries in Table 5a.
    log_buffer = malloc(log_filesize);
    if (log_buffer == NULL) {
        log_buffer = malloc(4096);
    }
    nvram_pool = malloc(nvram_buffer);
    if (nvram_pool == NULL) {
        nvram_pool = malloc(4096);
    }
    wafl_reserve(wafl_cache_mb * 1048576);
    wafl_reserve(snapshot_reserve_gb * 1073741824);
    wafl_reserve(raid_stripe_kb * 1024);
    ontap_schedule_scrub(scrub_interval_hour);
    return 0;
}

int init_protocols() {
    if (iscsi_enable != 0) {
        netapp_register_port(3260);
        if (iscsi_max_connections > 512) {
            syslog(5, "iscsi: large connection table");
        }
        iscsi_sessions = iscsi_max_connections;
        if (strlen(iscsi_initiator_name) == 0) {
            iscsi_sessions = 0;
        }
    }
    if (nfs_enable != 0) {
        netapp_register_port(2049);
        char *xfer_buf = malloc(nfs_xfer_size);
        if (xfer_buf == NULL) {
            nfs_xfer_size = 8192;
        }
    }
    if (cifs_enable != 0) {
        netapp_register_port(445);
        if (cifs_share_hidden != 0) {
            syslog(6, "cifs: administrative shares hidden");
        }
    }
    return 0;
}

int init_services() {
    if (autosupport_enable != 0) {
        if (gethostbyname(autosupport_mailhost) == NULL) {
            syslog(4, "autosupport: mailhost unreachable, queuing messages");
        }
        int poll = autosupport_poll_usec;
        if (poll > 1000000) { poll = 1000000; }
        usleep(poll);
    }
    if (cluster_enable != 0) {
        int hb = heartbeat_sec;
        if (hb > 2) { hb = 2; }
        sleep(hb);
        int take = takeover_sec;
        if (take > 2) { take = 2; }
        sleep(take);
    }
    int naptime = cleanup_msec;
    if (naptime > 500) { naptime = 500; }
    sleep_ms(naptime);
    int dedupe_window = dedupe_schedule_min * 60;
    int scrub_window = scrub_interval_hour * 3600;
    if (!is_directory(log_dir)) {
        fprintf(stderr, "option log.dir: '%s' is not a directory, "
                "logging to console\n", log_dir);
    }
    void *audit = fopen(audit_logfile, "w");
    if (audit == NULL) {
        fprintf(stderr, "option audit.logfile: cannot open '%s'\n",
                audit_logfile);
    } else {
        fwrite_str(audit, "audit start\n");
        fclose(audit);
    }
    return dedupe_window + scrub_window;
}

int handle_iscsi_connect(char *name) {
    if (iscsi_enable == 0) {
        send_response("iscsi: protocol not licensed/enabled");
        return 1;
    }
    // Figure 1: registered initiators are matched case-SENSITIVELY;
    // names must be all lowercase to ever match.
    if (strcmp(name, iscsi_initiator_name) == 0) {
        send_response("iscsi: session established");
        return 0;
    }
    send_response("iscsi: storage share not recognized");
    return 1;
}

int serve() {
    char *req = recv_request();
    while (req != NULL) {
        if (strncmp(req, "ISCSI CONNECT ", 14) == 0) {
            handle_iscsi_connect(req + 14);
        } else if (strncmp(req, "NFS MOUNT ", 10) == 0) {
            if (nfs_enable != 0) {
                send_response(sprintf("nfs: mounted %s xfer=%d",
                                      str_token(req, 2), nfs_xfer_size));
            } else {
                send_response("nfs: protocol disabled");
            }
        } else if (strcmp(req, "STATUS") == 0) {
            send_response(sprintf("ok mode=%s cache=%dMB",
                                  admin_mode, wafl_cache_mb));
        } else {
            send_response("error: unknown command");
        }
        req = recv_request();
    }
    return 0;
}

int main(int argc, char **argv) {
    if (argc < 2) {
        fprintf(stderr, "usage: storage <options-file>\n");
        return 2;
    }
    read_config(argv[1]);
    validate_admin_mode();
    init_wafl();
    init_protocols();
    init_services();
    serve();
    return 0;
}
"""

ANNOTATIONS = """
{ @STRUCT = int_options
  @PAR = [opt_int, 1]
  @VAR = [opt_int, 2]
  @MIN = [opt_int, 4]
  @MAX = [opt_int, 5] }
{ @STRUCT = str_options
  @PAR = [opt_str, 1]
  @VAR = [opt_str, 2] }
{ @STRUCT = bool_options
  @PAR = [opt_bool, 1]
  @VAR = [opt_bool, 2] }
"""

DEFAULT_CONFIG = """\
# storage-a-mini options
log.filesize 1048576
log.rotate.count 8
nvram.buffer 65536
raid.stripe.kb 64
wafl.cache.mb 512
snapshot.reserve.gb 1
iscsi.max.connections 64
nfs.tcp.xfersize 32768
autosupport.poll.usec 500000
cleanup.msec 200
takeover.sec 30
heartbeat.sec 5
dedupe.schedule.min 60
scrub.interval.hour 24
iscsi.enable on
nfs.enable on
cifs.enable off
autosupport.enable on
cluster.enable off
cifs.share.hidden off
iscsi.initiator.name iqn.2013-01.com.example:host1
autosupport.mailhost localhost
log.dir /var/log
audit.logfile /var/log/audit.log
security.admin.mode full
"""

MANUAL = {
    "log.filesize": "log.filesize <bytes>: 4096..1073741824.",
    "log.rotate.count": "log.rotate.count: 1..100.",
    "nvram.buffer": "nvram.buffer <bytes>.",
    "raid.stripe.kb": "raid.stripe.kb <KB>: 4..1024.",
    "wafl.cache.mb": "wafl.cache.mb <MB>: 64..16384.",
    "snapshot.reserve.gb": "snapshot.reserve.gb <GB>: 0..1.",
    "iscsi.max.connections": "iscsi.max.connections: 1..1024.",
    "nfs.tcp.xfersize": "nfs.tcp.xfersize <bytes>: 8192..1048576.",
    "autosupport.poll.usec": "autosupport.poll.usec <microseconds>: 1000..10000000.",
    "cleanup.msec": "cleanup.msec <milliseconds>: 10..60000.",
    "takeover.sec": "takeover.sec <seconds>: 1..600.",
    "heartbeat.sec": "heartbeat.sec <seconds>: 1..60.",
    "dedupe.schedule.min": "dedupe.schedule.min <minutes>: 1..1440.",
    "scrub.interval.hour": "scrub.interval.hour <hours>.",
    "iscsi.enable": "iscsi.enable on|off.",
    "nfs.enable": "nfs.enable on|off.",
    "cifs.enable": "cifs.enable on|off.",
    "autosupport.enable": "autosupport.enable on|off.",
    "cluster.enable": "cluster.enable on|off.",
    "iscsi.initiator.name": (
        "iscsi.initiator.name <iqn>: must be all lowercase. "
        "See also the interoperability guide."
    ),
    "autosupport.mailhost": "autosupport.mailhost <host>.",
    "log.dir": "log.dir <directory>.",
    "audit.logfile": "audit.logfile <path>.",
    "security.admin.mode": "security.admin.mode full|readonly|none.",
    # cifs.share.hidden undocumented (and its cifs.enable dependency).
}


def _tests() -> list[FunctionalTest]:
    return [
        FunctionalTest(
            name="status",
            requests=["STATUS"],
            oracle=lambda r: len(r) == 1 and r[0].startswith("ok mode="),
            duration=0.5,
        ),
        FunctionalTest(
            name="iscsi_connect",
            requests=["ISCSI CONNECT iqn.2013-01.com.example:host1"],
            # A cleanly disabled protocol is correct behaviour; only a
            # rejected session on an enabled protocol is a failure.
            oracle=lambda r: r
            in (
                ["iscsi: session established"],
                ["iscsi: protocol not licensed/enabled"],
            ),
            duration=2.0,
        ),
        FunctionalTest(
            name="nfs_mount",
            requests=["NFS MOUNT /vol/data"],
            oracle=lambda r: len(r) == 1
            and (r[0].startswith("nfs: mounted") or r[0] == "nfs: protocol disabled"),
            duration=1.5,
        ),
    ]


def _custom_knowledge() -> list[ApiSpec]:
    return [
        ApiSpec("wafl_reserve", args=[ArgFact(0, SemanticType.SIZE, Unit.BYTES)]),
        ApiSpec(
            "ontap_schedule_scrub",
            args=[ArgFact(0, SemanticType.TIME, Unit.HOURS)],
        ),
        ApiSpec("netapp_register_port", args=[ArgFact(0, SemanticType.PORT)]),
    ]


def _ground_truth():
    ints = [
        "log.filesize",
        "log.rotate.count",
        "nvram.buffer",
        "raid.stripe.kb",
        "wafl.cache.mb",
        "snapshot.reserve.gb",
        "iscsi.max.connections",
        "nfs.tcp.xfersize",
        "autosupport.poll.usec",
        "cleanup.msec",
        "takeover.sec",
        "heartbeat.sec",
        "dedupe.schedule.min",
        "scrub.interval.hour",
    ]
    bools = [
        "iscsi.enable",
        "nfs.enable",
        "cifs.enable",
        "autosupport.enable",
        "cluster.enable",
        "cifs.share.hidden",
    ]
    strs = [
        "iscsi.initiator.name",
        "autosupport.mailhost",
        "log.dir",
        "audit.logfile",
        "security.admin.mode",
    ]
    truth = [truth_basic(p, "int") for p in ints + bools]
    truth += [truth_basic(p, "string") for p in strs]
    truth += [truth_range(p) for p in ints]
    truth += [truth_range(p) for p in bools]
    truth += [
        truth_range("security.admin.mode"),
        truth_range("iscsi.initiator.name"),
        truth_semantic("log.filesize", "SIZE"),
        truth_semantic("nvram.buffer", "SIZE"),
        truth_semantic("raid.stripe.kb", "SIZE"),
        truth_semantic("wafl.cache.mb", "SIZE"),
        truth_semantic("snapshot.reserve.gb", "SIZE"),
        truth_semantic("nfs.tcp.xfersize", "SIZE"),
        truth_semantic("autosupport.poll.usec", "TIME"),
        truth_semantic("cleanup.msec", "TIME"),
        truth_semantic("takeover.sec", "TIME"),
        truth_semantic("heartbeat.sec", "TIME"),
        truth_semantic("scrub.interval.hour", "TIME"),
        truth_semantic("autosupport.mailhost", "HOSTNAME"),
        truth_semantic("log.dir", "DIRECTORY"),
        truth_semantic("audit.logfile", "FILE"),
        truth_ctrl_dep("iscsi.max.connections", "iscsi.enable"),
        truth_ctrl_dep("iscsi.initiator.name", "iscsi.enable"),
        truth_ctrl_dep("nfs.tcp.xfersize", "nfs.enable"),
        truth_ctrl_dep("cifs.share.hidden", "cifs.enable"),
        truth_ctrl_dep("autosupport.mailhost", "autosupport.enable"),
        truth_ctrl_dep("autosupport.poll.usec", "autosupport.enable"),
        truth_ctrl_dep("heartbeat.sec", "cluster.enable"),
        truth_ctrl_dep("takeover.sec", "cluster.enable"),
    ]
    return truth


@register("storage_a")
def build() -> SubjectSystem:
    size_params = {
        "log.filesize",
        "nvram.buffer",
        "nfs.tcp.xfersize",
    }
    decoders = {}
    for p in (
        "log.filesize",
        "log.rotate.count",
        "nvram.buffer",
        "raid.stripe.kb",
        "wafl.cache.mb",
        "snapshot.reserve.gb",
        "iscsi.max.connections",
        "nfs.tcp.xfersize",
        "autosupport.poll.usec",
        "cleanup.msec",
        "takeover.sec",
        "heartbeat.sec",
        "dedupe.schedule.min",
        "scrub.interval.hour",
    ):
        decoders[p] = decode_size if p in size_params else decode_int
    for p in (
        "iscsi.enable",
        "nfs.enable",
        "cifs.enable",
        "autosupport.enable",
        "cluster.enable",
        "cifs.share.hidden",
    ):
        decoders[p] = decode_bool
    var_of = {
        "log.filesize": "log_filesize",
        "log.rotate.count": "log_rotate_count",
        "nvram.buffer": "nvram_buffer",
        "raid.stripe.kb": "raid_stripe_kb",
        "wafl.cache.mb": "wafl_cache_mb",
        "snapshot.reserve.gb": "snapshot_reserve_gb",
        "iscsi.max.connections": "iscsi_max_connections",
        "nfs.tcp.xfersize": "nfs_xfer_size",
        "autosupport.poll.usec": "autosupport_poll_usec",
        "cleanup.msec": "cleanup_msec",
        "takeover.sec": "takeover_sec",
        "heartbeat.sec": "heartbeat_sec",
        "dedupe.schedule.min": "dedupe_schedule_min",
        "scrub.interval.hour": "scrub_interval_hour",
        "iscsi.enable": "iscsi_enable",
        "nfs.enable": "nfs_enable",
        "cifs.enable": "cifs_enable",
        "autosupport.enable": "autosupport_enable",
        "cluster.enable": "cluster_enable",
        "cifs.share.hidden": "cifs_share_hidden",
        "iscsi.initiator.name": "iscsi_initiator_name",
        "autosupport.mailhost": "autosupport_mailhost",
        "log.dir": "log_dir",
        "audit.logfile": "audit_logfile",
        "security.admin.mode": "admin_mode",
    }
    return SubjectSystem(
        name="storage_a",
        display_name="Storage-A",
        description="Anonymized commercial storage OS miniature",
        sources={"storage.c": STORAGE_MAIN},
        annotations=ANNOTATIONS,
        dialect=DirectiveDialect(),
        config_path="/etc/storage/options.conf",
        default_config=DEFAULT_CONFIG,
        tests=_tests(),
        effective_locations={p: (v, ()) for p, v in var_of.items()},
        decoders=decoders,
        manual=MANUAL,
        ground_truth=_ground_truth(),
        custom_knowledge=_custom_knowledge(),
        proprietary=True,
        confidential_counts=True,
    )
