"""Subject systems: the seven evaluated programs, in MiniC.

Each package mirrors its real counterpart's configuration
architecture - mapping convention (Table 1), config-file dialect,
constraint mix and the concrete vulnerabilities the paper reports -
at miniature scale.  `repro.systems.corpus` additionally carries the
18-project mapping-convention survey snippets for Table 1.
"""

from repro.systems.base import (
    FunctionalTest,
    SubjectSystem,
    decode_bool,
    decode_int,
    decode_size,
    decode_string,
    decode_time_seconds,
)
from repro.systems.registry import (
    all_systems,
    get_system,
    is_registered,
    iter_systems,
    load_all,
    system_names,
)

__all__ = [
    "FunctionalTest",
    "SubjectSystem",
    "all_systems",
    "is_registered",
    "iter_systems",
    "load_all",
    "decode_bool",
    "decode_int",
    "decode_size",
    "decode_string",
    "decode_time_seconds",
    "get_system",
    "system_names",
]
