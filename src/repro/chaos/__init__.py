"""Deterministic fault injection for the reproduction's own stack.

The paper's injection pillar plants misconfigurations into subject
systems and watches how they react; ``repro.chaos`` points the same
idea back at the infrastructure.  A :class:`ChaosSchedule` is a pure,
seeded decision function: for a fault *kind* and a shard *key* it
answers "does this fault fire here?" by hashing ``seed|kind|key``
against the kind's rate.  Pure and picklable, so the same schedule
object crosses the process-executor boundary and both sides agree on
every decision — two runs with the same seed inject byte-identical
fault patterns, which is what lets the chaos tier assert that a
faulted-and-recovered run reports *bit-identically* to a fault-free
one.

Fault catalog (see docs/ROBUSTNESS.md):

* ``stall``   — the shard sleeps `stall_seconds` before running, long
  enough to trip the supervisor's watchdog deadline.
* ``error``   — the shard raises :class:`ChaosError` instead of
  running (a crashed task, a poisoned input).
* ``kill``    — inside a process-pool worker the worker SIGKILLs
  itself (the real `BrokenProcessPool` path); in thread/serial
  context, where a SIGKILL would take down the caller, it degrades to
  a raised :class:`ChaosError` tagged as a simulated kill.

Retry keys include the attempt number, so a shard that faults on its
first attempt is (by construction of the hash) independently diced on
its second — recovery paths get exercised without any mutable
schedule state.

Usage::

    from repro.chaos import ChaosSchedule

    schedule = ChaosSchedule(seed=7, error_rate=0.2)
    schedule.should("error", "mysql:512|a1")   # deterministic bool
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass

#: Denominator for the hash-threshold dice: 2**48 keeps the float
#: conversion exact and the decision stable across platforms.
_DICE = float(2**48)


class ChaosError(RuntimeError):
    """An injected fault (distinguishable from organic failures)."""


@dataclass(frozen=True)
class ChaosSchedule:
    """Seeded, stateless fault schedule.

    Rates are probabilities in [0, 1] evaluated independently per
    (kind, key) pair.  `stall_seconds` is how long a fired ``stall``
    sleeps — pick it longer than the supervisor's watchdog deadline
    to exercise the timeout path, shorter to exercise plain latency.
    """

    seed: int = 0
    stall_rate: float = 0.0
    error_rate: float = 0.0
    kill_rate: float = 0.0
    stall_seconds: float = 0.05

    def should(self, kind: str, key: str) -> bool:
        """Does fault `kind` fire at `key`?  Pure and deterministic."""
        rate = getattr(self, f"{kind}_rate")
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        material = f"{self.seed}|{kind}|{key}".encode("utf-8")
        roll = int.from_bytes(
            hashlib.sha256(material).digest()[:6], "big"
        )
        return roll / _DICE < rate

    def perturb(self, key: str, allow_kill: bool = False) -> None:
        """Apply whichever faults fire at `key`, most violent first.

        `allow_kill` is True only inside process-pool workers, where a
        SIGKILL hits a disposable process; elsewhere a fired kill
        degrades to a raised :class:`ChaosError` so the caller's
        process survives to supervise the recovery.
        """
        if self.should("kill", key):
            if allow_kill:
                os.kill(os.getpid(), signal.SIGKILL)
            raise ChaosError(f"chaos: simulated worker kill at {key}")
        if self.should("stall", key):
            time.sleep(self.stall_seconds)
        if self.should("error", key):
            raise ChaosError(f"chaos: injected shard error at {key}")


__all__ = ["ChaosError", "ChaosSchedule"]
