"""Dataflow engine: tracks configuration parameters through the IR.

Implements the paper's §2.2 analysis core: "SPEX ... tracks the
data-flow of each program variable corresponding to the configuration
parameter, and records any constraint that is discovered along the
data-flow path.  We implement SPEX's analysis to be inter-procedural,
context-sensitive, and field-sensitive."

The engine consumes *seeds* (produced by the mapping toolkits in
`repro.core.mapping`) and emits *events* - facts observed on tainted
values (casts, API-call arguments, branch comparisons, stores,
string-compare dispatches) - which the inference passes in
`repro.core` turn into constraints.
"""

from repro.analysis.seeds import GetterSpec, GlobalSeed, ParamSeed, Seed
from repro.analysis.engine import AnalysisResult, TaintEngine, TaintOptions
from repro.analysis.events import (
    BranchCondEvent,
    ScaleEvent,
    CallArgEvent,
    CallSiteRef,
    CastEvent,
    StoreEvent,
    StringCompareEvent,
    SwitchCaseEvent,
    UsageEvent,
)

__all__ = [
    "AnalysisResult",
    "BranchCondEvent",
    "CallArgEvent",
    "CallSiteRef",
    "CastEvent",
    "GetterSpec",
    "GlobalSeed",
    "ParamSeed",
    "ScaleEvent",
    "Seed",
    "StoreEvent",
    "StringCompareEvent",
    "SwitchCaseEvent",
    "TaintEngine",
    "TaintOptions",
    "UsageEvent",
]
