"""The taint/dataflow engine.

Design notes (mirroring paper §2.2 and §4.3):

* **Inter-procedural**: user-function calls are analysed with
  per-call-site argument labels and memoized summaries (return labels +
  writes through pointer parameters).
* **Context-sensitive**: summaries are keyed by the full argument-label
  assignment, and events carry the call chain so downstream passes can
  attribute conditions guarding call sites.
* **Field-sensitive**: labels attach to ``(scope, var, field-path)``
  locations.
* **No pointer-alias analysis** - on purpose.  ``AddrOf`` provenance is
  tracked syntactically; a pointer variable re-targeted at several
  parameters accumulates *all* targets, so dereferences attribute
  facts to every candidate parameter.  This reproduces the paper's
  mis-attribution inaccuracy on alias-heavy code (OpenLDAP, §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.events import (
    BranchCondEvent,
    CallArgEvent,
    CallChain,
    CallSiteRef,
    CastEvent,
    EventLog,
    Labels,
    OperandInfo,
    ScaleEvent,
    StoreEvent,
    StringCompareEvent,
    SwitchCaseEvent,
    UsageEvent,
)
from repro.analysis.seeds import GetterSpec, GlobalSeed, ParamSeed
from repro.ir.cfg import CfgInfo
from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import (
    AddrOf,
    Assign,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Cast,
    Jump,
    LoadDeref,
    LoadField,
    LoadIndex,
    Ret,
    StoreDeref,
    StoreField,
    StoreIndex,
    SwitchInst,
    UnOp,
    Unreachable,
)
from repro.ir.values import Const, FuncRef, Operand, Temp, Variable
from repro.knowledge import ApiKnowledge, default_knowledge

LocKey = tuple[str, str, tuple[str, ...]]  # (scope, name, path)
LabelMap = dict[str, int]  # param -> copy hops


@dataclass
class TaintOptions:
    max_rounds: int = 4
    max_chain: int = 3
    max_block_iterations: int = 4


@dataclass
class Summary:
    return_labels: LabelMap = field(default_factory=dict)
    param_writes: dict[tuple[str, tuple[str, ...]], LabelMap] = field(
        default_factory=dict
    )


_EMPTY_SUMMARY = Summary()


def merge_labels(dst: LabelMap, src: LabelMap, extra_hops: int = 0) -> bool:
    changed = False
    for name, hops in src.items():
        new_hops = hops + extra_hops
        if name not in dst or dst[name] > new_hops:
            dst[name] = new_hops
            changed = True
    return changed


@dataclass
class AnalysisResult:
    """Everything the inference passes need."""

    module: IRModule
    events: EventLog
    global_labels: dict[LocKey, LabelMap]
    parameters: set[str]
    _cfg_cache: dict[str, CfgInfo] = field(default_factory=dict)

    def cfg(self, function: str) -> CfgInfo:
        if function not in self._cfg_cache:
            self._cfg_cache[function] = CfgInfo.for_function(
                self.module.function(function)
            )
        return self._cfg_cache[function]

    def events_of(self, cls) -> list:
        return self.events.of_type(cls)


class TaintEngine:
    """Runs the whole-module dataflow to a fixpoint of events."""

    def __init__(
        self,
        module: IRModule,
        seeds: list,
        getters: list[GetterSpec] | None = None,
        knowledge: ApiKnowledge | None = None,
        options: TaintOptions | None = None,
    ):
        self.module = module
        self.options = options or TaintOptions()
        self.knowledge = knowledge or default_knowledge()
        self.global_seeds = [s for s in seeds if isinstance(s, GlobalSeed)]
        self.param_seeds = [s for s in seeds if isinstance(s, ParamSeed)]
        self.getters = {g.getter: g for g in (getters or [])}
        self.events = EventLog()
        self.global_labels: dict[LocKey, LabelMap] = {}
        self.global_ptr: dict[LocKey, set[LocKey]] = {}
        self.summaries: dict[object, Summary] = {}
        self.in_progress: set[object] = set()
        self.parameters: set[str] = {s.param for s in seeds}

    # -- public API ---------------------------------------------------------

    def run(self) -> AnalysisResult:
        for seed in self.global_seeds:
            loc = ("global", seed.var, seed.path)
            self.global_labels.setdefault(loc, {})[seed.param] = 0

        for _round in range(self.options.max_rounds):
            self.summaries = {}
            self.in_progress = set()
            before_events = len(self.events)
            before_globals = {k: dict(v) for k, v in self.global_labels.items()}
            for fn in self.module.functions.values():
                assignment = self._root_assignment(fn)
                analysis = _FunctionAnalysis(self, fn, assignment, chain=())
                analysis.run()
            if len(self.events) == before_events and (
                before_globals == self.global_labels
            ):
                break
        return AnalysisResult(
            module=self.module,
            events=self.events,
            global_labels=self.global_labels,
            parameters=set(self.parameters),
        )

    # -- internals ------------------------------------------------------------

    def _root_assignment(self, fn: IRFunction) -> dict[tuple[str, tuple], LabelMap]:
        assignment: dict[tuple[str, tuple], LabelMap] = {}
        for seed in self.param_seeds:
            if seed.function != fn.name:
                continue
            assignment.setdefault((seed.param_name, seed.path), {})[seed.param] = 0
        return assignment

    def summarize(
        self,
        callee: str,
        assignment: dict[tuple[str, tuple], LabelMap],
        chain: CallChain,
    ) -> Summary:
        # Annotation-declared param seeds apply on every invocation.
        fn = self.module.functions.get(callee)
        if fn is None:
            return _EMPTY_SUMMARY
        merged = {k: dict(v) for k, v in self._root_assignment(fn).items()}
        for key, labels in assignment.items():
            merge_labels(merged.setdefault(key, {}), labels)
        key = (
            callee,
            tuple(
                sorted(
                    (name, path, tuple(sorted(labels.items())))
                    for (name, path), labels in merged.items()
                )
            ),
        )
        if key in self.summaries:
            return self.summaries[key]
        if key in self.in_progress:
            return _EMPTY_SUMMARY
        self.in_progress.add(key)
        try:
            analysis = _FunctionAnalysis(self, fn, merged, chain)
            summary = analysis.run()
        finally:
            self.in_progress.discard(key)
        self.summaries[key] = summary
        return summary

    def labels_under(self, prefix: LocKey) -> dict[tuple[str, ...], LabelMap]:
        """Global labels at or under a (scope, name, path) prefix,
        keyed by the path *suffix* relative to the prefix."""
        scope, name, path = prefix
        out: dict[tuple[str, ...], LabelMap] = {}
        if scope != "global":
            return out
        for (g_scope, g_name, g_path), labels in self.global_labels.items():
            if g_scope == scope and g_name == name and g_path[: len(path)] == path:
                out[g_path[len(path) :]] = labels
        return out


class _FunctionAnalysis:
    """One (function, argument-labels) analysis instance."""

    def __init__(
        self,
        engine: TaintEngine,
        fn: IRFunction,
        assignment: dict[tuple[str, tuple], LabelMap],
        chain: CallChain,
    ):
        self.engine = engine
        self.fn = fn
        self.chain = chain[-engine.options.max_chain :]
        self.local_labels: dict[tuple[str, tuple[str, ...]], LabelMap] = {}
        self.temp_labels: dict[int, LabelMap] = {}
        self.temp_ptr: dict[int, frozenset[LocKey]] = {}
        self.var_ptr: dict[tuple[str, tuple[str, ...]], set[LocKey]] = {}
        self.temp_origin: dict[int, LocKey] = {}
        self.summary = Summary()
        self.changed = False
        self.param_names = {p.name for p in fn.params}
        self.pointer_params = {
            p.name for p in fn.params if p.type is not None and p.type.is_pointer
        }
        for (name, path), labels in assignment.items():
            merge_labels(self.local_labels.setdefault((name, path), {}), labels)

    # -- label helpers ---------------------------------------------------------

    def _loc_labels(self, scope: str, name: str, path: tuple[str, ...]) -> LabelMap:
        """Union of labels at the location and its path prefixes."""
        out: LabelMap = {}
        for i in range(len(path) + 1):
            prefix = path[:i]
            if scope == "global":
                merge_labels(out, self.engine.global_labels.get(("global", name, prefix), {}))
            else:
                merge_labels(out, self.local_labels.get((name, prefix), {}))
        return out

    def _write_loc(
        self, scope: str, name: str, path: tuple[str, ...], labels: LabelMap,
        extra_hops: int,
    ) -> None:
        if not labels:
            return
        if scope == "global":
            target = self.engine.global_labels.setdefault(("global", name, path), {})
        else:
            target = self.local_labels.setdefault((name, path), {})
            if name in self.pointer_params:
                writes = self.summary.param_writes.setdefault((name, path), {})
                merge_labels(writes, labels, extra_hops)
        if merge_labels(target, labels, extra_hops):
            self.changed = True

    def _var_scope(self, var: Variable) -> str:
        return "global" if var.kind == "global" else self.fn.name

    def _operand_info(self, op: Operand) -> OperandInfo:
        if isinstance(op, Const):
            return OperandInfo(Labels(), None, op.value, True)
        if isinstance(op, Temp):
            labels = Labels.of(self.temp_labels.get(op.id, {}))
            origin = self.temp_origin.get(op.id)
            return OperandInfo(labels, origin, None, False)
        if isinstance(op, Variable):
            scope = self._var_scope(op)
            labels = Labels.of(self._loc_labels(scope, op.name, ()))
            return OperandInfo(labels, (scope, op.name, ()), None, False)
        return OperandInfo(Labels(), None, None, False)

    def _labels_of(self, op: Operand) -> LabelMap:
        if isinstance(op, Temp):
            return dict(self.temp_labels.get(op.id, {}))
        if isinstance(op, Variable):
            return self._loc_labels(self._var_scope(op), op.name, ())
        return {}

    def _ptr_targets(self, op: Operand) -> frozenset[LocKey]:
        if isinstance(op, Temp):
            return self.temp_ptr.get(op.id, frozenset())
        if isinstance(op, Variable):
            scope = self._var_scope(op)
            if scope == "global":
                return frozenset(
                    self.engine.global_ptr.get(("global", op.name, ()), set())
                )
            return frozenset(self.var_ptr.get((op.name, ()), set()))
        return frozenset()

    def _set_temp(self, temp: Temp, labels: LabelMap) -> None:
        current = self.temp_labels.setdefault(temp.id, {})
        if merge_labels(current, labels):
            self.changed = True

    def _emit(self, event) -> None:
        if self.engine.events.add(event):
            self.changed = True

    # -- main loop --------------------------------------------------------------

    def run(self) -> Summary:
        for _ in range(self.engine.options.max_block_iterations):
            self.changed = False
            for block in self.fn.block_order():
                for inst in block.instructions:
                    self._visit(block.label, inst)
            if not self.changed:
                break
        return self.summary

    def _visit(self, block: str, inst) -> None:
        if isinstance(inst, Assign):
            self._visit_assign(block, inst)
        elif isinstance(inst, BinOp):
            self._visit_binop(block, inst)
        elif isinstance(inst, UnOp):
            self._set_temp(inst.dest, self._labels_of(inst.operand))
        elif isinstance(inst, Cast):
            self._visit_cast(block, inst)
        elif isinstance(inst, LoadField):
            self._visit_load_field(block, inst)
        elif isinstance(inst, StoreField):
            self._visit_store_field(block, inst)
        elif isinstance(inst, LoadIndex):
            self._set_temp(inst.dest, self._labels_of(inst.base))
        elif isinstance(inst, StoreIndex):
            self._visit_store_index(block, inst)
        elif isinstance(inst, AddrOf):
            scope = self._var_scope(inst.var)
            self.temp_ptr[inst.dest.id] = frozenset({(scope, inst.var.name, inst.path)})
        elif isinstance(inst, LoadDeref):
            self._visit_load_deref(block, inst)
        elif isinstance(inst, StoreDeref):
            self._visit_store_deref(block, inst)
        elif isinstance(inst, Call):
            self._visit_call(block, inst)
        elif isinstance(inst, CallIndirect):
            self._visit_call_indirect(block, inst)
        elif isinstance(inst, Branch):
            self._visit_branch(block, inst)
        elif isinstance(inst, SwitchInst):
            self._visit_switch(block, inst)
        elif isinstance(inst, Ret):
            if inst.value is not None:
                labels = self._labels_of(inst.value)
                if merge_labels(self.summary.return_labels, labels):
                    self.changed = True
        elif isinstance(inst, (Jump, Unreachable)):
            pass

    # -- per-instruction handlers ----------------------------------------------

    def _visit_assign(self, block: str, inst: Assign) -> None:
        labels = self._labels_of(inst.src)
        ptr = self._ptr_targets(inst.src)
        if isinstance(inst.dest, Temp):
            self._set_temp(inst.dest, labels)
            if ptr:
                merged = self.temp_ptr.get(inst.dest.id, frozenset()) | ptr
                if merged != self.temp_ptr.get(inst.dest.id):
                    self.temp_ptr[inst.dest.id] = merged
                    self.changed = True
            if isinstance(inst.src, Variable):
                self.temp_origin[inst.dest.id] = (
                    self._var_scope(inst.src),
                    inst.src.name,
                    (),
                )
            elif isinstance(inst.src, Temp) and inst.src.id in self.temp_origin:
                self.temp_origin[inst.dest.id] = self.temp_origin[inst.src.id]
            return
        if isinstance(inst.dest, Variable):
            scope = self._var_scope(inst.dest)
            loc = (scope, inst.dest.name, ())
            target_labels = self._loc_labels(scope, inst.dest.name, ())
            src_info = self._operand_info(inst.src)
            if labels or target_labels or src_info.is_const:
                self._emit(
                    StoreEvent(
                        function=self.fn.name,
                        block=block,
                        location=inst.location,
                        target=loc,
                        target_labels=Labels.of(target_labels),
                        src_labels=Labels.of(labels),
                        src_const=src_info.const,
                        src_is_const=src_info.is_const,
                        chain=self.chain,
                    )
                )
            self._write_loc(scope, inst.dest.name, (), labels, extra_hops=1)
            if ptr:
                if scope == "global":
                    store = self.engine.global_ptr.setdefault(loc, set())
                else:
                    store = self.var_ptr.setdefault((inst.dest.name, ()), set())
                before = len(store)
                store.update(ptr)
                if len(store) != before:
                    self.changed = True

    def _visit_binop(self, block: str, inst: BinOp) -> None:
        left = self._labels_of(inst.left)
        right = self._labels_of(inst.right)
        union: LabelMap = {}
        merge_labels(union, left)
        merge_labels(union, right)
        self._set_temp(inst.dest, union)
        self._maybe_scale_event(block, inst, left, right)
        if not inst.is_comparison and union:
            self._emit(
                UsageEvent(
                    function=self.fn.name,
                    block=block,
                    location=inst.location,
                    labels=Labels.of(union),
                    kind="arith",
                    chain=self.chain,
                )
            )

    def _maybe_scale_event(self, block: str, inst: BinOp, left, right) -> None:
        """Record `param * const` / `param / const` for unit inference."""
        if inst.op not in ("*", "/"):
            return
        factor = None
        labels: LabelMap = {}
        if left and isinstance(inst.right, Const) and isinstance(
            inst.right.value, (int, float)
        ):
            labels = left
            factor = float(inst.right.value)
        elif right and inst.op == "*" and isinstance(inst.left, Const) and isinstance(
            inst.left.value, (int, float)
        ):
            labels = right
            factor = float(inst.left.value)
        if factor is None or factor == 0:
            return
        if inst.op == "/":
            factor = 1.0 / factor
        self._emit(
            ScaleEvent(
                function=self.fn.name,
                block=block,
                location=inst.location,
                labels=Labels.of(labels),
                factor=factor,
                dest_temp=inst.dest.id,
                chain=self.chain,
            )
        )

    def _visit_cast(self, block: str, inst: Cast) -> None:
        labels = self._labels_of(inst.src)
        self._set_temp(inst.dest, labels)
        if isinstance(inst.src, Temp) and inst.src.id in self.temp_origin:
            self.temp_origin[inst.dest.id] = self.temp_origin[inst.src.id]
        if labels and inst.explicit:
            self._emit(
                CastEvent(
                    function=self.fn.name,
                    block=block,
                    location=inst.location,
                    labels=Labels.of(labels),
                    type=inst.type,
                    chain=self.chain,
                )
            )

    def _visit_load_field(self, block: str, inst: LoadField) -> None:
        if isinstance(inst.base, Variable):
            scope = self._var_scope(inst.base)
            labels = self._loc_labels(scope, inst.base.name, inst.path)
            self._set_temp(inst.dest, labels)
            self.temp_origin[inst.dest.id] = (scope, inst.base.name, inst.path)
            return
        # Pointer-typed temp base.
        targets = self._ptr_targets(inst.base)
        if targets:
            union: LabelMap = {}
            for scope, name, path in sorted(targets):
                merge_labels(union, self._loc_labels(scope, name, path + inst.path))
            self._set_temp(inst.dest, union)
            if len(targets) == 1:
                scope, name, path = next(iter(targets))
                self.temp_origin[inst.dest.id] = (scope, name, path + inst.path)
            return
        self._set_temp(inst.dest, self._labels_of(inst.base))

    def _visit_store_field(self, block: str, inst: StoreField) -> None:
        labels = self._labels_of(inst.src)
        src_info = self._operand_info(inst.src)
        if isinstance(inst.base, Variable):
            scope = self._var_scope(inst.base)
            loc = (scope, inst.base.name, inst.path)
            target_labels = self._loc_labels(scope, inst.base.name, inst.path)
            if labels or target_labels or src_info.is_const:
                self._emit(
                    StoreEvent(
                        function=self.fn.name,
                        block=block,
                        location=inst.location,
                        target=loc,
                        target_labels=Labels.of(target_labels),
                        src_labels=Labels.of(labels),
                        src_const=src_info.const,
                        src_is_const=src_info.is_const,
                        chain=self.chain,
                    )
                )
            self._write_loc(scope, inst.base.name, inst.path, labels, extra_hops=1)
            return
        # Pointer-target sets are hash-ordered; iterate them sorted so
        # event/write order (and the hop counts it feeds) never depends
        # on the process's hash seed (docs/ARCHITECTURE.md, drift note).
        targets = self._ptr_targets(inst.base)
        for scope, name, path in sorted(targets):
            full = path + inst.path
            target_labels = self._loc_labels(scope, name, full)
            if labels or target_labels:
                self._emit(
                    StoreEvent(
                        function=self.fn.name,
                        block=block,
                        location=inst.location,
                        target=(scope, name, full),
                        target_labels=Labels.of(target_labels),
                        src_labels=Labels.of(labels),
                        src_const=src_info.const,
                        src_is_const=src_info.is_const,
                        chain=self.chain,
                    )
                )
            self._write_loc(scope, name, full, labels, extra_hops=1)

    def _visit_store_index(self, block: str, inst: StoreIndex) -> None:
        labels = self._labels_of(inst.src)
        if isinstance(inst.base, Variable) and labels:
            scope = self._var_scope(inst.base)
            self._write_loc(scope, inst.base.name, (), labels, extra_hops=1)

    def _visit_load_deref(self, block: str, inst: LoadDeref) -> None:
        targets = self._ptr_targets(inst.ptr)
        if targets:
            union: LabelMap = {}
            for scope, name, path in sorted(targets):
                merge_labels(union, self._loc_labels(scope, name, path))
            self._set_temp(inst.dest, union)
            if len(targets) == 1:
                self.temp_origin[inst.dest.id] = next(iter(targets))
            return
        self._set_temp(inst.dest, self._labels_of(inst.ptr))

    def _visit_store_deref(self, block: str, inst: StoreDeref) -> None:
        labels = self._labels_of(inst.src)
        src_info = self._operand_info(inst.src)
        targets = self._ptr_targets(inst.ptr)
        for scope, name, path in sorted(targets):
            target_labels = self._loc_labels(scope, name, path)
            if labels or target_labels:
                self._emit(
                    StoreEvent(
                        function=self.fn.name,
                        block=block,
                        location=inst.location,
                        target=(scope, name, path),
                        target_labels=Labels.of(target_labels),
                        src_labels=Labels.of(labels),
                        src_const=src_info.const,
                        src_is_const=src_info.is_const,
                        chain=self.chain,
                    )
                )
            self._write_loc(scope, name, path, labels, extra_hops=1)
        if targets:
            return
        # `*dest = v` where dest is a pointer parameter: record the
        # write in the summary so callers can map it back through
        # their AddrOf provenance.
        origin = (
            self.temp_origin.get(inst.ptr.id)
            if isinstance(inst.ptr, Temp)
            else None
        )
        if origin is not None:
            o_scope, o_name, o_path = origin
            if o_scope == self.fn.name and o_name in self.pointer_params and labels:
                writes = self.summary.param_writes.setdefault((o_name, o_path), {})
                if merge_labels(writes, labels, 1):
                    self.changed = True
                return
        # Otherwise: without alias analysis, a store through an
        # unresolved pointer is silently dropped (paper §4.3).

    def _visit_call(self, block: str, inst: Call) -> None:
        arg_labels = [self._labels_of(a) for a in inst.args]
        # Container-based getter: result is the named parameter.
        getter = self.engine.getters.get(inst.callee)
        if getter is not None and inst.dest is not None:
            if getter.key_arg_index < len(inst.args):
                key_op = inst.args[getter.key_arg_index]
                if isinstance(key_op, Const) and isinstance(key_op.value, str):
                    param = key_op.value
                    self.engine.parameters.add(param)
                    self._set_temp(inst.dest, {param: 0})

        if self.engine.module.has_function(inst.callee):
            self._visit_user_call(block, inst, arg_labels)
            return
        self._visit_library_call(block, inst, arg_labels)

    def _visit_user_call(self, block: str, inst: Call, arg_labels) -> None:
        fn_def = self.engine.module.function(inst.callee)
        assignment: dict[tuple[str, tuple], LabelMap] = {}
        ptr_args: dict[int, frozenset[LocKey]] = {}
        for i, arg in enumerate(inst.args):
            if i >= len(fn_def.params):
                break
            pname = fn_def.params[i].name
            if arg_labels[i]:
                assignment.setdefault((pname, ()), {}).update(arg_labels[i])
            targets = self._ptr_targets(arg)
            if targets:
                ptr_args[i] = targets
                # Labels under each pointed-to location map into the
                # callee parameter's field space.
                for target in sorted(targets):
                    for suffix, labels in self._labels_under(target).items():
                        assignment.setdefault((pname, suffix), {}).update(labels)
        site = CallSiteRef(self.fn.name, block, inst.location)
        summary = self.engine.summarize(
            inst.callee, assignment, self.chain + (site,)
        )
        if inst.dest is not None and summary.return_labels:
            self._set_temp(inst.dest, summary.return_labels)
        # Back-propagate writes through pointer arguments.
        for (pname, path), labels in summary.param_writes.items():
            for i, targets in ptr_args.items():
                if i < len(fn_def.params) and fn_def.params[i].name == pname:
                    for scope, name, tpath in sorted(targets):
                        self._write_loc(scope, name, tpath + path, labels, 0)

    def _labels_under(self, prefix: LocKey) -> dict[tuple[str, ...], LabelMap]:
        scope, name, path = prefix
        if scope == "global":
            return self.engine.labels_under(prefix)
        out: dict[tuple[str, ...], LabelMap] = {}
        for (l_name, l_path), labels in self.local_labels.items():
            if l_name == name and l_path[: len(path)] == path:
                out[l_path[len(path) :]] = labels
        return out

    def _visit_library_call(self, block: str, inst: Call, arg_labels) -> None:
        union: LabelMap = {}
        for labels in arg_labels:
            merge_labels(union, labels)
        if inst.dest is not None:
            self._set_temp(inst.dest, union)
        spec = self.engine.knowledge.get(inst.callee)
        const_args = tuple(
            (i, a.value) for i, a in enumerate(inst.args) if isinstance(a, Const)
        )
        for i, labels in enumerate(arg_labels):
            if not labels:
                continue
            self._emit(
                CallArgEvent(
                    function=self.fn.name,
                    block=block,
                    location=inst.location,
                    labels=Labels.of(labels),
                    callee=inst.callee,
                    arg_index=i,
                    other_const_args=const_args,
                    chain=self.chain,
                )
            )
            self._emit(
                UsageEvent(
                    function=self.fn.name,
                    block=block,
                    location=inst.location,
                    labels=Labels.of(labels),
                    kind="libcall",
                    chain=self.chain,
                )
            )
        if spec is not None and spec.comparison and len(inst.args) >= 2:
            self._visit_string_compare(block, inst, arg_labels, spec)
        if spec is not None and spec.out_args_from >= 0:
            self._visit_out_args(inst, arg_labels, spec)

    def _visit_out_args(self, inst: Call, arg_labels, spec) -> None:
        """sscanf-style out-parameters receive the input's labels."""
        incoming: LabelMap = {}
        for labels in arg_labels[: spec.out_args_from]:
            merge_labels(incoming, labels)
        if not incoming:
            return
        for arg in inst.args[spec.out_args_from :]:
            for scope, name, path in sorted(self._ptr_targets(arg)):
                self._write_loc(scope, name, path, incoming, extra_hops=0)

    def _visit_string_compare(self, block: str, inst: Call, arg_labels, spec) -> None:
        for tainted_i, other_i in ((0, 1), (1, 0)):
            labels = arg_labels[tainted_i]
            if not labels:
                continue
            other = inst.args[other_i]
            const_other = (
                other.value
                if isinstance(other, Const) and isinstance(other.value, str)
                else None
            )
            self._emit(
                StringCompareEvent(
                    function=self.fn.name,
                    block=block,
                    location=inst.location,
                    labels=Labels.of(labels),
                    callee=inst.callee,
                    const_other=const_other,
                    case_sensitive=bool(spec.case_sensitive),
                    dest_temp=inst.dest.id if inst.dest is not None else -1,
                    chain=self.chain,
                )
            )

    def _visit_call_indirect(self, block: str, inst: CallIndirect) -> None:
        union: LabelMap = {}
        for arg in inst.args:
            merge_labels(union, self._labels_of(arg))
        if inst.dest is not None:
            self._set_temp(inst.dest, union)

    def _visit_branch(self, block: str, inst: Branch) -> None:
        info = inst.cond_info
        if info is None:
            return
        left = self._operand_info(info.left)
        right = self._operand_info(info.right)
        if not left.labels and not right.labels:
            return
        cond_temp = inst.cond.id if isinstance(inst.cond, Temp) else -1
        left_temp = info.left.id if isinstance(info.left, Temp) else -1
        self._emit(
            BranchCondEvent(
                function=self.fn.name,
                block=block,
                location=inst.location,
                op=info.op,
                left=left,
                right=right,
                true_label=inst.true_label,
                false_label=inst.false_label,
                cond_temp=left_temp if left_temp >= 0 else cond_temp,
                chain=self.chain,
            )
        )
        union: LabelMap = {}
        merge_labels(union, left.labels.to_dict())
        merge_labels(union, right.labels.to_dict())
        self._emit(
            UsageEvent(
                function=self.fn.name,
                block=block,
                location=inst.location,
                labels=Labels.of(union),
                kind="branch",
                chain=self.chain,
            )
        )

    def _visit_switch(self, block: str, inst: SwitchInst) -> None:
        labels = self._labels_of(inst.subject)
        if not labels:
            return
        self._emit(
            SwitchCaseEvent(
                function=self.fn.name,
                block=block,
                location=inst.location,
                labels=Labels.of(labels),
                cases=tuple((c.value, lbl) for c, lbl in inst.cases),
                default_label=inst.default_label,
                chain=self.chain,
            )
        )
        self._emit(
            UsageEvent(
                function=self.fn.name,
                block=block,
                location=inst.location,
                labels=Labels.of(labels),
                kind="branch",
                chain=self.chain,
            )
        )
