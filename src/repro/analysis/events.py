"""Events: facts observed on tainted values during dataflow analysis.

Each event carries the labels (parameter names) present on the value,
the syntactic site (function/block/location), and the interprocedural
call chain through which the analysis reached it - the chain is what
lets control-dependency inference include conditions guarding call
sites (the paper's PostgreSQL ``fsync``/``commit_siblings`` example,
Figure 3e).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import types as ct
from repro.lang.source import Location


@dataclass(frozen=True)
class CallSiteRef:
    """One hop of the interprocedural context."""

    caller: str
    block: str
    location: Location


CallChain = tuple[CallSiteRef, ...]


@dataclass(frozen=True)
class Labels:
    """Parameter labels with copy-hop counts (name -> hops).

    Hops count copies through *named* variables; the paper's value
    relationship inference only transits one intermediate variable
    (§2.2.5), which inference passes enforce via this count.
    """

    entries: tuple[tuple[str, int], ...] = ()

    @classmethod
    def of(cls, mapping: dict[str, int]) -> "Labels":
        return cls(tuple(sorted(mapping.items())))

    def to_dict(self) -> dict[str, int]:
        return dict(self.entries)

    def names(self) -> set[str]:
        return {name for name, _ in self.entries}

    def within_hops(self, max_hops: int) -> set[str]:
        return {name for name, hops in self.entries if hops <= max_hops}

    def __bool__(self) -> bool:
        return bool(self.entries)


@dataclass(frozen=True)
class OperandInfo:
    """One side of a comparison: labels + syntactic origin."""

    labels: Labels
    origin: tuple[str, str, tuple[str, ...]] | None  # (scope, name, path)
    const: object | None = None
    is_const: bool = False


class Event:
    """Base class (dataclasses don't inherit fields here; shared
    attributes are duplicated per event type for frozen hashing)."""


@dataclass(frozen=True)
class CastEvent(Event):
    """A tainted value was cast (explicitly) to a type."""

    function: str
    block: str
    location: Location
    labels: Labels
    type: ct.CType
    chain: CallChain = ()


@dataclass(frozen=True)
class CallArgEvent(Event):
    """A tainted value reached argument `arg_index` of `callee`."""

    function: str
    block: str
    location: Location
    labels: Labels
    callee: str
    arg_index: int
    other_const_args: tuple[tuple[int, object], ...] = ()
    chain: CallChain = ()


@dataclass(frozen=True)
class StringCompareEvent(Event):
    """strcmp-family call with a tainted side and a constant side."""

    function: str
    block: str
    location: Location
    labels: Labels
    callee: str
    const_other: str | None
    case_sensitive: bool
    dest_temp: int = -1
    chain: CallChain = ()


@dataclass(frozen=True)
class BranchCondEvent(Event):
    """A conditional branch whose comparison involves tainted data."""

    function: str
    block: str
    location: Location
    op: str
    left: OperandInfo
    right: OperandInfo
    true_label: str
    false_label: str
    cond_temp: int = -1
    chain: CallChain = ()


@dataclass(frozen=True)
class SwitchCaseEvent(Event):
    """A switch over a tainted subject."""

    function: str
    block: str
    location: Location
    labels: Labels
    cases: tuple[tuple[object, str], ...]
    default_label: str | None
    chain: CallChain = ()


@dataclass(frozen=True)
class StoreEvent(Event):
    """A store whose target or source carries labels."""

    function: str
    block: str
    location: Location
    target: tuple[str, str, tuple[str, ...]]  # (scope, name, path)
    target_labels: Labels
    src_labels: Labels
    src_const: object | None = None
    src_is_const: bool = False
    chain: CallChain = ()


@dataclass(frozen=True)
class ScaleEvent(Event):
    """A tainted value was multiplied/divided by a constant.

    Unit inference combines this with the unit of the API the scaled
    value reaches: ``value * 1024`` flowing into a BYTES-unit API means
    the parameter itself is in KBytes (Figure 6b's MaxMemFree)."""

    function: str
    block: str
    location: Location
    labels: Labels
    factor: float  # multiplier applied to the parameter value
    dest_temp: int = -1
    chain: CallChain = ()


@dataclass(frozen=True)
class UsageEvent(Event):
    """A *usage* in the thin-slicing sense (paper §2.2.4): branches,
    arithmetic, and system/library-call arguments - copies and calls to
    user functions are not usage."""

    function: str
    block: str
    location: Location
    labels: Labels
    kind: str  # "branch" | "arith" | "libcall"
    chain: CallChain = ()


@dataclass
class EventLog:
    """Deduplicating accumulator for events."""

    events: dict[object, Event] = field(default_factory=dict)

    def add(self, event: Event) -> bool:
        key = event
        if key in self.events:
            return False
        self.events[key] = event
        return True

    def all(self) -> list[Event]:
        return list(self.events.values())

    def of_type(self, cls) -> list:
        return [e for e in self.events.values() if isinstance(e, cls)]

    def __len__(self) -> int:
        return len(self.events)
