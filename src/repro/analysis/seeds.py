"""Taint seeds: where a configuration parameter's value lives.

The three mapping toolkits (structure / comparison / container,
§2.2.1) all reduce to these seed forms:

* :class:`GlobalSeed`   - a global variable or a field of one
  (structure-based mapping, comparison-based stores to globals);
* :class:`ParamSeed`    - a function parameter or a field reached
  through a pointer parameter (structure-based mapping to parsing
  functions, OpenLDAP's ``ConfigArgs *c`` hybrid);
* :class:`GetterSpec`   - a getter function whose string-keyed calls
  yield parameter values (container-based mapping).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GlobalSeed:
    """Parameter `param` is stored in global `var` (at field `path`)."""

    param: str
    var: str
    path: tuple[str, ...] = ()


@dataclass(frozen=True)
class ParamSeed:
    """Parameter `param` arrives as `function`'s argument `param_name`
    (optionally at a struct field path through a pointer param)."""

    param: str
    function: str
    param_name: str
    path: tuple[str, ...] = ()


@dataclass(frozen=True)
class GetterSpec:
    """Container-based mapping: ``get_i32("Connection.Retry.Interval")``.

    Any call to `getter` whose `key_arg_index` argument is a string
    constant taints the call result with that parameter name (after
    `key_to_param` translation if the toolkit provides one).
    """

    getter: str
    key_arg_index: int = 0


Seed = GlobalSeed | ParamSeed
