"""Data-type inference (§2.2.2).

Basic types: the declared type of the mapped variable when it is
already concrete; otherwise the type after the *first* cast on the
dataflow path ("it is common for a parameter to be first stored as a
string before being transformed into its real type"), falling back to
the return type of a known conversion API.

Semantic types: known API contact anywhere on the dataflow path, even
after modification ("a file path after canonicalization is still used
as a file path") - so no hop limit.  Units come from the API's unit
adjusted by constant scaling on the path (Figure 6b).
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis import AnalysisResult
from repro.analysis.events import CallArgEvent, CastEvent, ScaleEvent, StringCompareEvent
from repro.core.constraints import (
    BasicTypeConstraint,
    ConstraintSet,
    SemanticTypeConstraint,
)
from repro.core.events_util import canonical_events
from repro.knowledge import ApiKnowledge, SemanticType, Unit
from repro.knowledge.semantic import SIZE_UNITS, TIME_UNITS
from repro.lang import types as ct
from repro.lang.source import UNKNOWN_LOCATION, Location


def infer_basic_types(
    result: AnalysisResult,
    constraints: ConstraintSet,
    declared_types: dict[str, ct.CType],
    knowledge: ApiKnowledge,
) -> None:
    casts: dict[str, list[CastEvent]] = defaultdict(list)
    for event in result.events_of(CastEvent):
        for name, hops in event.labels.entries:
            casts[name].append(event)

    conversions: dict[str, list[tuple[Location, ct.CType]]] = defaultdict(list)
    for event in result.events_of(CallArgEvent):
        spec = knowledge.get(event.callee)
        if spec is None or spec.return_basic is None:
            continue
        if not (spec.unsafe_transform or spec.safe_transform):
            continue
        for name in event.labels.names():
            conversions[name].append((event.location, spec.return_basic))

    for param in sorted(result.parameters):
        declared = declared_types.get(param)
        if (
            declared is not None
            and not _is_stringish(declared)
            and not _is_aggregate(declared)
        ):
            constraints.add(
                BasicTypeConstraint(param, UNKNOWN_LOCATION, _strip_pointer(declared))
            )
            continue
        cast_events = casts.get(param, [])
        if cast_events:
            first = min(
                cast_events,
                key=lambda e: (min(h for _, h in e.labels.entries), _loc_key(e.location)),
            )
            constraints.add(BasicTypeConstraint(param, first.location, first.type))
            continue
        conv = conversions.get(param, [])
        if conv:
            loc, typ = min(conv, key=lambda pair: _loc_key(pair[0]))
            constraints.add(BasicTypeConstraint(param, loc, typ))
            continue
        if declared is not None and not _is_aggregate(declared):
            constraints.add(BasicTypeConstraint(param, UNKNOWN_LOCATION, declared))
            continue
        # Last resort (parameters behind opaque handler structs): type
        # from how the value is used - numeric comparisons/arithmetic
        # mean integer, string compares mean string.
        usage_type = _type_from_usage(result, param)
        if usage_type is not None:
            constraints.add(BasicTypeConstraint(param, UNKNOWN_LOCATION, usage_type))


def _is_aggregate(typ: ct.CType) -> bool:
    inner = typ.pointee if isinstance(typ, ct.PointerType) else typ
    return isinstance(inner, (ct.StructType, ct.ArrayType))


def _type_from_usage(result: AnalysisResult, param: str) -> ct.CType | None:
    from repro.analysis.events import BranchCondEvent

    for event in result.events_of(StringCompareEvent):
        if param in event.labels.names():
            from repro.lang.types import STRING

            return STRING
    for event in result.events_of(BranchCondEvent):
        sides = event.left.labels.names() | event.right.labels.names()
        if param in sides:
            const = event.right.const if event.right.is_const else event.left.const
            if isinstance(const, int):
                return ct.INT
    for event in result.events_of(CallArgEvent):
        if param in event.labels.names():
            return ct.INT
    return None


def _is_stringish(typ: ct.CType) -> bool:
    return typ.is_string or (
        isinstance(typ, ct.PointerType) and typ.pointee.is_string
    )


def _strip_pointer(typ: ct.CType) -> ct.CType:
    # An int* mapping entry stores the parameter's value behind one
    # pointer; the parameter's own type is the pointee.
    if isinstance(typ, ct.PointerType) and not typ.is_string:
        return typ.pointee
    return typ


def _loc_key(loc: Location) -> tuple:
    return (loc.filename, loc.line, loc.column)


def infer_semantic_types(
    result: AnalysisResult,
    constraints: ConstraintSet,
    knowledge: ApiKnowledge,
) -> None:
    # Keyed by parameter only: the scaling commonly happens in the
    # parsing handler while the unit-bearing API sits elsewhere
    # (Figure 6b: MaxMemFree scaled in its handler, allocated later).
    scale_by_param: dict[str, set[float]] = defaultdict(set)
    for event in result.events_of(ScaleEvent):
        for name in event.labels.names():
            scale_by_param[name].add(event.factor)

    # param -> semantic -> (unit, first location)
    found: dict[str, dict[SemanticType, tuple[Unit | None, Location]]] = defaultdict(dict)
    for event in canonical_events(
        result.events_of(CallArgEvent),
        lambda e: (e.function, e.location, e.callee, e.arg_index),
    ):
        spec = knowledge.get(event.callee)
        if spec is None:
            continue
        fact = spec.arg_fact(event.arg_index)
        if fact is None or fact.semantic is None:
            continue
        for name in event.labels.names():
            unit = fact.unit
            if unit is not None:
                factors = scale_by_param.get(name, set())
                if len(factors) == 1:
                    unit = _adjust_unit(unit, next(iter(factors)))
            current = found[name].get(fact.semantic)
            if current is None or _loc_key(event.location) < _loc_key(current[1]):
                found[name][fact.semantic] = (unit, event.location)

    sensitivity = case_sensitivity_map(result)
    for param in sorted(found):
        for semantic, (unit, location) in sorted(
            found[param].items(), key=lambda kv: kv[0].value
        ):
            constraints.add(
                SemanticTypeConstraint(
                    param,
                    location,
                    semantic=semantic,
                    unit=unit,
                    case_sensitive=sensitivity.get(param),
                )
            )


def _adjust_unit(api_unit: Unit, factor: float) -> Unit:
    """param * factor flows into an api_unit argument: the parameter's
    own unit has scale api_unit.scale * factor."""
    if factor == 1 or factor <= 0:
        return api_unit
    target_scale = api_unit.scale * factor
    candidates = SIZE_UNITS if api_unit.dimension == "size" else TIME_UNITS
    for unit in candidates:
        if abs(unit.scale - target_scale) < 1e-9 * max(unit.scale, target_scale):
            return unit
    return api_unit


def case_sensitivity_map(result: AnalysisResult) -> dict[str, bool]:
    """param -> compared case-sensitively?  strcmp anywhere wins over
    strcasecmp (one sensitive comparison makes the requirement
    sensitive); params never string-compared are absent.  Compares
    against caseless constants ("1", "0", numbers) say nothing."""
    out: dict[str, bool] = {}
    for event in result.events_of(StringCompareEvent):
        const = event.const_other
        if const is not None and const.lower() == const.upper():
            continue
        for name in event.labels.names():
            out[name] = out.get(name, False) or event.case_sensitive
    return out
