"""Value-relationship inference (§2.2.5).

Two parameters' values can be mutually constrained:

* **direct** - a comparison whose two sides carry different parameters
  (P ⋄ Q);
* **transited** - both parameters compared against one intermediate
  variable inside one condition conjunction (the MySQL
  ``ft_min_word_len``/``ft_max_word_len`` example of Figure 3f:
  ``length >= min && length < max``  =>  ``min < max``).

Transitivity is bounded: "In the current prototype of SPEX, we only
check one intermediate variable" - enforced here via the copy-hop
count on labels and a configurable depth.
"""

from __future__ import annotations

from itertools import combinations

from repro.analysis import AnalysisResult
from repro.analysis.events import BranchCondEvent
from repro.core.constraints import ConstraintSet, ValueRelConstraint
from repro.core.events_util import canonical_branch_events, flip_op


def infer_value_relationships(
    result: AnalysisResult,
    constraints: ConstraintSet,
    max_transit_hops: int = 1,
) -> None:
    events = [
        e
        for e in canonical_branch_events(result.events_of(BranchCondEvent))
        if e.op in ("<", ">", "<=", ">=")
    ]
    seen: set[tuple[str, str, str]] = set()

    _infer_direct(events, constraints, seen, max_transit_hops, result)
    _infer_transited(result, events, constraints, seen, max_transit_hops)


def _add(constraints, seen, rel: ValueRelConstraint) -> None:
    rel = rel.normalized()
    key = (rel.param, rel.op, rel.other_param)
    if key in seen:
        return
    seen.add(key)
    constraints.add(rel)


def _infer_direct(events, constraints, seen, max_hops, result=None) -> None:
    for event in events:
        left = _clean(event.left.labels.within_hops(max_hops))
        right = _clean(event.right.labels.within_hops(max_hops))
        if not left or not right:
            continue
        op = event.op
        # Validity (§2.2.5 "in a manner similar to range-constraint
        # inference"): when the region where the comparison HOLDS
        # exits/errors/resets, the required relation is its negation -
        # `if (max < min) exit(1)` means max >= min must hold.
        if result is not None:
            op = _required_op(result, event)
        for p in sorted(left):
            for q in sorted(right):
                if p == q:
                    continue
                _add(
                    constraints,
                    seen,
                    ValueRelConstraint(p, event.location, op=op, other_param=q),
                )


def _required_op(result, event) -> str:
    from repro.analysis.events import StoreEvent
    from repro.core.events_util import negate_op
    from repro.core.infer_range import region_behavior
    from repro.knowledge import default_knowledge

    knowledge = default_knowledge()
    cfg = result.cfg(event.function)
    union = event.left.labels.names() | event.right.labels.names()
    param = sorted(union)[0] if union else ""
    true_region = cfg.region_of_edge(event.block, event.true_label)
    if region_behavior(result, knowledge, event.function, true_region, param).is_invalid:
        return negate_op(event.op)
    # Correction pattern: the guarded region rewrites one of the
    # compared parameters (`if (lo >= hi) hi = lo + 1`) - the state
    # that triggered the rewrite is the invalid one.
    for store in result.events_of(StoreEvent):
        if store.function != event.function or store.block not in true_region:
            continue
        if store.target_labels.names() & union:
            return negate_op(event.op)
    return event.op


def _infer_transited(result, events, constraints, seen, max_hops) -> None:
    """X ⋄₁ P and X ⋄₂ Q inside one conjunction imply P ⋄ Q."""
    by_function: dict[str, list[BranchCondEvent]] = {}
    for event in events:
        by_function.setdefault(event.function, []).append(event)

    for function, fn_events in sorted(by_function.items()):
        for e1, e2 in combinations(fn_events, 2):
            pair = _common_variable_pair(e1, e2, max_hops)
            if pair is None:
                continue
            if not _conjoined(result, function, e1, e2):
                continue
            (p, p_rel), (q, q_rel) = pair
            rel = _combine(p, p_rel, q, q_rel)
            if rel is not None:
                _add(
                    constraints,
                    seen,
                    ValueRelConstraint(
                        rel[0], e1.location, op=rel[1], other_param=rel[2]
                    ),
                )


def _clean(names: set[str]) -> set[str]:
    return {n for n in names if not n.startswith("__SPEX_")}


def _normalize(event: BranchCondEvent, max_hops):
    """Return (origin, op, params): `origin op (params side)` with the
    unlabeled common variable on the left."""
    left = _clean(event.left.labels.within_hops(max_hops))
    right = _clean(event.right.labels.within_hops(max_hops))
    if event.left.origin is not None and not left and right:
        return (event.left.origin, event.op, right)
    if event.right.origin is not None and not right and left:
        return (event.right.origin, flip_op(event.op), left)
    return None


def _common_variable_pair(e1, e2, max_hops):
    n1 = _normalize(e1, max_hops)
    n2 = _normalize(e2, max_hops)
    if n1 is None or n2 is None:
        return None
    origin1, op1, params1 = n1
    origin2, op2, params2 = n2
    if origin1 != origin2:
        return None
    if params1 & params2:
        return None
    p = sorted(params1)[0]
    q = sorted(params2)[0]
    return ((p, op1), (q, op2))


def _conjoined(result: AnalysisResult, function: str, e1, e2) -> bool:
    """Are the two comparisons part of one condition conjunction?
    True when one branch's block is controlled by the other's true
    edge (how short-circuit && lowers)."""
    cfg = result.cfg(function)
    for a, b in ((e1, e2), (e2, e1)):
        region = cfg.controlled_by(a.block, a.true_label)
        if b.block in region:
            return True
    return False


def _combine(p: str, p_rel: str, q: str, q_rel: str):
    """X p_rel P and X q_rel Q  =>  relation between P and Q.

    `X >= P` places P at-or-below X; `X < Q` places Q strictly above:
    together P < Q.
    """
    below = {">": "strict", ">=": "loose"}  # X > P  => P below X
    above = {"<": "strict", "<=": "loose"}  # X < Q  => Q above X
    if p_rel in below and q_rel in above:
        strict = below[p_rel] == "strict" or above[q_rel] == "strict"
        return (p, "<" if strict else "<=", q)
    if p_rel in above and q_rel in below:
        strict = above[p_rel] == "strict" or below[q_rel] == "strict"
        return (p, ">" if strict else ">=", q)
    return None
