"""SPEX: configuration-constraint inference from source code.

The paper's primary contribution (§2).  Given a subject program, its
mapping annotations and the API knowledge base, the engine:

1. extracts parameter-to-variable mappings (the three toolkits of
   §2.2.1 / Figure 4);
2. runs the dataflow engine over the IR;
3. infers constraints: basic/semantic data types (§2.2.2), data ranges
   with validity (§2.2.3), control dependencies with MAY-belief
   filtering (§2.2.4), and value relationships with bounded
   transitivity (§2.2.5).
"""

from repro.core.annotations import Annotation, parse_annotations
from repro.core.constraints import (
    BasicTypeConstraint,
    Constraint,
    ConstraintKind,
    ConstraintSet,
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    SemanticTypeConstraint,
    ValueRelConstraint,
)
from repro.core.engine import SpexEngine, SpexOptions, SpexReport

__all__ = [
    "Annotation",
    "BasicTypeConstraint",
    "Constraint",
    "ConstraintKind",
    "ConstraintSet",
    "ControlDepConstraint",
    "EnumRangeConstraint",
    "NumericRangeConstraint",
    "SemanticTypeConstraint",
    "SpexEngine",
    "SpexOptions",
    "SpexReport",
    "ValueRelConstraint",
    "parse_annotations",
]
