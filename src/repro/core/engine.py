"""SPEX engine: program + annotations -> constraints.

Two passes over the code, as in the paper (§2.2): the dataflow engine
first resolves each parameter's dataflow and single-parameter facts
(types, ranges); the multi-parameter passes (control dependencies,
value relationships) then work on the recorded events of each
parameter's slice.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.analysis import AnalysisResult, TaintEngine, TaintOptions
from repro.core.annotations import Annotation, parse_annotations
from repro.core.constraints import ConstraintSet
from repro.core.infer_access import infer_access_controls
from repro.core.infer_controldep import infer_control_deps
from repro.core.infer_range import infer_enum_ranges, infer_numeric_ranges
from repro.core.infer_types import (
    case_sensitivity_map,
    infer_basic_types,
    infer_semantic_types,
)
from repro.core.infer_valuerel import infer_value_relationships
from repro.core.mapping import MappingResult, extract_mappings
from repro.ir import build_ir
from repro.ir.function import IRModule
from repro.knowledge import ApiKnowledge, default_knowledge
from repro.lang.program import Program


@dataclass
class SpexOptions:
    """Inference knobs; defaults follow the paper."""

    maybelief_threshold: float = 0.75  # §2.2.4
    value_rel_transit_hops: int = 1  # §2.2.5, "one intermediate variable"
    taint: TaintOptions = field(default_factory=TaintOptions)
    # Disabling passes supports the ablation benchmarks.
    enable_types: bool = True
    enable_ranges: bool = True
    enable_control_deps: bool = True
    enable_value_rels: bool = True
    enable_access_controls: bool = True

    def fingerprint(self) -> str:
        """Stable content hash of every inference knob.

        Two option sets with the same fingerprint produce the same
        constraints for the same program, so the fingerprint is the
        options component of the pipeline's inference-cache key
        (`repro.pipeline.cache`).  `asdict` recurses into nested
        option dataclasses (e.g. `TaintOptions`), so new knobs
        automatically invalidate old cache entries.
        """
        payload = json.dumps(asdict(self), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class SpexReport:
    """Output of one SPEX run over one subject system."""

    system: str
    constraints: ConstraintSet
    analysis: AnalysisResult
    module: IRModule
    mapping: MappingResult
    lines_of_annotation: int = 0
    parameters: set[str] = field(default_factory=set)
    case_sensitivity: dict[str, bool] = field(default_factory=dict)

    def constraint_counts(self) -> dict[str, int]:
        from repro.core.constraints import (
            AccessControlConstraint,
            BasicTypeConstraint,
            ControlDepConstraint,
            EnumRangeConstraint,
            NumericRangeConstraint,
            SemanticTypeConstraint,
            ValueRelConstraint,
        )

        counts = {
            "basic": 0,
            "semantic": 0,
            "range": 0,
            "ctrl_dep": 0,
            "value_rel": 0,
            "access_control": 0,
        }
        for c in self.constraints:
            if isinstance(c, BasicTypeConstraint):
                counts["basic"] += 1
            elif isinstance(c, SemanticTypeConstraint):
                counts["semantic"] += 1
            elif isinstance(c, (NumericRangeConstraint, EnumRangeConstraint)):
                counts["range"] += 1
            elif isinstance(c, ControlDepConstraint):
                counts["ctrl_dep"] += 1
            elif isinstance(c, ValueRelConstraint):
                counts["value_rel"] += 1
            elif isinstance(c, AccessControlConstraint):
                counts["access_control"] += 1
        return counts

    def summary_dict(self) -> dict:
        """Cache-friendly serialization: the JSON-able subset of the
        report (no IR module, no analysis state).

        This is what multi-system aggregate reports and on-disk cache
        manifests persist; the heavyweight members stay in-process.
        """
        return {
            "system": self.system,
            "lines_of_annotation": self.lines_of_annotation,
            "parameters": sorted(self.parameters),
            "case_sensitivity": dict(sorted(self.case_sensitivity.items())),
            "constraint_counts": self.constraint_counts(),
            "constraints": sorted(c.describe() for c in self.constraints),
        }


class SpexEngine:
    """Run constraint inference over one MiniC program."""

    def __init__(
        self,
        program: Program,
        annotations: str | list[Annotation],
        knowledge: ApiKnowledge | None = None,
        options: SpexOptions | None = None,
    ):
        self.program = program
        self.knowledge = knowledge or default_knowledge()
        self.options = options or SpexOptions()
        if isinstance(annotations, str):
            self.annotations, self.loa = parse_annotations(annotations)
        else:
            self.annotations = annotations
            self.loa = 0

    def run(self) -> SpexReport:
        module = build_ir(self.program)
        mapping = extract_mappings(module, self.annotations, self.knowledge)
        engine = TaintEngine(
            module,
            mapping.seeds,
            mapping.getters,
            knowledge=self.knowledge,
            options=self.options.taint,
        )
        analysis = engine.run()

        constraints = ConstraintSet(system=self.program.name)
        if self.options.enable_ranges:
            # Constraints the mapping toolkits produced directly:
            # GUC-table min/max columns and comparison-region enum
            # ladders (the raw value token is only visible there).
            for constraint in mapping.direct_constraints:
                constraints.add(constraint)
        if self.options.enable_types:
            infer_basic_types(
                analysis, constraints, mapping.declared_types, self.knowledge
            )
            infer_semantic_types(analysis, constraints, self.knowledge)
        if self.options.enable_ranges:
            infer_numeric_ranges(analysis, constraints, self.knowledge)
            infer_enum_ranges(analysis, constraints, self.knowledge)
        if self.options.enable_control_deps:
            infer_control_deps(
                analysis, constraints, self.options.maybelief_threshold
            )
        if self.options.enable_value_rels:
            infer_value_relationships(
                analysis, constraints, self.options.value_rel_transit_hops
            )
        if self.options.enable_access_controls:
            infer_access_controls(analysis, constraints, self.knowledge)

        parameters = {
            p for p in analysis.parameters if not p.startswith("__SPEX_")
        }
        parameters |= mapping.declared_params
        sensitivity = dict(mapping.case_sensitivity)
        for param, sensitive in case_sensitivity_map(analysis).items():
            if param.startswith("__SPEX_"):
                continue
            sensitivity[param] = sensitivity.get(param, False) or sensitive
        return SpexReport(
            system=self.program.name,
            constraints=constraints,
            analysis=analysis,
            module=module,
            mapping=mapping,
            lines_of_annotation=self.loa,
            parameters=parameters,
            case_sensitivity=sensitivity,
        )
