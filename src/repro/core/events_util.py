"""Shared event-selection helpers for the inference passes.

The dataflow engine runs in rounds; an event site can appear several
times with monotonically growing label sets.  Inference passes want
one canonical event per site with the richest labels.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.events import (
    BranchCondEvent,
    StringCompareEvent,
    SwitchCaseEvent,
    UsageEvent,
)


def _label_weight(event) -> int:
    if isinstance(event, BranchCondEvent):
        return len(event.left.labels.entries) + len(event.right.labels.entries)
    return len(event.labels.entries)


def canonical_events(events: list, site_key) -> list:
    """One event per site (picked by `site_key`), richest labels win."""
    best: dict[object, object] = {}
    for event in events:
        key = site_key(event)
        current = best.get(key)
        if current is None or _label_weight(event) > _label_weight(current):
            best[key] = event
    return list(best.values())


def canonical_branch_events(events: list[BranchCondEvent]) -> list[BranchCondEvent]:
    return canonical_events(
        events, lambda e: (e.function, e.block, e.location, e.chain)
    )


def branch_event_index(
    events: list[BranchCondEvent],
) -> dict[tuple[str, str], BranchCondEvent]:
    """(function, block) -> canonical branch event."""
    out: dict[tuple[str, str], BranchCondEvent] = {}
    for event in canonical_branch_events(events):
        key = (event.function, event.block)
        current = out.get(key)
        if current is None or _label_weight(event) > _label_weight(current):
            out[key] = event
    return out


def canonical_usages(events: list[UsageEvent]) -> list[UsageEvent]:
    return canonical_events(
        events, lambda e: (e.function, e.location, e.kind, e.chain)
    )


def usages_by_param(
    events: list[UsageEvent], max_hops: int | None = None
) -> dict[str, list[UsageEvent]]:
    out: dict[str, list[UsageEvent]] = defaultdict(list)
    for event in canonical_usages(events):
        names = (
            event.labels.names()
            if max_hops is None
            else event.labels.within_hops(max_hops)
        )
        for name in names:
            out[name].append(event)
    return dict(out)


def flip_op(op: str) -> str:
    return {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}[op]


def negate_op(op: str) -> str:
    return {"<": ">=", ">": "<=", "<=": ">", ">=": "<", "==": "!=", "!=": "=="}[op]
