"""Control-dependency inference (§2.2.4).

(P, V, ⋄) -> Q: parameter Q's *usages* (branches, arithmetic,
library-call arguments; copies and user-call argument passing are not
usage) are dominated by conditions testing parameter P against
constant V.  Conditions guarding the call sites through which the
usage was reached count too (the PostgreSQL fsync example).

Blindly recording every dominating condition over-fits (the VSFTP
listen/listen_ipv6 example), so dependencies are filtered by MAY-belief
confidence: the fraction of Q's usages that carry the dependency must
reach a threshold (0.75 in the paper, after [Engler et al. SOSP'01]).
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis import AnalysisResult
from repro.analysis.events import BranchCondEvent, UsageEvent
from repro.core.constraints import ConstraintSet, ControlDepConstraint
from repro.core.events_util import (
    branch_event_index,
    flip_op,
    negate_op,
    usages_by_param,
)

_DEP_MAX_HOPS = 1


def infer_control_deps(
    result: AnalysisResult,
    constraints: ConstraintSet,
    threshold: float = 0.75,
) -> None:
    branches = branch_event_index(result.events_of(BranchCondEvent))
    usages = usages_by_param(result.events_of(UsageEvent))

    for param, param_usages in sorted(usages.items()):
        if param.startswith("__SPEX_"):
            continue
        candidates: dict[tuple[str, str, object], dict] = defaultdict(
            lambda: {"count": 0, "loc": None}
        )
        for usage in param_usages:
            deps = _conditions_for_usage(result, branches, usage, param)
            for (dep_param, op, value), loc in deps.items():
                entry = candidates[(dep_param, op, value)]
                entry["count"] += 1
                if entry["loc"] is None:
                    entry["loc"] = loc
        total = len(param_usages)
        if total == 0:
            continue
        for (dep_param, op, value), entry in sorted(
            candidates.items(), key=lambda kv: str(kv[0])
        ):
            confidence = entry["count"] / total
            if confidence + 1e-9 < threshold:
                continue
            constraints.add(
                ControlDepConstraint(
                    param,
                    entry["loc"],
                    dep_param=dep_param,
                    op=op,
                    value=value,
                    confidence=confidence,
                )
            )


def _conditions_for_usage(
    result: AnalysisResult,
    branches: dict,
    usage: UsageEvent,
    param: str,
) -> dict[tuple[str, str, object], object]:
    """All (P, op, V) conditions guarding one usage of `param`.

    Walks the intra-procedural control dependences of the usage block
    plus, for each call-chain hop, the control dependences of the call
    site in its caller.
    """
    found: dict[tuple[str, str, object], object] = {}
    hops = [(usage.function, usage.block)]
    for site in usage.chain:
        hops.append((site.caller, site.block))
    for function, block in hops:
        if not result.module.has_function(function):
            continue
        cfg = result.cfg(function)
        # Hash-ordered set: iterate sorted so the location recorded for
        # a repeated (P, op, V) never depends on the hash seed.
        for cdep in sorted(
            cfg.transitive_controlling(block),
            key=lambda d: (d.branch_block, d.edge_label),
        ):
            event = branches.get((function, cdep.branch_block))
            if event is None:
                continue
            oriented = _orient(event, param)
            if oriented is None:
                continue
            dep_param, op, value = oriented
            if cdep.edge_label == event.false_label:
                op = negate_op(op)
            elif cdep.edge_label != event.true_label:
                continue
            found.setdefault((dep_param, op, value), event.location)
    # A condition reachable through both of its own edges says nothing:
    # drop (P, op, V) when its negation was also collected (transitive
    # closure through sibling branches produces such vacuous pairs).
    for (dep_param, op, value) in list(found):
        if (dep_param, negate_op(op), value) in found:
            del found[(dep_param, op, value)]
    return found


def _orient(event: BranchCondEvent, exclude_param: str):
    """(P, op, V) with P on the left; None if not a P-vs-const test."""
    left = event.left.labels.within_hops(_DEP_MAX_HOPS) - {exclude_param}
    right = event.right.labels.within_hops(_DEP_MAX_HOPS) - {exclude_param}
    left = {p for p in left if not p.startswith("__SPEX_")}
    right = {p for p in right if not p.startswith("__SPEX_")}
    if left and event.right.is_const and not right:
        return (sorted(left)[0], event.op, event.right.const)
    if right and event.left.is_const and not left:
        return (sorted(right)[0], flip_op(event.op), event.left.const)
    return None
