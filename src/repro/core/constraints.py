"""Constraint data model.

"A constraint for a configuration parameter specifies its data type,
format, value range, dependency and correlation with other parameters,
etc., in order to configure the parameter correctly." (§1.2)

Constraints are *attributes* (about one parameter: types, ranges) or
*correlations* (about several: control dependencies, value
relationships) - §2.1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lang import types as ct
from repro.lang.source import Location
from repro.knowledge import SemanticType, Unit


class ConstraintKind(enum.Enum):
    BASIC_TYPE = "basic type"
    SEMANTIC_TYPE = "semantic type"
    DATA_RANGE = "data range"
    CONTROL_DEP = "control dependency"
    VALUE_REL = "value relationship"
    ACCESS_CONTROL = "access control"

    def __str__(self) -> str:
        return self.value


class Behavior:
    """What the program does when a range segment is entered."""

    NONE = ""
    EXIT = "exit"
    ERROR_RETURN = "error_return"
    RESET = "reset"  # parameter silently overwritten


@dataclass(frozen=True)
class Constraint:
    """Base: all constraints name their parameter and evidence site."""

    param: str
    location: Location

    @property
    def kind(self) -> ConstraintKind:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class BasicTypeConstraint(Constraint):
    """Low-level representation: '32-bit integer', 'string', ..."""

    type: ct.CType = ct.INT

    @property
    def kind(self) -> ConstraintKind:
        return ConstraintKind.BASIC_TYPE

    def describe(self) -> str:
        if isinstance(self.type, ct.IntType):
            sign = "" if self.type.signed else "unsigned "
            return f"{self.param}: {sign}{self.type.bits}-bit integer"
        if self.type.is_string:
            return f"{self.param}: string"
        if isinstance(self.type, ct.FloatType):
            return f"{self.param}: {self.type.bits}-bit float"
        if isinstance(self.type, ct.BoolType):
            return f"{self.param}: boolean"
        return f"{self.param}: {self.type}"


@dataclass(frozen=True)
class SemanticTypeConstraint(Constraint):
    """High-level meaning: FILE, PORT, USER... optionally with a unit."""

    semantic: SemanticType = SemanticType.PATH
    unit: Unit | None = None
    case_sensitive: bool | None = None  # for string-valued semantics

    @property
    def kind(self) -> ConstraintKind:
        return ConstraintKind.SEMANTIC_TYPE

    def describe(self) -> str:
        extra = f" (unit: {self.unit})" if self.unit is not None else ""
        return f"{self.param}: {self.semantic}{extra}"


@dataclass(frozen=True)
class NumericRangeConstraint(Constraint):
    """A single valid interval with out-of-range behaviours.

    ``valid_lo``/``valid_hi`` are inclusive; None means unbounded.
    ``below_behavior``/``above_behavior`` record what the program does
    outside the interval (exit / error return / silent reset / none),
    which guides injection and silent-violation detection.
    """

    valid_lo: float | None = None
    valid_hi: float | None = None
    below_behavior: str = Behavior.NONE
    above_behavior: str = Behavior.NONE

    @property
    def kind(self) -> ConstraintKind:
        return ConstraintKind.DATA_RANGE

    def describe(self) -> str:
        lo = "-inf" if self.valid_lo is None else str(self.valid_lo)
        hi = "+inf" if self.valid_hi is None else str(self.valid_hi)
        return f"{self.param}: valid range [{lo}, {hi}]"

    def contains(self, value: float) -> bool:
        if self.valid_lo is not None and value < self.valid_lo:
            return False
        if self.valid_hi is not None and value > self.valid_hi:
            return False
        return True


@dataclass(frozen=True)
class EnumRangeConstraint(Constraint):
    """An enumerated set of acceptable values."""

    values: tuple[object, ...] = ()
    case_sensitive: bool = False
    default_behavior: str = Behavior.NONE  # what the else/default does
    silently_overruled: bool = False

    @property
    def kind(self) -> ConstraintKind:
        return ConstraintKind.DATA_RANGE

    def describe(self) -> str:
        vals = ", ".join(str(v) for v in self.values)
        sens = "case-sensitive" if self.case_sensitive else "case-insensitive"
        return f"{self.param}: one of {{{vals}}} ({sens})"

    def contains(self, value: object) -> bool:
        if isinstance(value, str) and not self.case_sensitive:
            return value.lower() in {
                str(v).lower() for v in self.values
            }
        return value in self.values


@dataclass(frozen=True)
class ControlDepConstraint(Constraint):
    """(P, V, ⋄) -> Q: parameter `param` (Q) only takes effect when
    `dep_param` (P) satisfies P ⋄ V (§2.2.4)."""

    dep_param: str = ""
    op: str = "!="
    value: object = 0
    confidence: float = 1.0

    @property
    def kind(self) -> ConstraintKind:
        return ConstraintKind.CONTROL_DEP

    def describe(self) -> str:
        return (
            f"{self.param} takes effect only when "
            f"{self.dep_param} {self.op} {self.value} "
            f"(confidence {self.confidence:.2f})"
        )


@dataclass(frozen=True)
class ValueRelConstraint(Constraint):
    """param ⋄ other_param, e.g. ft_min_word_len < ft_max_word_len."""

    op: str = "<"
    other_param: str = ""

    @property
    def kind(self) -> ConstraintKind:
        return ConstraintKind.VALUE_REL

    def describe(self) -> str:
        return f"{self.param} {self.op} {self.other_param}"

    def normalized(self) -> "ValueRelConstraint":
        """Canonical orientation (lexicographically smaller param first)."""
        if self.param <= self.other_param:
            return self
        flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}
        return ValueRelConstraint(
            param=self.other_param,
            location=self.location,
            op=flip[self.op],
            other_param=self.param,
        )


@dataclass(frozen=True)
class AccessControlConstraint(Constraint):
    """The program requires an access right on the object `param`
    names: a path the configured identity must be able to read or
    write, or a permission-mode value the program installs verbatim
    (`chmod`).  Shen's survey calls these ACL/ownership constraints;
    they are attributes of one parameter but their satisfaction
    depends on the *environment* (file modes, owners), not the value's
    shape alone.

    ``operation`` is ``"read"``, ``"write"`` or ``"mode"``;
    ``user_param`` names the parameter supplying the acting identity
    when the program derives it from configuration (empty when the
    program runs as its boot user).
    """

    operation: str = "read"
    user_param: str = ""

    @property
    def kind(self) -> ConstraintKind:
        return ConstraintKind.ACCESS_CONTROL

    def describe(self) -> str:
        if self.operation == "mode":
            return f"{self.param}: permission mode installed via chmod"
        actor = self.user_param if self.user_param else "the running user"
        return f"{self.param}: must be {self.operation}able by {actor}"


@dataclass
class ConstraintSet:
    """All constraints inferred for one subject system."""

    system: str
    constraints: list[Constraint] = field(default_factory=list)
    parameters: set[str] = field(default_factory=set)

    def add(self, constraint: Constraint) -> None:
        self.constraints.append(constraint)
        self.parameters.add(constraint.param)

    def of_kind(self, kind: ConstraintKind) -> list[Constraint]:
        return [c for c in self.constraints if c.kind is kind]

    def for_param(self, param: str) -> list[Constraint]:
        return [c for c in self.constraints if c.param == param]

    def basic_types(self) -> list[BasicTypeConstraint]:
        return [c for c in self.constraints if isinstance(c, BasicTypeConstraint)]

    def semantic_types(self) -> list[SemanticTypeConstraint]:
        return [c for c in self.constraints if isinstance(c, SemanticTypeConstraint)]

    def ranges(self) -> list[Constraint]:
        return [
            c
            for c in self.constraints
            if isinstance(c, (NumericRangeConstraint, EnumRangeConstraint))
        ]

    def control_deps(self) -> list[ControlDepConstraint]:
        return [c for c in self.constraints if isinstance(c, ControlDepConstraint)]

    def value_rels(self) -> list[ValueRelConstraint]:
        return [c for c in self.constraints if isinstance(c, ValueRelConstraint)]

    def access_controls(self) -> list[AccessControlConstraint]:
        return [
            c
            for c in self.constraints
            if isinstance(c, AccessControlConstraint)
        ]

    def count_by_kind(self) -> dict[ConstraintKind, int]:
        out: dict[ConstraintKind, int] = {}
        for c in self.constraints:
            out[c.kind] = out.get(c.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)
