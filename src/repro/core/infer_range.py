"""Data-range inference (§2.2.3).

Numeric ranges come from comparisons of a parameter against constants
in conditional branches; enumerative ranges from ``switch`` statements
and ``strcmp``-ladders.  For every inferred range segment, SPEX
decides validity by the behaviour of the guarded region: "If in the
branch block, the program exits, aborts, returns error code, or resets
the parameter, SPEX treats the range as invalid."  The default of a
switch / the final else of a ladder is also invalid.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis import AnalysisResult
from repro.analysis.events import (
    BranchCondEvent,
    StoreEvent,
    StringCompareEvent,
    SwitchCaseEvent,
)
from repro.core.constraints import (
    Behavior,
    ConstraintSet,
    EnumRangeConstraint,
    NumericRangeConstraint,
)
from repro.core.events_util import canonical_branch_events, canonical_events, flip_op
from repro.ir.instructions import Call, Ret
from repro.ir.values import Const
from repro.knowledge import ApiKnowledge
from repro.lang.source import Location

_MAX_HOPS = 2  # `int v = atoi(arg); if (v < 1)` is one copy away


@dataclass
class RegionBehavior:
    """What a guarded region does (worst behaviour wins)."""

    behavior: str = Behavior.NONE

    @property
    def is_invalid(self) -> bool:
        return self.behavior != Behavior.NONE


def region_behavior(
    result: AnalysisResult,
    knowledge: ApiKnowledge,
    function: str,
    blocks: set[str],
    param: str,
    reset_targets: set | None = None,
) -> RegionBehavior:
    """Scan a control region for exit / error-return / param-reset.

    `reset_targets` are storage locations known to hold the parameter
    (the destinations the match arms of an enum ladder write); a
    constant store to one of them inside the region is a reset even
    though the tainted value itself died at the comparison.
    """
    if not blocks:
        return RegionBehavior()
    fn = result.module.function(function)
    behavior = Behavior.NONE
    for label in blocks:
        block = fn.blocks.get(label)
        if block is None:
            continue
        for inst in block.instructions:
            if isinstance(inst, Call):
                spec = knowledge.get(inst.callee)
                if spec is not None and spec.exits_process:
                    return RegionBehavior(Behavior.EXIT)
            if isinstance(inst, Ret) and _is_error_return(inst):
                behavior = behavior or Behavior.ERROR_RETURN
    for store in result.events_of(StoreEvent):
        if store.function != function or store.block not in blocks:
            continue
        if not store.src_is_const:
            continue
        # Only a store into the parameter's own storage (hop count 0)
        # is a reset; clamping a local working copy does not change
        # the configured value.
        if param in store.target_labels.within_hops(0):
            behavior = Behavior.RESET
        elif reset_targets and store.target in reset_targets:
            behavior = Behavior.RESET
    return RegionBehavior(behavior)


def _is_error_return(inst: Ret) -> bool:
    if inst.value is None:
        return False
    if isinstance(inst.value, Const):
        value = inst.value.value
        if value is None:
            return True  # return NULL
        if isinstance(value, int) and value < 0:
            return True
    return False


def infer_numeric_ranges(
    result: AnalysisResult,
    constraints: ConstraintSet,
    knowledge: ApiKnowledge,
) -> None:
    # Per parameter: accumulate invalid-below / invalid-above bounds.
    bounds: dict[str, dict] = defaultdict(
        lambda: {
            "lo": None,
            "hi": None,
            "below": Behavior.NONE,
            "above": Behavior.NONE,
            "loc": None,
        }
    )
    for event in canonical_branch_events(result.events_of(BranchCondEvent)):
        oriented = _orient_numeric(event)
        if oriented is None:
            continue
        param, op, const = oriented
        if not isinstance(const, (int, float)) or isinstance(const, bool):
            continue
        cfg = result.cfg(event.function)
        for edge, holds_op in (
            (event.true_label, op),
            (event.false_label, _negate(op)),
        ):
            region = cfg.controlled_by(event.block, edge)
            behavior = region_behavior(result, knowledge, event.function, region, param)
            if not behavior.is_invalid:
                continue
            _mark_invalid(bounds[param], holds_op, const, behavior.behavior, event.location)

    for param, info in sorted(bounds.items()):
        if info["lo"] is None and info["hi"] is None:
            continue
        constraints.add(
            NumericRangeConstraint(
                param,
                info["loc"] or Location("<inferred>", 0, 0),
                valid_lo=info["lo"],
                valid_hi=info["hi"],
                below_behavior=info["below"],
                above_behavior=info["above"],
            )
        )


def _orient_numeric(event: BranchCondEvent):
    """Return (param, op, const) with the parameter on the left."""
    left_names = event.left.labels.within_hops(_MAX_HOPS)
    right_names = event.right.labels.within_hops(_MAX_HOPS)
    if left_names and event.right.is_const and not right_names:
        return (sorted(left_names)[0], event.op, event.right.const)
    if right_names and event.left.is_const and not left_names:
        return (sorted(right_names)[0], flip_op(event.op), event.left.const)
    return None


def _negate(op: str) -> str:
    return {"<": ">=", ">": "<=", "<=": ">", ">=": "<", "==": "!=", "!=": "=="}[op]


def _mark_invalid(info: dict, op: str, const, behavior: str, loc: Location) -> None:
    """`param op const` is an invalid region with `behavior`."""
    if info["loc"] is None:
        info["loc"] = loc
    if op == "<":
        info["lo"] = _max(info["lo"], const)
        info["below"] = behavior
    elif op == "<=":
        info["lo"] = _max(info["lo"], const + 1)
        info["below"] = behavior
    elif op == ">":
        info["hi"] = _min(info["hi"], const)
        info["above"] = behavior
    elif op == ">=":
        info["hi"] = _min(info["hi"], const - 1)
        info["above"] = behavior
    # == / != invalid points are not representable in the single
    # interval model and are rare in practice; skipped.


def _max(current, value):
    return value if current is None else max(current, value)


def _min(current, value):
    return value if current is None else min(current, value)


def infer_enum_ranges(
    result: AnalysisResult,
    constraints: ConstraintSet,
    knowledge: ApiKnowledge,
) -> None:
    _infer_switch_enums(result, constraints, knowledge)
    _infer_strcmp_ladders(result, constraints, knowledge)


def _infer_switch_enums(result, constraints, knowledge) -> None:
    for event in canonical_events(
        result.events_of(SwitchCaseEvent), lambda e: (e.function, e.block)
    ):
        values = tuple(v for v, _ in event.cases)
        if not values:
            continue
        param = sorted(event.labels.within_hops(_MAX_HOPS) or event.labels.names())[0]
        behavior = Behavior.NONE
        if event.default_label is not None:
            cfg = result.cfg(event.function)
            region = cfg.controlled_by(event.block, event.default_label) | {
                event.default_label
            }
            behavior = region_behavior(
                result, knowledge, event.function, region, param
            ).behavior
        constraints.add(
            EnumRangeConstraint(
                param,
                event.location,
                values=values,
                case_sensitive=True,
                default_behavior=behavior,
                silently_overruled=behavior == Behavior.RESET,
            )
        )


def _infer_strcmp_ladders(result, constraints, knowledge) -> None:
    """if/else-if ladders of strcmp(param, "value") checks."""
    branch_index = {}
    for event in canonical_branch_events(result.events_of(BranchCondEvent)):
        if event.cond_temp >= 0:
            branch_index[(event.function, event.cond_temp)] = event

    ladders: dict[tuple[str, str], list] = defaultdict(list)
    for compare in canonical_events(
        result.events_of(StringCompareEvent),
        lambda e: (e.function, e.location, e.const_other),
    ):
        if compare.const_other is None:
            continue
        names = compare.labels.within_hops(_MAX_HOPS)
        if not names:
            continue
        param = sorted(names)[0]
        if param.startswith("__SPEX_"):
            continue
        ladders[(compare.function, param)].append(compare)

    store_events = result.events_of(StoreEvent)
    for (function, param), compares in sorted(ladders.items()):
        values = tuple(dict.fromkeys(c.const_other for c in compares))
        case_sensitive = any(c.case_sensitive for c in compares)
        cfg = result.cfg(function)
        # Destinations the match arms write: a const store to one of
        # them in the final else is a silent overrule (Figure 6c).
        match_targets: set = set()
        for compare in compares:
            branch = branch_index.get((function, compare.dest_temp))
            if branch is None:
                continue
            eq_edge = _match_edge(branch)
            if eq_edge is None:
                continue
            eq_region = cfg.controlled_by(branch.block, eq_edge)
            for store in store_events:
                if store.function == function and store.block in eq_region:
                    match_targets.add(store.target)
        # The final else: the non-match region of the last compare in
        # the ladder that is not followed by further compares.
        last = max(compares, key=lambda c: (c.location.line, c.location.column))
        behavior = Behavior.NONE
        branch = branch_index.get((function, last.dest_temp))
        if branch is not None:
            neq_edge = _nonmatch_edge(branch)
            if neq_edge is not None:
                region = cfg.controlled_by(branch.block, neq_edge)
                behavior = region_behavior(
                    result, knowledge, function, region, param, match_targets
                ).behavior
        constraints.add(
            EnumRangeConstraint(
                param,
                compares[0].location,
                values=values,
                case_sensitive=case_sensitive,
                default_behavior=behavior,
                silently_overruled=behavior == Behavior.RESET,
            )
        )


def _nonmatch_edge(branch: BranchCondEvent) -> str | None:
    if branch.right.is_const and branch.right.const == 0:
        if branch.op == "==":
            return branch.false_label
        if branch.op == "!=":
            return branch.true_label
    return None


def _match_edge(branch: BranchCondEvent) -> str | None:
    if branch.right.is_const and branch.right.const == 0:
        if branch.op == "==":
            return branch.true_label
        if branch.op == "!=":
            return branch.false_label
    return None
