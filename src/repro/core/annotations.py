"""The annotation language of Figure 4.

Developers annotate the *mapping interface*, not every mapping pair
(§2.2.1).  The concrete syntax follows the paper's figure:

Structure-based (direct)::

    { @STRUCT = ConfigureNamesInt
      @PAR = [config_int, 1]
      @VAR = [config_int, 3] }

Structure-based (parsing function)::

    { @STRUCT = core_cmds
      @PAR = [command_rec, 1]
      @VAR = ([command_rec, 2], $arg) }

Comparison-based::

    { @PARSER = loadServerConfig
      @PAR = $key
      @VAR = $value }

Container-based::

    { @GETTER = get_i32
      @PAR = 1
      @VAR = $RET }

Field indices are 1-based, matching the figure.  Lines of annotation
(LoA, Table 4) = number of ``@`` lines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class AnnotationError(ValueError):
    pass


@dataclass(frozen=True)
class StructAnnotation:
    """Mapping table `table`: parameter name in field `par_index`,
    config variable in field `var_index`.  If `handler_arg` is set the
    var field holds a parsing function and the value arrives in its
    parameter named `handler_arg` (Figure 4b).

    `min_index`/`max_index` mark GUC-style tables (§5.2: Storage-A,
    MySQL and PostgreSQL keep per-parameter minimum/maximum in the
    mapping structure itself); the toolkit lifts them into range
    constraints directly."""

    table: str
    struct: str
    par_index: int  # 1-based
    var_index: int  # 1-based
    handler_arg: str | None = None
    min_index: int | None = None
    max_index: int | None = None

    @property
    def convention(self) -> str:
        return "structure"


@dataclass(frozen=True)
class ParserAnnotation:
    """Comparison-based parser `function` matching names from variable
    `par_var` and reading values from variable `var_var` (Figure 4c)."""

    function: str
    par_var: str
    var_var: str

    @property
    def convention(self) -> str:
        return "comparison"


@dataclass(frozen=True)
class GetterAnnotation:
    """Container getter `function`: parameter name is string argument
    number `par_index` (1-based), value is the return (Figure 4d)."""

    function: str
    par_index: int = 1

    @property
    def convention(self) -> str:
        return "container"


Annotation = StructAnnotation | ParserAnnotation | GetterAnnotation

_FIELD_REF = re.compile(r"\[\s*(\w+)\s*,\s*(\d+)\s*\]")
_FUNC_VAR = re.compile(r"\(\s*\[\s*(\w+)\s*,\s*(\d+)\s*\]\s*,\s*\$(\w+)\s*\)")


def parse_annotations(text: str) -> tuple[list[Annotation], int]:
    """Parse annotation blocks; returns (annotations, lines_of_annotation)."""
    annotations: list[Annotation] = []
    loa = sum(1 for line in text.splitlines() if "@" in line)
    for block in _split_blocks(text):
        annotations.append(_parse_block(block))
    return annotations, loa


def _split_blocks(text: str) -> list[dict[str, str]]:
    blocks: list[dict[str, str]] = []
    current: dict[str, str] | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("{"):
            current = {}
            line = line[1:].strip()
        if current is None and line.startswith("@"):
            current = {}
        closing = line.endswith("}")
        if closing:
            line = line[:-1].strip()
        if line.startswith("@") and current is not None:
            # Several @KEY = VALUE pairs may share one line.
            for part in re.split(r"\s+(?=@)", line):
                if not part.startswith("@"):
                    continue
                key, _, value = part.partition("=")
                current[key.strip().lstrip("@").upper()] = value.strip()
        if closing and current is not None:
            blocks.append(current)
            current = None
    if current:
        blocks.append(current)
    return blocks


def _parse_block(block: dict[str, str]) -> Annotation:
    if "STRUCT" in block:
        return _parse_struct(block)
    if "PARSER" in block:
        return _parse_parser(block)
    if "GETTER" in block:
        return _parse_getter(block)
    raise AnnotationError(f"annotation block needs @STRUCT/@PARSER/@GETTER: {block}")


def _parse_struct(block: dict[str, str]) -> StructAnnotation:
    table = block["STRUCT"]
    par = _FIELD_REF.search(block.get("PAR", ""))
    if par is None:
        raise AnnotationError(f"@PAR must be [struct, index]: {block.get('PAR')}")

    def _optional_index(key: str) -> int | None:
        ref = _FIELD_REF.search(block.get(key, ""))
        return int(ref.group(2)) if ref else None

    min_index = _optional_index("MIN")
    max_index = _optional_index("MAX")
    var_text = block.get("VAR", "")
    func_var = _FUNC_VAR.search(var_text)
    if func_var is not None:
        return StructAnnotation(
            table=table,
            struct=par.group(1),
            par_index=int(par.group(2)),
            var_index=int(func_var.group(2)),
            handler_arg=func_var.group(3),
            min_index=min_index,
            max_index=max_index,
        )
    var = _FIELD_REF.search(var_text)
    if var is None:
        raise AnnotationError(f"@VAR must be [struct, index] or ([...], $arg): {var_text}")
    return StructAnnotation(
        table=table,
        struct=par.group(1),
        par_index=int(par.group(2)),
        var_index=int(var.group(2)),
        min_index=min_index,
        max_index=max_index,
    )


def _parse_parser(block: dict[str, str]) -> ParserAnnotation:
    par = block.get("PAR", "").strip()
    var = block.get("VAR", "").strip()
    if not par.startswith("$") or not var.startswith("$"):
        raise AnnotationError("@PARSER blocks need $-prefixed @PAR and @VAR")
    return ParserAnnotation(
        function=block["PARSER"],
        par_var=par[1:],
        var_var=var[1:],
    )


def _parse_getter(block: dict[str, str]) -> GetterAnnotation:
    par = block.get("PAR", "1").strip()
    return GetterAnnotation(function=block["GETTER"], par_index=int(par))
