"""Inference-accuracy scoring against ground truth (Table 12).

The paper's authors "manually and carefully examined all of the 3800
constraints" - here each subject system ships a ground-truth constraint
list, and accuracy per kind = true inferred / all inferred.

The same module carries the generic `PrecisionRecall` scorer the
fleet-scale config checker grounds itself with: predicted-bad configs
versus actually-bad configs over a synthetic corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.core.constraints import (
    AccessControlConstraint,
    BasicTypeConstraint,
    Constraint,
    ConstraintSet,
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    SemanticTypeConstraint,
    ValueRelConstraint,
)


@dataclass(frozen=True)
class TruthEntry:
    """One ground-truth constraint in comparable form."""

    param: str
    kind: str  # basic | semantic | range | ctrl_dep | value_rel | access_control
    detail: object = None


def truth_basic(param: str, type_str: str) -> TruthEntry:
    return TruthEntry(param, "basic", type_str)


def truth_semantic(param: str, semantic: str) -> TruthEntry:
    return TruthEntry(param, "semantic", semantic)


def truth_range(param: str) -> TruthEntry:
    return TruthEntry(param, "range")


def truth_ctrl_dep(param: str, dep_param: str) -> TruthEntry:
    return TruthEntry(param, "ctrl_dep", dep_param)


def truth_value_rel(param: str, other: str) -> TruthEntry:
    pair = tuple(sorted((param, other)))
    return TruthEntry(pair[0], "value_rel", pair[1])


def truth_access(param: str, operation: str) -> TruthEntry:
    return TruthEntry(param, "access_control", operation)


def _normalize_type(type_obj) -> str:
    from repro.lang import types as ct

    if type_obj.is_string:
        return "string"
    if isinstance(type_obj, ct.BoolType):
        return "bool"
    if isinstance(type_obj, ct.IntType):
        return "int" if type_obj.bits == 32 else str(type_obj)
    return str(type_obj)


def _comparable(constraint: Constraint) -> TruthEntry | None:
    if isinstance(constraint, BasicTypeConstraint):
        return truth_basic(constraint.param, _normalize_type(constraint.type))
    if isinstance(constraint, SemanticTypeConstraint):
        return truth_semantic(constraint.param, str(constraint.semantic))
    if isinstance(constraint, (NumericRangeConstraint, EnumRangeConstraint)):
        return truth_range(constraint.param)
    if isinstance(constraint, ControlDepConstraint):
        return truth_ctrl_dep(constraint.param, constraint.dep_param)
    if isinstance(constraint, ValueRelConstraint):
        return truth_value_rel(constraint.param, constraint.other_param)
    if isinstance(constraint, AccessControlConstraint):
        return truth_access(constraint.param, constraint.operation)
    return None


@dataclass
class AccuracyReport:
    """Per-kind accuracy for one system."""

    system: str
    per_kind: dict[str, tuple[int, int]] = field(default_factory=dict)
    false_positives: list[Constraint] = field(default_factory=list)

    def accuracy(self, kind: str) -> float | None:
        true_count, total = self.per_kind.get(kind, (0, 0))
        if total == 0:
            return None
        return true_count / total

    def overall(self) -> float | None:
        true_total = sum(t for t, _ in self.per_kind.values())
        total = sum(n for _, n in self.per_kind.values())
        if total == 0:
            return None
        return true_total / total


@dataclass(frozen=True)
class PrecisionRecall:
    """Binary-classification agreement between a predictor and truth."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float | None:
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else None

    @property
    def recall(self) -> float | None:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else None

    @property
    def f1(self) -> float | None:
        p, r = self.precision, self.recall
        if p is None or r is None or (p + r) == 0:
            return None
        return 2 * p * r / (p + r)

    def __add__(self, other: "PrecisionRecall") -> "PrecisionRecall":
        return PrecisionRecall(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
        )

    def summary_dict(self) -> dict:
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def precision_recall(
    predicted: Iterable[Hashable], actual: Iterable[Hashable]
) -> PrecisionRecall:
    """Score a predicted-positive set against the actual-positive set
    (e.g. checker-flagged config ids against planted-mistake ids)."""
    predicted_set, actual_set = set(predicted), set(actual)
    return PrecisionRecall(
        true_positives=len(predicted_set & actual_set),
        false_positives=len(predicted_set - actual_set),
        false_negatives=len(actual_set - predicted_set),
    )


def score_accuracy(
    system: str,
    constraints: ConstraintSet,
    truth: list[TruthEntry],
) -> AccuracyReport:
    truth_set = set(truth)
    report = AccuracyReport(system=system)
    counters: dict[str, list[int]] = {}
    for constraint in constraints:
        entry = _comparable(constraint)
        if entry is None:
            continue
        bucket = counters.setdefault(entry.kind, [0, 0])
        bucket[1] += 1
        if entry in truth_set:
            bucket[0] += 1
        else:
            report.false_positives.append(constraint)
    report.per_kind = {k: (v[0], v[1]) for k, v in counters.items()}
    return report
