"""Access-control constraint inference.

Shen's survey (and Liu et al.'s 2024 re-study of real-world
environment mistakes) puts ACL/ownership/permission errors alongside
the paper's five constraint classes; this pass adds them.  Evidence is
API contact, like semantic-type inference: a tainted path reaching an
access-asserting call (``check_read_access``/``check_write_access``)
becomes "this path must be readable/writable by the acting identity",
and a tainted value reaching ``chmod``'s mode argument becomes "this
parameter is installed verbatim as a permission mode".

When the acting identity is itself configuration (the call's user
argument carries a tainted parameter), the constraint records that
``user_param`` so the checker can judge path and identity *together* -
the pair is what real ACL mistakes break.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis import AnalysisResult
from repro.analysis.events import CallArgEvent
from repro.core.constraints import AccessControlConstraint, ConstraintSet
from repro.core.events_util import canonical_events
from repro.knowledge import ApiKnowledge
from repro.lang.source import Location

# chmod(path, mode): the *mode* argument is the constrained value.
_MODE_ARG = 1
_PATH_ARG = 0
_USER_ARG = 1


def infer_access_controls(
    result: AnalysisResult,
    constraints: ConstraintSet,
    knowledge: ApiKnowledge,
) -> None:
    # Collect per call site so path and user arguments of one call can
    # be paired: site -> arg_index -> tainted parameter names.
    sites: dict[tuple, dict[int, set[str]]] = defaultdict(dict)
    locations: dict[tuple, Location] = {}
    ops: dict[tuple, str] = {}
    for event in canonical_events(
        result.events_of(CallArgEvent),
        lambda e: (e.function, e.location, e.callee, e.arg_index),
    ):
        spec = knowledge.get(event.callee)
        if spec is None or not spec.access_op:
            continue
        site = (event.function, _loc_key(event.location), event.callee)
        sites[site].setdefault(event.arg_index, set()).update(
            event.labels.names()
        )
        locations[site] = event.location
        ops[site] = spec.access_op

    # Dedup on constraint identity, first site (in location order) wins.
    seen: set[tuple[str, str, str]] = set()
    for site in sorted(sites, key=lambda s: (s[1], s[0], s[2])):
        args = sites[site]
        location = locations[site]
        operation = ops[site]
        if operation == "mode":
            for param in sorted(args.get(_MODE_ARG, ())):
                _add(constraints, seen, param, location, "mode", "")
            continue
        user_params = sorted(args.get(_USER_ARG, ()))
        user_param = user_params[0] if user_params else ""
        for param in sorted(args.get(_PATH_ARG, ())):
            _add(constraints, seen, param, location, operation, user_param)


def _add(
    constraints: ConstraintSet,
    seen: set[tuple[str, str, str]],
    param: str,
    location: Location,
    operation: str,
    user_param: str,
) -> None:
    identity = (param, operation, user_param)
    if identity in seen:
        return
    seen.add(identity)
    constraints.add(
        AccessControlConstraint(
            param, location, operation=operation, user_param=user_param
        )
    )


def _loc_key(loc: Location) -> tuple:
    return (loc.filename, loc.line, loc.column)
