"""The three mapping toolkits (§2.2.1, Figure 4).

Starting from interface annotations, each toolkit extracts the
parameter-to-variable mapping as key-value pairs
("parameter name", variable), realized as taint seeds:

* **structure** - reads the mapping table's initializer statically;
* **comparison** - pre-taints the parser's key/value variables, then
  pairs each ``strcmp(key, "name")`` dispatch with the value store it
  guards;
* **container**  - registers the getter so string-keyed calls taint
  their results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import (
    BranchCondEvent,
    GetterSpec,
    GlobalSeed,
    ParamSeed,
    StoreEvent,
    StringCompareEvent,
    TaintEngine,
)
from repro.core.annotations import (
    Annotation,
    GetterAnnotation,
    ParserAnnotation,
    StructAnnotation,
)
from repro.ir.cfg import CfgInfo
from repro.ir.function import IRModule
from repro.ir.values import FuncRef
from repro.knowledge import ApiKnowledge
from repro.lang import types as ct
from repro.lang.ast_nodes import Identifier, InitList, Member, StringLiteral, Unary


class MappingError(ValueError):
    pass


@dataclass
class MappingResult:
    """Seeds and getters extracted from all annotations."""

    seeds: list = field(default_factory=list)
    getters: list[GetterSpec] = field(default_factory=list)
    declared_params: set[str] = field(default_factory=set)
    conventions: set[str] = field(default_factory=set)
    # param -> declared C type of its storage variable (basic-type hint)
    declared_types: dict[str, ct.CType] = field(default_factory=dict)
    # Constraints the toolkits can produce directly: GUC-table min/max
    # columns and value-token enum ladders inside comparison regions.
    direct_constraints: list = field(default_factory=list)
    # param -> case sensitivity observed on the value token
    case_sensitivity: dict[str, bool] = field(default_factory=dict)
    # param -> unsafe transformation APIs on its parse path (the value
    # token's flow through atoi/sscanf before reaching storage)
    unsafe_parse: dict[str, set[str]] = field(default_factory=dict)


def extract_mappings(
    module: IRModule,
    annotations: list[Annotation],
    knowledge: ApiKnowledge | None = None,
) -> MappingResult:
    result = MappingResult()
    for ann in annotations:
        result.conventions.add(ann.convention)
        if isinstance(ann, StructAnnotation):
            _extract_struct(module, ann, result)
        elif isinstance(ann, ParserAnnotation):
            _extract_comparison(module, ann, result, knowledge)
        elif isinstance(ann, GetterAnnotation):
            result.getters.append(GetterSpec(ann.function, ann.par_index - 1))
        else:  # pragma: no cover - exhaustive
            raise MappingError(f"unknown annotation {ann!r}")
    return result


# -- structure-based ---------------------------------------------------------


def _extract_struct(module: IRModule, ann: StructAnnotation, result: MappingResult):
    init = module.global_inits.get(ann.table)
    if init is None or not isinstance(init, InitList):
        raise MappingError(f"@STRUCT table {ann.table!r} has no initializer list")
    sdef = module.structs.get(ann.struct)
    table_params: list[str] = []
    for row in init.items:
        if not isinstance(row, InitList) or not row.items:
            continue
        par_item = _item(row, ann.par_index)
        var_item = _item(row, ann.var_index)
        if not isinstance(par_item, StringLiteral):
            continue  # sentinel rows ({NULL, ...}) terminate real tables
        param = par_item.value
        result.declared_params.add(param)
        table_params.append(param)
        if ann.handler_arg is not None:
            handler = _handler_name(var_item)
            if handler is None or not module.has_function(handler):
                continue
            seed = ParamSeed(param, handler, ann.handler_arg)
            result.seeds.append(seed)
            fn = module.function(handler)
            for p in fn.params:
                if p.name == ann.handler_arg and p.type is not None:
                    result.declared_types[param] = p.type
            _handler_const_store_seeds(module, handler, param, result)
            continue
        seed = _address_seed(param, var_item)
        if seed is not None:
            result.seeds.append(seed)
            result.declared_types[param] = _seed_type(module, seed)
        _lift_table_range(ann, row, param, result)
    _table_unsafe_parse(module, ann, table_params, result)
    _table_value_facts(module, ann, table_params, result)


_NUMERIC_UNSAFE = ("atoi", "atol", "atof", "sscanf")


def _table_unsafe_parse(
    module: IRModule, ann: StructAnnotation, table_params: list[str],
    result: MappingResult,
) -> None:
    """Generic table appliers parse every mapped value through the
    same conversion call; an unsafe numeric API there affects all the
    table's numeric parameters (VSFTP's atoi, Table 8)."""
    from repro.ir.instructions import Call as IrCall
    from repro.ir.values import Variable as IrVariable

    applier_fns = []
    for fn in module.functions.values():
        for inst in fn.instructions():
            if any(
                isinstance(op, IrVariable) and op.name == ann.table
                for op in inst.uses()
            ):
                applier_fns.append(fn)
                break
    numeric_params = [
        p
        for p in table_params
        if (t := result.declared_types.get(p)) is not None
        and (_strip_ptr(t).is_integer or _strip_ptr(t).is_float)
        and not t.is_string
    ]
    for fn in applier_fns:
        for inst in fn.instructions():
            if isinstance(inst, IrCall) and inst.callee in _NUMERIC_UNSAFE:
                for param in numeric_params:
                    result.unsafe_parse.setdefault(param, set()).add(inst.callee)


def _strip_ptr(typ: ct.CType) -> ct.CType:
    return typ.pointee if isinstance(typ, ct.PointerType) else typ


def _table_value_facts(
    module: IRModule, ann: StructAnnotation, table_params: list[str],
    result: MappingResult,
) -> None:
    """Case-sensitivity of table-applier value parsing.

    A generic applier like vsftpd's ``parse_bool_setting(value)``
    compares the raw token for every parameter of its table; the
    sensitivity of those compares is shared by all of them
    (Table 6's per-system distributions)."""
    from repro.ir.values import Variable as IrVariable

    applier_fns = []
    for fn in module.functions.values():
        for inst in fn.instructions():
            if any(
                isinstance(op, IrVariable) and op.name == ann.table
                for op in inst.uses()
            ):
                applier_fns.append(fn)
                break
    for fn in applier_fns:
        string_params = [
            p.name
            for p in fn.params
            if p.type is not None and p.type.is_string and p.name != "key"
        ]
        if not string_params:
            continue
        seeds = [ParamSeed(_VAL_SENTINEL, fn.name, name) for name in string_params]
        pre = TaintEngine(module, seeds).run()
        sensitive = None
        for event in pre.events_of(StringCompareEvent):
            if _VAL_SENTINEL not in event.labels.names():
                continue
            if event.const_other is None:
                continue  # table-name matching, not value parsing
            if event.const_other.lower() == event.const_other.upper():
                continue  # caseless values ("1"/"0") say nothing
            sensitive = bool(sensitive) or event.case_sensitive
        if sensitive is None:
            continue
        for param in table_params:
            current = result.case_sensitivity.get(param, False)
            result.case_sensitivity[param] = current or sensitive


def _lift_table_range(ann, row, param, result) -> None:
    """GUC-style tables carry min/max columns (§5.2); lift them."""
    from repro.core.constraints import NumericRangeConstraint
    from repro.lang.ast_nodes import IntLiteral, Unary as AstUnary

    def _const_of(index: int | None):
        if index is None:
            return None
        item = _item(row, index)
        if isinstance(item, IntLiteral):
            return item.value
        if (
            isinstance(item, AstUnary)
            and item.op == "-"
            and isinstance(item.operand, IntLiteral)
        ):
            return -item.operand.value
        return None

    lo = _const_of(ann.min_index)
    hi = _const_of(ann.max_index)
    if lo is None and hi is None:
        return
    result.direct_constraints.append(
        NumericRangeConstraint(
            param,
            row.location,
            valid_lo=lo,
            valid_hi=hi,
        )
    )


def _handler_const_store_seeds(
    module: IRModule, handler: str, param: str, result: MappingResult
) -> None:
    """A handler that decodes its argument into constants (the
    Figure 6c boolean/enum pattern) breaks the dataflow at the
    comparison; the globals it constant-stores still belong to the
    parameter's mapping."""
    from repro.ir.instructions import Assign as IrAssign
    from repro.ir.values import Const as IrConst, Variable as IrVariable

    fn = module.functions.get(handler)
    if fn is None:
        return
    for inst in fn.instructions():
        if not isinstance(inst, IrAssign):
            continue
        if not isinstance(inst.dest, IrVariable) or inst.dest.kind != "global":
            continue
        if not isinstance(inst.src, IrConst):
            continue
        seed = GlobalSeed(param, inst.dest.name)
        if seed not in result.seeds:
            result.seeds.append(seed)


def _item(row: InitList, index_1based: int):
    idx = index_1based - 1
    if 0 <= idx < len(row.items):
        return row.items[idx]
    return None


def _handler_name(item) -> str | None:
    if isinstance(item, Identifier):
        return item.name
    return None


def _address_seed(param: str, item) -> GlobalSeed | None:
    """&Var or &strukt.field initializer entries become global seeds."""
    if isinstance(item, Unary) and item.op == "&":
        target = item.operand
        if isinstance(target, Identifier):
            return GlobalSeed(param, target.name)
        if isinstance(target, Member):
            path = [target.field_name]
            base = target.base
            while isinstance(base, Member):
                path.append(base.field_name)
                base = base.base
            if isinstance(base, Identifier):
                return GlobalSeed(param, base.name, tuple(reversed(path)))
    if isinstance(item, Identifier):
        # A bare identifier in the var slot names a global directly
        # (tables of pointers store the address without '&' sugar).
        return GlobalSeed(param, item.name)
    return None


def _seed_type(module: IRModule, seed: GlobalSeed) -> ct.CType | None:
    var = module.globals.get(seed.var)
    if var is None or var.type is None:
        return None
    typ = var.type
    for field_name in seed.path:
        if isinstance(typ, ct.PointerType):
            typ = typ.pointee
        if isinstance(typ, ct.StructType):
            sdef = module.structs.get(typ.name)
            if sdef is None:
                return None
            typ = sdef.field_type(field_name)
            if typ is None:
                return None
        else:
            return None
    return typ


# -- comparison-based ---------------------------------------------------------

_PAR_SENTINEL = "__SPEX_PAR__"
_VAL_SENTINEL = "__SPEX_VAL__"


def _extract_comparison(
    module: IRModule,
    ann: ParserAnnotation,
    result: MappingResult,
    knowledge: ApiKnowledge | None,
):
    if not module.has_function(ann.function):
        raise MappingError(f"@PARSER function {ann.function!r} not found")
    seeds = [
        ParamSeed(_PAR_SENTINEL, ann.function, ann.par_var),
        ParamSeed(_VAL_SENTINEL, ann.function, ann.var_var),
    ]
    pre = TaintEngine(module, seeds, knowledge=knowledge).run()
    fn_name = ann.function
    cfg = CfgInfo.for_function(module.function(fn_name))

    branches: dict[int, BranchCondEvent] = {}
    for event in pre.events_of(BranchCondEvent):
        if event.function == fn_name and event.cond_temp >= 0:
            branches[event.cond_temp] = event

    stores = [
        e
        for e in pre.events_of(StoreEvent)
        if e.function == fn_name and _VAL_SENTINEL in e.src_labels.names()
    ]

    const_stores = [
        e
        for e in pre.events_of(StoreEvent)
        if e.function == fn_name and e.src_is_const
    ]
    value_compares = [
        e
        for e in pre.events_of(StringCompareEvent)
        if e.function == fn_name
        and _VAL_SENTINEL in e.labels.names()
        and e.const_other is not None
    ]

    for compare in pre.events_of(StringCompareEvent):
        if compare.function != fn_name:
            continue
        if _PAR_SENTINEL not in compare.labels.names():
            continue
        if compare.const_other is None:
            continue
        branch = branches.get(compare.dest_temp)
        if branch is None:
            continue
        eq_edge = _equality_edge(branch)
        if eq_edge is None:
            continue
        region = cfg.region_of_edge(branch.block, eq_edge)
        param = compare.const_other
        targets: list[tuple[str, str, tuple[str, ...]]] = []
        for store in stores:
            if store.block not in region:
                continue
            scope, name, path = store.target
            if scope != "global":
                continue
            targets.append((scope, name, path))
        if not targets:
            # Figure 6(c)-style decoding: the value dies at strcmp and
            # a constant lands in the variable - the assignment in the
            # matched branch still identifies the mapping.
            for store in const_stores:
                if store.block not in region:
                    continue
                scope, name, path = store.target
                if scope != "global":
                    continue
                targets.append((scope, name, path))
                break
        for scope, name, path in targets:
            result.declared_params.add(param)
            seed = GlobalSeed(param, name, path)
            result.seeds.append(seed)
            result.declared_types[param] = _seed_type(module, seed)
        _region_enum_facts(
            pre, cfg, branches, param, region, value_compares,
            const_stores, set(targets), result,
        )
        _region_unsafe_parse(pre, param, region, result)


def _region_unsafe_parse(pre, param: str, region: set[str], result) -> None:
    """Unsafe conversions of the value token inside one dispatch
    region belong to that region's parameter (Squid's sscanf %i)."""
    from repro.analysis.events import CallArgEvent

    for event in pre.events_of(CallArgEvent):
        if event.block not in region:
            continue
        if _VAL_SENTINEL not in event.labels.names():
            continue
        if event.callee not in _NUMERIC_UNSAFE:
            continue
        result.unsafe_parse.setdefault(param, set()).add(event.callee)


def _region_enum_facts(
    pre,
    cfg: CfgInfo,
    branches,
    param: str,
    region: set[str],
    value_compares,
    const_stores,
    targets: set,
    result: MappingResult,
) -> None:
    """Enum constraints from value-token strcmp ladders inside one
    parameter's dispatch region (the only place the raw token of a
    comparison-mapped parameter is visible)."""
    from repro.core.constraints import Behavior, EnumRangeConstraint

    in_region = [c for c in value_compares if c.block in region]
    if not in_region:
        return
    values = tuple(dict.fromkeys(c.const_other for c in in_region))
    case_sensitive = any(c.case_sensitive for c in in_region)
    result.case_sensitivity[param] = case_sensitive
    # The final else of the ladder: non-match region of the last
    # compare; a constant store to a mapped target there = overrule.
    last = max(in_region, key=lambda c: (c.location.line, c.location.column))
    behavior = Behavior.NONE
    branch = branches.get(last.dest_temp)
    if branch is not None:
        neq_edge = _nonmatch_edge_of(branch)
        if neq_edge is not None:
            else_region = cfg.region_of_edge(branch.block, neq_edge)
            for store in const_stores:
                if store.block in else_region and store.target in targets:
                    behavior = Behavior.RESET
            if behavior == Behavior.NONE:
                fn = pre.module.function(last.function)
                from repro.ir.instructions import Call as IrCall

                for label in else_region:
                    blk = fn.blocks.get(label)
                    if blk is None:
                        continue
                    for inst in blk.instructions:
                        if isinstance(inst, IrCall) and inst.callee in (
                            "exit",
                            "abort",
                            "_exit",
                        ):
                            behavior = Behavior.EXIT
    result.direct_constraints.append(
        EnumRangeConstraint(
            param,
            in_region[0].location,
            values=values,
            case_sensitive=case_sensitive,
            default_behavior=behavior,
            silently_overruled=behavior == Behavior.RESET,
        )
    )


def _nonmatch_edge_of(branch: BranchCondEvent) -> str | None:
    if branch.right.is_const and branch.right.const == 0:
        if branch.op == "==":
            return branch.false_label
        if branch.op == "!=":
            return branch.true_label
    return None


def _equality_edge(branch: BranchCondEvent) -> str | None:
    """Which edge means 'strcmp returned 0' (the names matched)?"""
    if branch.right.is_const and branch.right.const == 0:
        if branch.op == "==":
            return branch.true_label
        if branch.op == "!=":
            return branch.false_label
        if branch.op == "<=":  # strcmp(a,b) <= 0 is not equality; skip
            return None
    return None
