"""API knowledge base: what SPEX knows about library calls.

The paper: "SPEX supports standard library APIs and data types.  In
addition, we also allow developers to import their own library APIs and
data types by pointing to their header files" (§2.2.2).  Here the
knowledge is a declarative table keyed by function name: per-argument
semantic types, units, case-sensitivity of comparators, unsafe
transformation flags and exit-like behaviour; subject systems may
extend it with proprietary APIs (Storage-A does).
"""

from repro.knowledge.semantic import SemanticType, Unit
from repro.knowledge.apis import (
    ApiKnowledge,
    ApiSpec,
    ArgFact,
    default_knowledge,
)

__all__ = [
    "ApiKnowledge",
    "ApiSpec",
    "ArgFact",
    "SemanticType",
    "Unit",
    "default_knowledge",
]
