"""Semantic types and units for configuration parameters."""

from __future__ import annotations

import enum


class SemanticType(enum.Enum):
    """High-level meaning of a parameter beyond its basic type.

    Mirrors the paper's examples: file path, IP address, user name,
    port number, timeout, etc. (§2.1, Figure 3b/3c).
    """

    FILE = "FILE"
    DIRECTORY = "DIRECTORY"
    PATH = "PATH"  # file-or-directory path
    PORT = "PORT"
    IP_ADDRESS = "IP_ADDRESS"
    HOSTNAME = "HOSTNAME"
    USER = "USER"
    GROUP = "GROUP"
    PERMISSION = "PERMISSION"
    SIZE = "SIZE"
    TIME = "TIME"
    BOOLEAN_SWITCH = "BOOLEAN_SWITCH"
    COUNT = "COUNT"
    ENUM_CHOICE = "ENUM_CHOICE"

    def __str__(self) -> str:
        return self.value


class Unit(enum.Enum):
    """Measurement units attached to SIZE/TIME parameters (Table 7)."""

    BYTES = "B"
    KILOBYTES = "KB"
    MEGABYTES = "MB"
    GIGABYTES = "GB"
    MICROSECONDS = "us"
    MILLISECONDS = "ms"
    SECONDS = "s"
    MINUTES = "m"
    HOURS = "h"

    def __str__(self) -> str:
        return self.value

    @property
    def dimension(self) -> str:
        if self in (Unit.BYTES, Unit.KILOBYTES, Unit.MEGABYTES, Unit.GIGABYTES):
            return "size"
        return "time"

    @property
    def scale(self) -> float:
        """Multiplier to the dimension's base unit (bytes / seconds)."""
        return {
            Unit.BYTES: 1,
            Unit.KILOBYTES: 1024,
            Unit.MEGABYTES: 1024**2,
            Unit.GIGABYTES: 1024**3,
            Unit.MICROSECONDS: 1e-6,
            Unit.MILLISECONDS: 1e-3,
            Unit.SECONDS: 1,
            Unit.MINUTES: 60,
            Unit.HOURS: 3600,
        }[self]


SIZE_UNITS = (Unit.BYTES, Unit.KILOBYTES, Unit.MEGABYTES, Unit.GIGABYTES)
TIME_UNITS = (
    Unit.MICROSECONDS,
    Unit.MILLISECONDS,
    Unit.SECONDS,
    Unit.MINUTES,
    Unit.HOURS,
)


def scale_between(src: Unit, dst: Unit) -> float:
    """Conversion factor src -> dst (same dimension)."""
    if src.dimension != dst.dimension:
        raise ValueError(f"incompatible units {src} and {dst}")
    return src.scale / dst.scale
