"""The API fact table.

Every entry answers: if a tainted value reaches argument *i* of this
call, what do we learn?  (semantic type, unit); is the call a string
comparison and is it case-sensitive; is it an unsafe transformation;
does it terminate the process; what basic type does its return carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import types as ct
from repro.knowledge.semantic import SemanticType, Unit


@dataclass(frozen=True)
class ArgFact:
    """Facts about one argument position of an API."""

    index: int
    semantic: SemanticType | None = None
    unit: Unit | None = None


@dataclass
class ApiSpec:
    """Everything SPEX knows about one library function."""

    name: str
    args: list[ArgFact] = field(default_factory=list)
    return_semantic: SemanticType | None = None
    return_basic: ct.CType | None = None
    comparison: bool = False
    case_sensitive: bool | None = None
    unsafe_transform: bool = False
    safe_transform: bool = False
    exits_process: bool = False
    logs_message: bool = False
    # Arguments from this index on are out-parameters receiving the
    # (converted) input: sscanf's targets, strtol's end pointer.
    out_args_from: int = -1
    # The access right this call asserts on its path argument ("read"
    # / "write" / "mode"): drives access-control constraint inference.
    access_op: str = ""

    def arg_fact(self, index: int) -> ArgFact | None:
        for fact in self.args:
            if fact.index == index:
                return fact
        return None


class ApiKnowledge:
    """Lookup table of ApiSpec, extensible with proprietary APIs."""

    def __init__(self, specs: list[ApiSpec] | None = None):
        self.specs: dict[str, ApiSpec] = {}
        if specs:
            for spec in specs:
                self.specs[spec.name] = spec

    def add(self, spec: ApiSpec) -> None:
        self.specs[spec.name] = spec

    def extend(self, specs: list[ApiSpec]) -> "ApiKnowledge":
        """Return a copy with `specs` layered on (custom-API import)."""
        merged = ApiKnowledge(list(self.specs.values()))
        for spec in specs:
            merged.add(spec)
        return merged

    def get(self, name: str) -> ApiSpec | None:
        return self.specs.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.specs

    def comparisons(self) -> list[ApiSpec]:
        return [s for s in self.specs.values() if s.comparison]

    def unsafe_transforms(self) -> list[str]:
        return sorted(s.name for s in self.specs.values() if s.unsafe_transform)


def _std_specs() -> list[ApiSpec]:
    i32, i64 = ct.INT, ct.LONG
    f64 = ct.DOUBLE
    specs = [
        # -- files and paths --
        ApiSpec("open", args=[ArgFact(0, SemanticType.FILE)]),
        ApiSpec("fopen", args=[ArgFact(0, SemanticType.FILE)]),
        ApiSpec("access", args=[ArgFact(0, SemanticType.PATH)]),
        ApiSpec("file_exists", args=[ArgFact(0, SemanticType.PATH)]),
        ApiSpec("is_directory", args=[ArgFact(0, SemanticType.DIRECTORY)]),
        ApiSpec("stat_size", args=[ArgFact(0, SemanticType.FILE)]),
        ApiSpec("mkdir", args=[ArgFact(0, SemanticType.DIRECTORY)]),
        ApiSpec("unlink", args=[ArgFact(0, SemanticType.FILE)]),
        ApiSpec(
            "chmod",
            args=[ArgFact(0, SemanticType.PATH), ArgFact(1, SemanticType.PERMISSION)],
            access_op="mode",
        ),
        ApiSpec(
            "check_read_access",
            args=[ArgFact(0, SemanticType.PATH), ArgFact(1, SemanticType.USER)],
            access_op="read",
        ),
        ApiSpec(
            "check_write_access",
            args=[ArgFact(0, SemanticType.PATH), ArgFact(1, SemanticType.USER)],
            access_op="write",
        ),
        ApiSpec(
            "chown_user",
            args=[ArgFact(0, SemanticType.PATH), ArgFact(1, SemanticType.USER)],
        ),
        # -- sockets / network --
        ApiSpec("bind", args=[ArgFact(1, SemanticType.PORT)]),
        ApiSpec("htons", args=[ArgFact(0, SemanticType.PORT)]),
        ApiSpec(
            "connect_to",
            args=[ArgFact(0, SemanticType.HOSTNAME), ArgFact(1, SemanticType.PORT)],
        ),
        ApiSpec("inet_addr", args=[ArgFact(0, SemanticType.IP_ADDRESS)]),
        ApiSpec("inet_pton", args=[ArgFact(1, SemanticType.IP_ADDRESS)]),
        ApiSpec("gethostbyname", args=[ArgFact(0, SemanticType.HOSTNAME)]),
        ApiSpec("getpwnam", args=[ArgFact(0, SemanticType.USER)]),
        ApiSpec("getgrnam", args=[ArgFact(0, SemanticType.GROUP)]),
        # -- time --
        ApiSpec(
            "sleep",
            args=[ArgFact(0, SemanticType.TIME, Unit.SECONDS)],
        ),
        ApiSpec(
            "usleep",
            args=[ArgFact(0, SemanticType.TIME, Unit.MICROSECONDS)],
        ),
        ApiSpec(
            "sleep_ms",
            args=[ArgFact(0, SemanticType.TIME, Unit.MILLISECONDS)],
        ),
        ApiSpec("time", return_semantic=SemanticType.TIME, return_basic=i64),
        # -- memory --
        ApiSpec("malloc", args=[ArgFact(0, SemanticType.SIZE, Unit.BYTES)]),
        ApiSpec("calloc", args=[ArgFact(1, SemanticType.SIZE, Unit.BYTES)]),
        # -- string comparisons --
        ApiSpec("strcmp", comparison=True, case_sensitive=True),
        ApiSpec("strncmp", comparison=True, case_sensitive=True),
        ApiSpec("strcasecmp", comparison=True, case_sensitive=False),
        ApiSpec("strncasecmp", comparison=True, case_sensitive=False),
        # -- transformations: unsafe (paper §3.2 "Unsafe APIs") --
        ApiSpec("atoi", unsafe_transform=True, return_basic=i32),
        ApiSpec("atol", unsafe_transform=True, return_basic=i64),
        ApiSpec("atof", unsafe_transform=True, return_basic=f64),
        ApiSpec("sscanf", unsafe_transform=True, out_args_from=2),
        ApiSpec("sprintf", unsafe_transform=True),
        # -- transformations: safe --
        ApiSpec("strtol", safe_transform=True, return_basic=i64, out_args_from=1),
        ApiSpec("strtoll", safe_transform=True, return_basic=i64, out_args_from=1),
        ApiSpec("strtoul", safe_transform=True, return_basic=ct.ULONG),
        ApiSpec("strtod", safe_transform=True, return_basic=f64, out_args_from=1),
        # -- process exit --
        ApiSpec("exit", exits_process=True),
        ApiSpec("_exit", exits_process=True),
        ApiSpec("abort", exits_process=True),
        # -- logging --
        ApiSpec("printf", logs_message=True),
        ApiSpec("fprintf", logs_message=True),
        ApiSpec("syslog", logs_message=True),
        ApiSpec("perror", logs_message=True),
        ApiSpec("puts", logs_message=True),
        ApiSpec("fputs", logs_message=True),
    ]
    return specs


_DEFAULT: ApiKnowledge | None = None


def default_knowledge() -> ApiKnowledge:
    """The shared standard-library knowledge base."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ApiKnowledge(_std_specs())
    return _DEFAULT
