"""Circuit breaker: stop hammering a dependency that keeps faulting.

The serve tier wraps one breaker around each system's checker.  The
state machine is the classic three states:

* **closed** — requests flow; consecutive failures are counted and
  `threshold` of them trip the breaker.
* **open** — requests are refused outright (the caller maps this to a
  typed ``circuit-open`` error) until `reset_seconds` have passed.
* **half-open** — after the cool-down, exactly one probe request is
  let through; success closes the breaker, failure re-opens it and
  restarts the cool-down.

The clock is injected (`time.monotonic` by default) so tests drive
the cool-down deterministically, and every transition is guarded by a
lock so the breaker is safe to share across threads.

Usage::

    from repro.resilience import CircuitBreaker

    breaker = CircuitBreaker(threshold=3, reset_seconds=30.0)
    if not breaker.allow():
        raise RuntimeError("dependency is fused off")
    try:
        result = do_work()
    except Exception:
        breaker.record_failure()
        raise
    else:
        breaker.record_success()
"""

from __future__ import annotations

import threading
import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed → open after `threshold` consecutive failures; open →
    half-open after `reset_seconds`; one half-open probe decides."""

    def __init__(
        self,
        threshold: int = 5,
        reset_seconds: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if reset_seconds <= 0:
            raise ValueError("reset_seconds must be positive")
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        In half-open state exactly one caller gets True (the probe);
        everyone else keeps being refused until the probe reports.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: back to a full cool-down.
                self._trip()
                return
            self._failures += 1
            if self._failures >= self.threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probing = False

    def _maybe_half_open(self) -> None:
        """Open → half-open once the cool-down expires (lock held)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = HALF_OPEN
            self._probing = False


__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]
