"""Content-addressed progress checkpoints for resumable runs.

A checkpoint is one completed shard's folded payload, filed under
``<root>/<run digest>/<shard digest>.ckpt``.  Both digests are
sha256 of the caller-supplied *keys*: the run key fingerprints the
whole run spec (systems, sizes, seeds, option fingerprints, pool
digests), the shard key one unit of work within it.  Content
addressing is the safety property — a run with any different spec
computes a different run key and can never resurrect a stale shard.

Writes are atomic (temp file + ``os.replace``) and every payload is
framed with its own sha256, verified on load: a torn or corrupted
file reads as *missing*, so the worst a crashed writer can do is cost
a recompute.  Concurrent writers of the same shard are safe — they
write identical content and the last rename wins.

Usage::

    from repro.resilience import CheckpointStore

    store = CheckpointStore("/tmp/ckpt")
    store.save("run-spec", "shard-3", b"folded payload")
    store.load("run-spec", "shard-3")     # b"folded payload"
    store.load("run-spec", "shard-4")     # None: not checkpointed
    store.clear("run-spec")               # the run completed
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

_MAGIC = b"RPCKPT1\n"


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class CheckpointStore:
    """Atomic, digest-verified shard checkpoints under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _run_dir(self, run_key: str) -> Path:
        return self.root / _digest(run_key.encode("utf-8"))[:16]

    def _shard_path(self, run_key: str, shard_key: str) -> Path:
        name = _digest(shard_key.encode("utf-8"))[:24]
        return self._run_dir(run_key) / f"{name}.ckpt"

    def save(self, run_key: str, shard_key: str, payload: bytes) -> None:
        """Persist one shard's payload atomically."""
        path = self._shard_path(run_key, shard_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = _MAGIC + _digest(payload).encode("ascii") + b"\n" + payload
        # pid-tagged temp name: concurrent savers (thread or process
        # workers) never collide, and os.replace is atomic on POSIX.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(body)
        os.replace(tmp, path)

    def load(self, run_key: str, shard_key: str) -> bytes | None:
        """The shard's payload, or None when missing/torn/corrupted."""
        path = self._shard_path(run_key, shard_key)
        try:
            body = path.read_bytes()
        except OSError:
            return None
        if not body.startswith(_MAGIC):
            return None
        rest = body[len(_MAGIC):]
        newline = rest.find(b"\n")
        if newline != 64:  # sha256 hex is exactly 64 bytes
            return None
        recorded = rest[:newline].decode("ascii", errors="replace")
        payload = rest[newline + 1:]
        if _digest(payload) != recorded:
            return None
        return payload

    def shard_count(self, run_key: str) -> int:
        """How many shards this run has checkpointed."""
        run_dir = self._run_dir(run_key)
        if not run_dir.is_dir():
            return 0
        return sum(1 for p in run_dir.iterdir() if p.suffix == ".ckpt")

    def clear(self, run_key: str) -> None:
        """Drop every checkpoint of one run (idempotent)."""
        run_dir = self._run_dir(run_key)
        if not run_dir.is_dir():
            return
        for path in run_dir.iterdir():
            try:
                path.unlink()
            except OSError:
                pass
        try:
            run_dir.rmdir()
        except OSError:
            pass


__all__ = ["CheckpointStore"]
