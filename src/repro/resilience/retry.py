"""Retry policy and shard-failure records for supervised execution.

`RetryPolicy` is pure data: how many attempts a shard gets, how long
the supervisor backs off between rounds (capped exponential with
*deterministic* jitter — seeded from the retry key, so two runs of the
same workload sleep the same schedule and stay reproducible), and an
optional per-shard watchdog deadline for executors that can enforce
one.

`FailedShard` is what a shard becomes after exhausting its attempts:
a compact, picklable record that rides in the run report instead of
aborting the run — mirroring how the checker pillar reports a bad
config instead of crashing on it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised map treats a failing shard.

    `timeout` is the per-shard watchdog deadline in seconds (None
    disables it).  The thread and process executors enforce it from
    shard submission; the serial executor cannot interrupt a running
    shard, so it honours only the retry/backoff side.  Backoff for
    attempt *n* (1-based) is ``base_delay * 2**(n-1)`` capped at
    `max_delay`, shrunk by up to `jitter` (a fraction) using a random
    stream seeded from the retry key — deterministic, so resumed runs
    replay the same schedule.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 2.0
    jitter: float = 0.5
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff before retrying after `attempt` failures (1-based)."""
        if attempt < 1:
            return 0.0
        raw = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        rng = random.Random(f"retry|{key}|{attempt}")
        return raw * (1.0 - self.jitter * rng.random())


@dataclass(frozen=True)
class FailedShard:
    """One shard that exhausted its retry budget.

    Compact and picklable: it crosses process boundaries and lands in
    run reports (`FleetReport.failed_shards`,
    `PipelineReport.failed_shards`) so a partially degraded run stays
    auditable instead of aborting.
    """

    index: int  # position in the submitted item list
    label: str  # human-readable shard identity ("mysql:512")
    attempts: int
    error_kind: str  # exception class name, or "timeout"
    detail: str

    def summary_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "attempts": self.attempts,
            "error_kind": self.error_kind,
            "detail": self.detail,
        }


@dataclass
class ResilientMapResult:
    """What a supervised `map_resilient` hands back.

    `results` is aligned with the submitted items; a quarantined
    shard's slot holds None and its `FailedShard` sits in `failures`.
    """

    results: list
    failures: list[FailedShard]
    retries: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def completed(self) -> list:
        """The successful results only, in submission order."""
        return [r for r in self.results if r is not None]


__all__ = ["FailedShard", "ResilientMapResult", "RetryPolicy"]
