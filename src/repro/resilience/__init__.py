"""Fault tolerance for the long-running paths: retries, checkpoints,
circuit breakers.

The paper's thesis is that systems should anticipate and react
gracefully to bad input; this package applies the same discipline to
the reproduction's own infrastructure.  Three primitives, each a leaf
module with no dependency on the pillars that use it:

* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (capped
  exponential backoff with deterministic seeded jitter, an optional
  per-shard watchdog deadline) and :class:`FailedShard`, the
  structured record a shard becomes after exhausting its attempts
  instead of aborting the whole run.
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointStore`,
  content-addressed progress checkpoints with atomic writes and
  digest-verified reads, so a killed pipeline or fleet run resumes
  from its last completed shards and still folds a bit-identical
  final report.
* :mod:`repro.resilience.circuit` — :class:`CircuitBreaker`, the
  classic closed → open → half-open state machine the serve tier
  wraps around each system's checker.

Recovery events surface as ``resilience.*`` counters through
``repro.obs`` (retries, timeouts, worker crashes, quarantines,
checkpoint hits/saves); see docs/ROBUSTNESS.md for the policies.
"""

from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.retry import (
    FailedShard,
    ResilientMapResult,
    RetryPolicy,
)

__all__ = [
    "CLOSED",
    "CheckpointStore",
    "CircuitBreaker",
    "FailedShard",
    "HALF_OPEN",
    "OPEN",
    "ResilientMapResult",
    "RetryPolicy",
]
