"""Token definitions for the MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.source import Location


class TokenKind(enum.Enum):
    # Literals and identifiers.
    IDENT = "ident"
    INT_LIT = "int"
    FLOAT_LIT = "float"
    CHAR_LIT = "char"
    STRING_LIT = "string"

    # Keywords.
    KW_VOID = "void"
    KW_BOOL = "bool"
    KW_CHAR = "char_kw"
    KW_SHORT = "short"
    KW_INT = "int_kw"
    KW_LONG = "long"
    KW_FLOAT = "float_kw"
    KW_DOUBLE = "double"
    KW_UNSIGNED = "unsigned"
    KW_SIGNED = "signed"
    KW_STRUCT = "struct"
    KW_ENUM = "enum"
    KW_CONST = "const"
    KW_STATIC = "static"
    KW_EXTERN = "extern"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_SWITCH = "switch"
    KW_CASE = "case"
    KW_DEFAULT = "default"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_RETURN = "return"
    KW_SIZEOF = "sizeof"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_NULL = "null"
    KW_TYPEDEF = "typedef"

    # Punctuation / operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    ARROW = "->"
    ELLIPSIS = "..."
    QUESTION = "?"
    COLON = ":"

    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="

    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"

    EQ = "=="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="

    AND_AND = "&&"
    OR_OR = "||"
    NOT = "!"

    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    SHL = "<<"
    SHR = ">>"

    EOF = "eof"


KEYWORDS: dict[str, TokenKind] = {
    "void": TokenKind.KW_VOID,
    "bool": TokenKind.KW_BOOL,
    "char": TokenKind.KW_CHAR,
    "short": TokenKind.KW_SHORT,
    "int": TokenKind.KW_INT,
    "long": TokenKind.KW_LONG,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_DOUBLE,
    "unsigned": TokenKind.KW_UNSIGNED,
    "signed": TokenKind.KW_SIGNED,
    "struct": TokenKind.KW_STRUCT,
    "enum": TokenKind.KW_ENUM,
    "const": TokenKind.KW_CONST,
    "static": TokenKind.KW_STATIC,
    "extern": TokenKind.KW_EXTERN,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "for": TokenKind.KW_FOR,
    "switch": TokenKind.KW_SWITCH,
    "case": TokenKind.KW_CASE,
    "default": TokenKind.KW_DEFAULT,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "return": TokenKind.KW_RETURN,
    "sizeof": TokenKind.KW_SIZEOF,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "NULL": TokenKind.KW_NULL,
    "typedef": TokenKind.KW_TYPEDEF,
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: Location
    value: object = None  # Decoded literal value where applicable.

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.location}"
