"""Diagnostics for the MiniC toolchain."""

from __future__ import annotations

from repro.lang.source import Location


class MiniCError(Exception):
    """Base class for all MiniC front-end errors."""

    def __init__(self, message: str, location: Location | None = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(MiniCError):
    """Raised on malformed tokens (bad escapes, stray characters...)."""


class ParseError(MiniCError):
    """Raised on syntax errors."""


class SemanticError(MiniCError):
    """Raised on name/type errors caught while lowering or linking."""
