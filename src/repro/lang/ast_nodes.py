"""AST node definitions for MiniC.

The AST serves two consumers: the IR builder (`repro.ir.builder`) used
for static analysis, and the interpreter (`repro.runtime.interpreter`)
used by SPEX-INJ to actually run subject systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.source import Location
from repro.lang.types import CType


class Node:
    """Base class for all AST nodes."""

    location: Location


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int
    location: Location


@dataclass
class FloatLiteral(Expr):
    value: float
    location: Location


@dataclass
class StringLiteral(Expr):
    value: str
    location: Location


@dataclass
class CharLiteral(Expr):
    value: int
    location: Location


@dataclass
class BoolLiteral(Expr):
    value: bool
    location: Location


@dataclass
class NullLiteral(Expr):
    location: Location


@dataclass
class Identifier(Expr):
    name: str
    location: Location


@dataclass
class Unary(Expr):
    """Prefix unary expression: ! - ~ * (deref) & (address-of)."""

    op: str
    operand: Expr
    location: Location


@dataclass
class IncDec(Expr):
    """++x / --x / x++ / x-- (value semantics handled downstream)."""

    op: str  # "++" or "--"
    operand: Expr
    prefix: bool
    location: Location


@dataclass
class Binary(Expr):
    op: str  # + - * / % << >> < > <= >= == != & | ^ && ||
    left: Expr
    right: Expr
    location: Location


@dataclass
class Conditional(Expr):
    """Ternary cond ? then : other."""

    cond: Expr
    then: Expr
    other: Expr
    location: Location


@dataclass
class Assign(Expr):
    """Assignment; op is '=' or a compound op like '+='."""

    op: str
    target: Expr
    value: Expr
    location: Location


@dataclass
class Call(Expr):
    callee: str
    args: list[Expr]
    location: Location


@dataclass
class CallIndirect(Expr):
    """Call through a function pointer (e.g. ``cmd->handler(arg)``).

    Static analysis treats these as opaque (the paper's SPEX likewise
    does not resolve indirect calls); the interpreter dispatches on the
    runtime :class:`~repro.runtime.values.FunctionRef`.
    """

    func: Expr
    args: list[Expr]
    location: Location


@dataclass
class Member(Expr):
    """base.field (arrow=False) or base->field (arrow=True)."""

    base: Expr
    field_name: str
    arrow: bool
    location: Location


@dataclass
class Index(Expr):
    base: Expr
    index: Expr
    location: Location


@dataclass
class Cast(Expr):
    type: CType
    operand: Expr
    location: Location


@dataclass
class SizeOf(Expr):
    type: CType
    location: Location


@dataclass
class InitList(Expr):
    """Brace initializer: used for struct/array globals (mapping tables)."""

    items: list[Expr]
    location: Location


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    location: Location


@dataclass
class VarDecl(Stmt):
    """Local or global variable declaration."""

    name: str
    type: CType
    init: Expr | None
    location: Location
    is_static: bool = False
    is_const: bool = False


@dataclass
class Block(Stmt):
    statements: list[Stmt]
    location: Location


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Stmt | None
    location: Location


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt
    location: Location


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr
    location: Location


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: Stmt
    location: Location


@dataclass
class SwitchCase(Node):
    """One `case value:` arm (value None means `default:`)."""

    value: Expr | None
    body: list[Stmt]
    location: Location


@dataclass
class Switch(Stmt):
    subject: Expr
    cases: list[SwitchCase]
    location: Location


@dataclass
class Break(Stmt):
    location: Location


@dataclass
class Continue(Stmt):
    location: Location


@dataclass
class Return(Stmt):
    value: Expr | None
    location: Location


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str
    type: CType
    location: Location


@dataclass
class FunctionDef(Node):
    name: str
    return_type: CType
    params: list[Param]
    body: Block | None  # None for extern declarations
    location: Location
    variadic: bool = False
    is_static: bool = False

    @property
    def is_declaration(self) -> bool:
        return self.body is None


@dataclass
class StructDecl(Node):
    name: str
    fields: list[Param]
    location: Location


@dataclass
class EnumDecl(Node):
    name: str | None
    members: list[tuple[str, int]]
    location: Location


@dataclass
class TypedefDecl(Node):
    name: str
    type: CType
    location: Location


@dataclass
class SourceAst(Node):
    """All top-level declarations of one parsed source file, in order."""

    filename: str
    declarations: list[Node] = field(default_factory=list)

    @property
    def functions(self) -> list[FunctionDef]:
        return [d for d in self.declarations if isinstance(d, FunctionDef)]

    @property
    def globals(self) -> list[VarDecl]:
        return [d for d in self.declarations if isinstance(d, VarDecl)]

    @property
    def structs(self) -> list[StructDecl]:
        return [d for d in self.declarations if isinstance(d, StructDecl)]
