"""Linking of parsed MiniC files into a whole-program view.

A :class:`Program` is what SPEX analyses and the interpreter runs: a
set of source files parsed against shared typedef/enum environments,
with unified symbol tables for functions, globals and structs (the
paper's inter-procedural scope is "a single program", §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import types as ct
from repro.lang.ast_nodes import (
    Block,
    FunctionDef,
    SourceAst,
    StructDecl,
    VarDecl,
)
from repro.lang.errors import SemanticError
from repro.lang.parser import Parser
from repro.lang.source import SourceFile


@dataclass
class Program:
    """A linked MiniC translation unit."""

    name: str = "<program>"
    files: list[SourceFile] = field(default_factory=list)
    asts: list[SourceAst] = field(default_factory=list)
    functions: dict[str, FunctionDef] = field(default_factory=dict)
    prototypes: dict[str, FunctionDef] = field(default_factory=dict)
    globals: dict[str, VarDecl] = field(default_factory=dict)
    structs: dict[str, ct.StructDef] = field(default_factory=dict)
    enum_constants: dict[str, int] = field(default_factory=dict)
    typedefs: dict[str, ct.CType] = field(default_factory=dict)

    @classmethod
    def from_sources(
        cls, sources: dict[str, str] | list[tuple[str, str]], name: str = "<program>"
    ) -> "Program":
        """Parse and link `{filename: text}` sources, in order."""
        program = cls(name=name)
        items = sources.items() if isinstance(sources, dict) else sources
        for filename, text in items:
            program.add_source(filename, text)
        return program

    def add_source(self, filename: str, text: str) -> SourceAst:
        source = SourceFile(filename, text)
        parser = Parser(source, self.typedefs, self.enum_constants)
        ast = parser.parse_file()
        self.files.append(source)
        self.asts.append(ast)
        self._register(ast)
        return ast

    def _register(self, ast: SourceAst) -> None:
        for decl in ast.declarations:
            if isinstance(decl, FunctionDef):
                if decl.is_declaration:
                    self.prototypes.setdefault(decl.name, decl)
                else:
                    if decl.name in self.functions:
                        raise SemanticError(
                            f"duplicate function {decl.name!r}", decl.location
                        )
                    self.functions[decl.name] = decl
            elif isinstance(decl, VarDecl):
                self._register_global(decl)
            elif isinstance(decl, Block):
                # Multi-declarator global statement.
                for inner in decl.statements:
                    if isinstance(inner, VarDecl):
                        self._register_global(inner)
            elif isinstance(decl, StructDecl):
                fields = [ct.StructField(p.name, p.type) for p in decl.fields]
                self.structs[decl.name] = ct.StructDef(decl.name, fields)

    def _register_global(self, decl: VarDecl) -> None:
        if decl.name in self.globals:
            raise SemanticError(f"duplicate global {decl.name!r}", decl.location)
        self.globals[decl.name] = decl

    # -- lookups -----------------------------------------------------------

    def function(self, name: str) -> FunctionDef:
        if name not in self.functions:
            raise SemanticError(f"undefined function {name!r}")
        return self.functions[name]

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def struct_def(self, name: str) -> ct.StructDef:
        if name not in self.structs:
            raise SemanticError(f"undefined struct {name!r}")
        return self.structs[name]

    def field_type(self, struct: ct.StructType, field_name: str) -> ct.CType:
        sdef = self.struct_def(struct.name)
        ftype = sdef.field_type(field_name)
        if ftype is None:
            raise SemanticError(
                f"struct {struct.name!r} has no field {field_name!r}"
            )
        return ftype

    def source_file(self, filename: str) -> SourceFile | None:
        for f in self.files:
            if f.name == filename:
                return f
        return None

    def count_code_lines(self) -> int:
        """Whole-program LoC (used for Table 4)."""
        return sum(f.count_code_lines() for f in self.files)

    def snippet(self, filename: str, line: int, context: int = 1) -> str:
        source = self.source_file(filename)
        if source is None:
            return ""
        return source.snippet(line, context)
