"""MiniC: the C-like subject language analysed by SPEX.

The paper's SPEX works on LLVM IR compiled from C/C++ by Clang.  This
package is the reproduction's front-end substitute: a small C dialect
rich enough to express every configuration-handling idiom the paper
analyses (struct mapping tables, ``strcasecmp`` dispatch chains, getter
containers, ``strtol``/``atoi`` parsing, range checks, unit arithmetic).

Public entry points:

* :func:`parse_source` - parse one source string into an AST file.
* :class:`Program` - a linked translation unit over several files.
"""

from repro.lang.errors import LexError, MiniCError, ParseError
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_source
from repro.lang.program import Program
from repro.lang.source import Location, SourceFile

__all__ = [
    "LexError",
    "Lexer",
    "Location",
    "MiniCError",
    "ParseError",
    "Parser",
    "Program",
    "SourceFile",
    "parse_source",
    "tokenize",
]
