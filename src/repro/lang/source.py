"""Source files and locations for MiniC diagnostics.

Every AST node, IR instruction, inferred constraint and injection report
carries a :class:`Location` so that tool output can point at concrete
source lines, exactly as SPEX's error reports do.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Location:
    """A point in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def same_line(self, other: "Location") -> bool:
        return self.filename == other.filename and self.line == other.line


UNKNOWN_LOCATION = Location("<unknown>", 0, 0)


@dataclass
class SourceFile:
    """One MiniC source file, kept in memory.

    Subject systems embed their sources as Python strings, so a
    SourceFile is just a named text buffer with line access for
    diagnostics and for quoting code snippets in reports.
    """

    name: str
    text: str
    _lines: list[str] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._lines = self.text.splitlines()

    @property
    def line_count(self) -> int:
        return len(self._lines)

    def line(self, lineno: int) -> str:
        """Return the 1-based line, or '' when out of range."""
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1]
        return ""

    def snippet(self, lineno: int, context: int = 1) -> str:
        """Return the line plus `context` lines either side, numbered."""
        lo = max(1, lineno - context)
        hi = min(self.line_count, lineno + context)
        rows = []
        for n in range(lo, hi + 1):
            marker = ">" if n == lineno else " "
            rows.append(f"{marker}{n:5d} | {self.line(n)}")
        return "\n".join(rows)

    def count_code_lines(self) -> int:
        """Count non-blank, non-comment-only lines (the LoC metric)."""
        count = 0
        in_block_comment = False
        for raw in self._lines:
            line = raw.strip()
            if in_block_comment:
                if "*/" in line:
                    in_block_comment = False
                    line = line.split("*/", 1)[1].strip()
                else:
                    continue
            if not line:
                continue
            if line.startswith("//"):
                continue
            if line.startswith("/*"):
                if "*/" not in line:
                    in_block_comment = True
                    continue
                line = line.split("*/", 1)[1].strip()
                if not line:
                    continue
            count += 1
        return count
