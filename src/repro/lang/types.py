"""MiniC type model.

Types matter to SPEX in two places: the *basic-type* constraint is the
declared/cast-to type of a configuration variable (e.g. "32-bit
integer"), and field-sensitivity keys dataflow facts on struct fields.
The model is deliberately structural and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class CType:
    """Base class for MiniC types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, BoolType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_string(self) -> bool:
        """True for char* / const char*, MiniC's string type."""
        return (
            isinstance(self, PointerType)
            and isinstance(self.pointee, IntType)
            and self.pointee.bits == 8
        )


@dataclass(frozen=True)
class VoidType(CType):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class BoolType(CType):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class IntType(CType):
    """Sized integer: char=8, short=16, int=32, long=64."""

    bits: int
    signed: bool = True

    def __str__(self) -> str:
        prefix = "" if self.signed else "u"
        names = {8: "char", 16: "short", 32: "int", 64: "long"}
        base = names.get(self.bits, f"int{self.bits}")
        return f"{prefix}{base}"

    @property
    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        if not self.signed:
            return (1 << self.bits) - 1
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int into this type's range (two's complement)."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.signed and value > self.max_value:
            value -= 1 << self.bits
        return value


@dataclass(frozen=True)
class FloatType(CType):
    bits: int = 64

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    length: int | None = None

    def __str__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.element}[{n}]"


@dataclass(frozen=True)
class StructField:
    name: str
    type: CType


@dataclass(frozen=True)
class StructType(CType):
    """A named struct; fields resolved via the program's struct table.

    Struct types are referenced by name so that mutually recursive
    structs and forward declarations work; the authoritative field list
    lives in :class:`StructDef` registered on the Program.
    """

    name: str

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class FunctionType(CType):
    return_type: CType
    param_types: tuple[CType, ...]
    variadic: bool = False

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        if self.variadic:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type}({params})"


@dataclass
class StructDef:
    """The definition (field list) of a named struct."""

    name: str
    fields: list[StructField] = field(default_factory=list)

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def field_type(self, name: str) -> CType | None:
        for f in self.fields:
            if f.name == name:
                return f.type
        return None

    def field_index(self, name: str) -> int:
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        return -1


# Canonical singletons used throughout the toolchain.
VOID = VoidType()
BOOL = BoolType()
CHAR = IntType(8)
SHORT = IntType(16)
INT = IntType(32)
LONG = IntType(64)
UCHAR = IntType(8, signed=False)
USHORT = IntType(16, signed=False)
UINT = IntType(32, signed=False)
ULONG = IntType(64, signed=False)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)
STRING = PointerType(CHAR)


def integer_for(bits: int, signed: bool = True) -> IntType:
    return IntType(bits, signed)
