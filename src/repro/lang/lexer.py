"""Hand-written lexer for MiniC.

Supports C-style line and block comments, decimal/hex/octal integers
with optional unsigned/long suffixes, floats, character and string
literals with the common escapes, and the full C operator set used by
the parser.
"""

from __future__ import annotations

from repro.lang.errors import LexError
from repro.lang.source import Location, SourceFile
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_SIMPLE_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}

# Longest-match-first operator table.
_OPERATORS: list[tuple[str, TokenKind]] = [
    ("...", TokenKind.ELLIPSIS),
    ("<<=", TokenKind.SHL_ASSIGN),
    (">>=", TokenKind.SHR_ASSIGN),
    ("->", TokenKind.ARROW),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    (".", TokenKind.DOT),
    ("?", TokenKind.QUESTION),
    (":", TokenKind.COLON),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("!", TokenKind.NOT),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
]


class Lexer:
    """Streams :class:`Token` objects from a :class:`SourceFile`."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0
        self.line = 1
        self.col = 1

    def _location(self) -> Location:
        return Location(self.source.name, self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx < len(self.text):
            return self.text[idx]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.text):
                return
            if self.text[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                loc = self._location()
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", loc)
            elif ch == "#":
                # Preprocessor-style lines (#include, #define markers in
                # subject sources) are treated as comments.
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> list[Token]:
        result = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result

    def next_token(self) -> Token:
        self._skip_trivia()
        loc = self._location()
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", loc)

        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_ident(loc)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(loc)
        if ch == '"':
            return self._lex_string(loc)
        if ch == "'":
            return self._lex_char(loc)

        for text, kind in _OPERATORS:
            if self.text.startswith(text, self.pos):
                self._advance(len(text))
                return Token(kind, text, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def _lex_ident(self, loc: Location) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.text[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, loc)

    def _lex_number(self, loc: Location) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.text[start : self.pos]
            value = int(text, 16)
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1).isdigit():
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
            text = self.text[start : self.pos]
            if is_float:
                value = float(text)
            elif text.startswith("0") and len(text) > 1:
                value = int(text, 8)
            else:
                value = int(text, 10)
        # Consume (and ignore) C integer-suffix letters.
        while self._peek() and self._peek() in "uUlLfF":
            if self._peek() in "fF" and not is_float:
                break
            self._advance()
        full = self.text[start : self.pos]
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, full, loc, value=value)

    def _lex_escape(self, loc: Location) -> str:
        self._advance()  # the backslash
        esc = self._peek()
        if esc == "x":
            self._advance()
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._peek()
                self._advance()
            if not digits:
                raise LexError("empty hex escape", loc)
            return chr(int(digits, 16))
        if esc in _SIMPLE_ESCAPES:
            self._advance()
            return _SIMPLE_ESCAPES[esc]
        raise LexError(f"unknown escape sequence \\{esc}", loc)

    def _lex_string(self, loc: Location) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", loc)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._lex_escape(loc))
            else:
                chars.append(ch)
                self._advance()
        value = "".join(chars)
        return Token(TokenKind.STRING_LIT, f'"{value}"', loc, value=value)

    def _lex_char(self, loc: Location) -> Token:
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            value = self._lex_escape(loc)
        elif ch and ch != "'":
            value = ch
            self._advance()
        else:
            raise LexError("empty character literal", loc)
        if self._peek() != "'":
            raise LexError("unterminated character literal", loc)
        self._advance()
        return Token(TokenKind.CHAR_LIT, f"'{value}'", loc, value=ord(value))


def tokenize(text: str, filename: str = "<string>") -> list[Token]:
    """Tokenize `text`, returning the token list ending with EOF."""
    return Lexer(SourceFile(filename, text)).tokens()
