"""Recursive-descent parser for MiniC.

Builds the AST consumed by the IR builder and interpreter.  The grammar
is a practical C subset: struct/enum/typedef declarations, globals with
brace initializers (the struct mapping tables of Figure 4), functions,
and the usual statement/expression forms including ``switch`` and the
``if/else if/else`` ladders that SPEX mines for range constraints.
"""

from __future__ import annotations

from repro.lang import types as ct
from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    BoolLiteral,
    Break,
    Call,
    CallIndirect,
    Cast,
    CharLiteral,
    Conditional,
    Continue,
    DoWhile,
    EnumDecl,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    FunctionDef,
    Identifier,
    If,
    IncDec,
    Index,
    InitList,
    IntLiteral,
    Member,
    NullLiteral,
    Param,
    Return,
    SizeOf,
    SourceAst,
    Stmt,
    StringLiteral,
    StructDecl,
    Switch,
    SwitchCase,
    TypedefDecl,
    Unary,
    VarDecl,
    While,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import Lexer
from repro.lang.source import SourceFile
from repro.lang.tokens import Token, TokenKind

_TYPE_KEYWORDS = {
    TokenKind.KW_VOID,
    TokenKind.KW_BOOL,
    TokenKind.KW_CHAR,
    TokenKind.KW_SHORT,
    TokenKind.KW_INT,
    TokenKind.KW_LONG,
    TokenKind.KW_FLOAT,
    TokenKind.KW_DOUBLE,
    TokenKind.KW_UNSIGNED,
    TokenKind.KW_SIGNED,
    TokenKind.KW_STRUCT,
    TokenKind.KW_ENUM,
    TokenKind.KW_CONST,
}

_ASSIGN_OPS = {
    TokenKind.ASSIGN: "=",
    TokenKind.PLUS_ASSIGN: "+=",
    TokenKind.MINUS_ASSIGN: "-=",
    TokenKind.STAR_ASSIGN: "*=",
    TokenKind.SLASH_ASSIGN: "/=",
    TokenKind.PERCENT_ASSIGN: "%=",
    TokenKind.AMP_ASSIGN: "&=",
    TokenKind.PIPE_ASSIGN: "|=",
    TokenKind.CARET_ASSIGN: "^=",
    TokenKind.SHL_ASSIGN: "<<=",
    TokenKind.SHR_ASSIGN: ">>=",
}

# Binary operator precedence: larger binds tighter.
_BINARY_PRECEDENCE: dict[TokenKind, tuple[int, str]] = {
    TokenKind.STAR: (10, "*"),
    TokenKind.SLASH: (10, "/"),
    TokenKind.PERCENT: (10, "%"),
    TokenKind.PLUS: (9, "+"),
    TokenKind.MINUS: (9, "-"),
    TokenKind.SHL: (8, "<<"),
    TokenKind.SHR: (8, ">>"),
    TokenKind.LT: (7, "<"),
    TokenKind.GT: (7, ">"),
    TokenKind.LE: (7, "<="),
    TokenKind.GE: (7, ">="),
    TokenKind.EQ: (6, "=="),
    TokenKind.NE: (6, "!="),
    TokenKind.AMP: (5, "&"),
    TokenKind.CARET: (4, "^"),
    TokenKind.PIPE: (3, "|"),
    TokenKind.AND_AND: (2, "&&"),
    TokenKind.OR_OR: (1, "||"),
}


class Parser:
    """Parses one source file; typedef/enum scopes may be shared."""

    def __init__(
        self,
        source: SourceFile,
        typedefs: dict[str, ct.CType] | None = None,
        enum_constants: dict[str, int] | None = None,
    ):
        self.source = source
        self.tokens = Lexer(source).tokens()
        self.pos = 0
        # Shared (mutable) environments so a Program can parse many
        # files as one translation unit.
        self.typedefs = typedefs if typedefs is not None else {}
        self.enum_constants = enum_constants if enum_constants is not None else {}

    # -- token helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {tok.text!r}", tok.location
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # -- type parsing ---------------------------------------------------

    def _at_type_start(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind in _TYPE_KEYWORDS:
            return True
        return tok.kind is TokenKind.IDENT and tok.text in self.typedefs

    def _parse_base_type(self) -> ct.CType:
        """Parse the type specifier without pointer declarators."""
        while self._accept(TokenKind.KW_CONST):
            pass
        tok = self._peek()
        if tok.kind is TokenKind.KW_STRUCT:
            self._advance()
            name = self._expect(TokenKind.IDENT).text
            return ct.StructType(name)
        if tok.kind is TokenKind.KW_ENUM:
            self._advance()
            self._expect(TokenKind.IDENT)
            return ct.INT
        if tok.kind is TokenKind.KW_UNSIGNED or tok.kind is TokenKind.KW_SIGNED:
            signed = tok.kind is TokenKind.KW_SIGNED
            self._advance()
            nxt = self._peek()
            base_bits = 32
            if nxt.kind is TokenKind.KW_CHAR:
                base_bits = 8
                self._advance()
            elif nxt.kind is TokenKind.KW_SHORT:
                base_bits = 16
                self._advance()
            elif nxt.kind is TokenKind.KW_INT:
                self._advance()
            elif nxt.kind is TokenKind.KW_LONG:
                base_bits = 64
                self._advance()
                self._accept(TokenKind.KW_INT)
                self._accept(TokenKind.KW_LONG)
            return ct.IntType(base_bits, signed=signed)
        simple = {
            TokenKind.KW_VOID: ct.VOID,
            TokenKind.KW_BOOL: ct.BOOL,
            TokenKind.KW_CHAR: ct.CHAR,
            TokenKind.KW_SHORT: ct.SHORT,
            TokenKind.KW_INT: ct.INT,
            TokenKind.KW_FLOAT: ct.FLOAT,
            TokenKind.KW_DOUBLE: ct.DOUBLE,
        }
        if tok.kind in simple:
            self._advance()
            return simple[tok.kind]
        if tok.kind is TokenKind.KW_LONG:
            self._advance()
            self._accept(TokenKind.KW_LONG)
            self._accept(TokenKind.KW_INT)
            return ct.LONG
        if tok.kind is TokenKind.IDENT and tok.text in self.typedefs:
            self._advance()
            return self.typedefs[tok.text]
        raise ParseError(f"expected type, found {tok.text!r}", tok.location)

    def _parse_type(self) -> ct.CType:
        """Parse a full type: base specifier plus pointer stars."""
        base = self._parse_base_type()
        while True:
            if self._accept(TokenKind.STAR):
                base = ct.PointerType(base)
            elif self._accept(TokenKind.KW_CONST):
                pass
            else:
                return base

    # -- expressions -----------------------------------------------------

    def parse_expression(self) -> Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> Expr:
        left = self._parse_conditional()
        tok = self._peek()
        if tok.kind in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return Assign(_ASSIGN_OPS[tok.kind], left, value, tok.location)
        return left

    def _parse_conditional(self) -> Expr:
        cond = self._parse_binary(0)
        if self._at(TokenKind.QUESTION):
            loc = self._advance().location
            then = self.parse_expression()
            self._expect(TokenKind.COLON)
            other = self._parse_conditional()
            return Conditional(cond, then, other, loc)
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            entry = _BINARY_PRECEDENCE.get(tok.kind)
            if entry is None or entry[0] < min_prec:
                return left
            prec, op = entry
            self._advance()
            right = self._parse_binary(prec + 1)
            left = Binary(op, left, right, tok.location)

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PLUS_PLUS or tok.kind is TokenKind.MINUS_MINUS:
            self._advance()
            operand = self._parse_unary()
            op = "++" if tok.kind is TokenKind.PLUS_PLUS else "--"
            return IncDec(op, operand, prefix=True, location=tok.location)
        unary_ops = {
            TokenKind.NOT: "!",
            TokenKind.MINUS: "-",
            TokenKind.PLUS: "+",
            TokenKind.TILDE: "~",
            TokenKind.STAR: "*",
            TokenKind.AMP: "&",
        }
        if tok.kind in unary_ops:
            self._advance()
            operand = self._parse_unary()
            op = unary_ops[tok.kind]
            if op == "+":
                return operand
            return Unary(op, operand, tok.location)
        if tok.kind is TokenKind.KW_SIZEOF:
            self._advance()
            self._expect(TokenKind.LPAREN)
            if self._at_type_start():
                typ = self._parse_type()
            else:
                self.parse_expression()
                typ = ct.LONG
            self._expect(TokenKind.RPAREN)
            return SizeOf(typ, tok.location)
        # Cast: '(' type ')' unary
        if tok.kind is TokenKind.LPAREN and self._at_type_start(1):
            self._advance()
            typ = self._parse_type()
            self._expect(TokenKind.RPAREN)
            operand = self._parse_unary()
            return Cast(typ, operand, tok.location)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.LPAREN:
                self._advance()
                args: list[Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self.parse_expression())
                    while self._accept(TokenKind.COMMA):
                        args.append(self.parse_expression())
                self._expect(TokenKind.RPAREN)
                if isinstance(expr, Identifier):
                    expr = Call(expr.name, args, expr.location)
                else:
                    expr = CallIndirect(expr, args, tok.location)
            elif tok.kind is TokenKind.LBRACKET:
                self._advance()
                index = self.parse_expression()
                self._expect(TokenKind.RBRACKET)
                expr = Index(expr, index, tok.location)
            elif tok.kind is TokenKind.DOT:
                self._advance()
                name = self._expect(TokenKind.IDENT).text
                expr = Member(expr, name, arrow=False, location=tok.location)
            elif tok.kind is TokenKind.ARROW:
                self._advance()
                name = self._expect(TokenKind.IDENT).text
                expr = Member(expr, name, arrow=True, location=tok.location)
            elif tok.kind is TokenKind.PLUS_PLUS or tok.kind is TokenKind.MINUS_MINUS:
                self._advance()
                op = "++" if tok.kind is TokenKind.PLUS_PLUS else "--"
                expr = IncDec(op, expr, prefix=False, location=tok.location)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LIT:
            self._advance()
            return IntLiteral(int(tok.value), tok.location)
        if tok.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return FloatLiteral(float(tok.value), tok.location)
        if tok.kind is TokenKind.STRING_LIT:
            self._advance()
            # Adjacent string literals concatenate, as in C.
            value = str(tok.value)
            while self._at(TokenKind.STRING_LIT):
                value += str(self._advance().value)
            return StringLiteral(value, tok.location)
        if tok.kind is TokenKind.CHAR_LIT:
            self._advance()
            return CharLiteral(int(tok.value), tok.location)
        if tok.kind is TokenKind.KW_TRUE:
            self._advance()
            return BoolLiteral(True, tok.location)
        if tok.kind is TokenKind.KW_FALSE:
            self._advance()
            return BoolLiteral(False, tok.location)
        if tok.kind is TokenKind.KW_NULL:
            self._advance()
            return NullLiteral(tok.location)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            if tok.text in self.enum_constants:
                return IntLiteral(self.enum_constants[tok.text], tok.location)
            return Identifier(tok.text, tok.location)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expression()
            self._expect(TokenKind.RPAREN)
            return expr
        if tok.kind is TokenKind.LBRACE:
            return self._parse_init_list()
        raise ParseError(f"unexpected token {tok.text!r}", tok.location)

    def _parse_init_list(self) -> InitList:
        loc = self._expect(TokenKind.LBRACE).location
        items: list[Expr] = []
        if not self._at(TokenKind.RBRACE):
            items.append(self._parse_initializer())
            while self._accept(TokenKind.COMMA):
                if self._at(TokenKind.RBRACE):
                    break  # trailing comma
                items.append(self._parse_initializer())
        self._expect(TokenKind.RBRACE)
        return InitList(items, loc)

    def _parse_initializer(self) -> Expr:
        if self._at(TokenKind.LBRACE):
            return self._parse_init_list()
        return self.parse_expression()

    # -- statements -------------------------------------------------------

    def parse_statement(self) -> Stmt:
        tok = self._peek()
        kind = tok.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_SWITCH:
            return self._parse_switch()
        if kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI)
            return Break(tok.location)
        if kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI)
            return Continue(tok.location)
        if kind is TokenKind.KW_RETURN:
            self._advance()
            value = None
            if not self._at(TokenKind.SEMI):
                value = self.parse_expression()
            self._expect(TokenKind.SEMI)
            return Return(value, tok.location)
        if kind is TokenKind.SEMI:
            self._advance()
            return Block([], tok.location)
        if kind is TokenKind.KW_STATIC or self._at_type_start():
            return self._parse_var_decl_stmt()
        expr = self.parse_expression()
        self._expect(TokenKind.SEMI)
        return ExprStmt(expr, tok.location)

    def _parse_block(self) -> Block:
        loc = self._expect(TokenKind.LBRACE).location
        statements: list[Stmt] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated block", loc)
            statements.append(self.parse_statement())
        self._expect(TokenKind.RBRACE)
        return Block(statements, loc)

    def _parse_if(self) -> If:
        loc = self._expect(TokenKind.KW_IF).location
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        then = self.parse_statement()
        other = None
        if self._accept(TokenKind.KW_ELSE):
            other = self.parse_statement()
        return If(cond, then, other, loc)

    def _parse_while(self) -> While:
        loc = self._expect(TokenKind.KW_WHILE).location
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        body = self.parse_statement()
        return While(cond, body, loc)

    def _parse_do_while(self) -> DoWhile:
        loc = self._expect(TokenKind.KW_DO).location
        body = self.parse_statement()
        self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return DoWhile(body, cond, loc)

    def _parse_for(self) -> For:
        loc = self._expect(TokenKind.KW_FOR).location
        self._expect(TokenKind.LPAREN)
        init: Stmt | None = None
        if not self._at(TokenKind.SEMI):
            if self._at_type_start():
                init = self._parse_var_decl_stmt()
            else:
                expr = self.parse_expression()
                self._expect(TokenKind.SEMI)
                init = ExprStmt(expr, expr.location)
        else:
            self._advance()
        cond = None
        if not self._at(TokenKind.SEMI):
            cond = self.parse_expression()
        self._expect(TokenKind.SEMI)
        step = None
        if not self._at(TokenKind.RPAREN):
            step = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        body = self.parse_statement()
        return For(init, cond, step, body, loc)

    def _parse_switch(self) -> Switch:
        loc = self._expect(TokenKind.KW_SWITCH).location
        self._expect(TokenKind.LPAREN)
        subject = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.LBRACE)
        cases: list[SwitchCase] = []
        while not self._at(TokenKind.RBRACE):
            tok = self._peek()
            if self._accept(TokenKind.KW_CASE):
                value = self.parse_expression()
                self._expect(TokenKind.COLON)
                body = self._parse_case_body()
                cases.append(SwitchCase(value, body, tok.location))
            elif self._accept(TokenKind.KW_DEFAULT):
                self._expect(TokenKind.COLON)
                body = self._parse_case_body()
                cases.append(SwitchCase(None, body, tok.location))
            else:
                raise ParseError(
                    f"expected 'case' or 'default', found {tok.text!r}",
                    tok.location,
                )
        self._expect(TokenKind.RBRACE)
        return Switch(subject, cases, loc)

    def _parse_case_body(self) -> list[Stmt]:
        body: list[Stmt] = []
        while not (
            self._at(TokenKind.KW_CASE)
            or self._at(TokenKind.KW_DEFAULT)
            or self._at(TokenKind.RBRACE)
        ):
            body.append(self.parse_statement())
        return body

    def _parse_var_decl_stmt(self) -> Stmt:
        """Parse one or more comma-separated declarators as a statement."""
        is_static = bool(self._accept(TokenKind.KW_STATIC))
        base = self._parse_base_type()
        decls: list[Stmt] = []
        while True:
            typ = base
            while self._accept(TokenKind.STAR):
                typ = ct.PointerType(typ)
            name_tok = self._expect(TokenKind.IDENT)
            typ = self._parse_array_suffix(typ)
            init = None
            if self._accept(TokenKind.ASSIGN):
                init = self._parse_initializer()
            decls.append(
                VarDecl(name_tok.text, typ, init, name_tok.location, is_static)
            )
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.SEMI)
        if len(decls) == 1:
            return decls[0]
        return Block(decls, decls[0].location)

    def _parse_array_suffix(self, typ: ct.CType) -> ct.CType:
        dims: list[int | None] = []
        while self._accept(TokenKind.LBRACKET):
            if self._at(TokenKind.RBRACKET):
                dims.append(None)
            else:
                size = self.parse_expression()
                if isinstance(size, IntLiteral):
                    dims.append(size.value)
                else:
                    dims.append(None)
            self._expect(TokenKind.RBRACKET)
        for dim in reversed(dims):
            typ = ct.ArrayType(typ, dim)
        return typ

    # -- top level ----------------------------------------------------------

    def parse_file(self) -> SourceAst:
        out = SourceAst(self.source.name)
        while not self._at(TokenKind.EOF):
            out.declarations.append(self._parse_top_level())
        return out

    def _parse_top_level(self):
        tok = self._peek()
        if tok.kind is TokenKind.KW_TYPEDEF:
            return self._parse_typedef()
        if tok.kind is TokenKind.KW_STRUCT and self._peek(2).kind is TokenKind.LBRACE:
            return self._parse_struct_decl()
        if tok.kind is TokenKind.KW_ENUM and (
            self._peek(1).kind is TokenKind.LBRACE
            or self._peek(2).kind is TokenKind.LBRACE
        ):
            return self._parse_enum_decl()

        is_extern = bool(self._accept(TokenKind.KW_EXTERN))
        is_static = bool(self._accept(TokenKind.KW_STATIC))
        base = self._parse_base_type()
        typ = base
        while self._accept(TokenKind.STAR):
            typ = ct.PointerType(typ)
        name_tok = self._expect(TokenKind.IDENT)
        if self._at(TokenKind.LPAREN):
            return self._parse_function(typ, name_tok, is_static, is_extern)
        return self._parse_global_var(base, typ, name_tok, is_static)

    def _parse_typedef(self) -> TypedefDecl:
        loc = self._expect(TokenKind.KW_TYPEDEF).location
        if self._at(TokenKind.KW_STRUCT) and self._peek(2).kind is TokenKind.LBRACE:
            struct = self._parse_struct_decl(consume_semi=False)
            alias = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.SEMI)
            typ = ct.StructType(struct.name)
            self.typedefs[alias] = typ
            return TypedefDecl(alias, typ, loc)
        typ = self._parse_type()
        alias = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.SEMI)
        self.typedefs[alias] = typ
        return TypedefDecl(alias, typ, loc)

    def _parse_struct_decl(self, consume_semi: bool = True) -> StructDecl:
        loc = self._expect(TokenKind.KW_STRUCT).location
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LBRACE)
        fields: list[Param] = []
        while not self._at(TokenKind.RBRACE):
            base = self._parse_base_type()
            while True:
                typ = base
                while self._accept(TokenKind.STAR):
                    typ = ct.PointerType(typ)
                fname = self._expect(TokenKind.IDENT)
                typ = self._parse_array_suffix(typ)
                fields.append(Param(fname.text, typ, fname.location))
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.SEMI)
        self._expect(TokenKind.RBRACE)
        if consume_semi:
            self._expect(TokenKind.SEMI)
        return StructDecl(name, fields, loc)

    def _parse_enum_decl(self) -> EnumDecl:
        loc = self._expect(TokenKind.KW_ENUM).location
        name = None
        if self._at(TokenKind.IDENT):
            name = self._advance().text
        self._expect(TokenKind.LBRACE)
        members: list[tuple[str, int]] = []
        next_value = 0
        while not self._at(TokenKind.RBRACE):
            member = self._expect(TokenKind.IDENT).text
            if self._accept(TokenKind.ASSIGN):
                value_expr = self._parse_conditional()
                value = _const_int(value_expr)
                next_value = value
            members.append((member, next_value))
            self.enum_constants[member] = next_value
            next_value += 1
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RBRACE)
        self._expect(TokenKind.SEMI)
        return EnumDecl(name, members, loc)

    def _parse_function(
        self,
        return_type: ct.CType,
        name_tok: Token,
        is_static: bool,
        is_extern: bool,
    ) -> FunctionDef:
        self._expect(TokenKind.LPAREN)
        params: list[Param] = []
        variadic = False
        if not self._at(TokenKind.RPAREN):
            if self._at(TokenKind.KW_VOID) and self._peek(1).kind is TokenKind.RPAREN:
                self._advance()
            else:
                while True:
                    if self._accept(TokenKind.ELLIPSIS):
                        variadic = True
                        break
                    ptype = self._parse_type()
                    pname = ""
                    ploc = self._peek().location
                    if self._at(TokenKind.IDENT):
                        ptok = self._advance()
                        pname = ptok.text
                        ploc = ptok.location
                        ptype = self._parse_array_suffix(ptype)
                    params.append(Param(pname, ptype, ploc))
                    if not self._accept(TokenKind.COMMA):
                        break
        self._expect(TokenKind.RPAREN)
        body = None
        if self._at(TokenKind.LBRACE):
            body = self._parse_block()
        else:
            self._expect(TokenKind.SEMI)
        _ = is_extern  # extern only affects linkage, which we don't model
        return FunctionDef(
            name_tok.text,
            return_type,
            params,
            body,
            name_tok.location,
            variadic=variadic,
            is_static=is_static,
        )

    def _parse_global_var(
        self,
        base: ct.CType,
        typ: ct.CType,
        name_tok: Token,
        is_static: bool,
    ) -> VarDecl | Block:
        decls: list[VarDecl] = []
        while True:
            typ = self._parse_array_suffix(typ)
            init = None
            if self._accept(TokenKind.ASSIGN):
                init = self._parse_initializer()
            decls.append(VarDecl(name_tok.text, typ, init, name_tok.location, is_static))
            if not self._accept(TokenKind.COMMA):
                break
            typ = base
            while self._accept(TokenKind.STAR):
                typ = ct.PointerType(typ)
            name_tok = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.SEMI)
        if len(decls) == 1:
            return decls[0]
        return Block(decls, decls[0].location)


def _const_int(expr: Expr) -> int:
    """Evaluate a constant integer expression (enum values)."""
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, Unary) and expr.op == "-":
        return -_const_int(expr.operand)
    if isinstance(expr, Binary):
        left = _const_int(expr.left)
        right = _const_int(expr.right)
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "<<": lambda: left << right,
            ">>": lambda: left >> right,
            "|": lambda: left | right,
            "&": lambda: left & right,
        }
        if expr.op in ops:
            return ops[expr.op]()
    raise ParseError("expected constant integer expression", expr.location)


def parse_source(text: str, filename: str = "<string>") -> SourceAst:
    """Parse one MiniC source string into a :class:`SourceAst`."""
    return Parser(SourceFile(filename, text)).parse_file()
