"""Compile a constraint set into a reusable config validator.

One `SpexReport` (the inference half of the paper) becomes one
`CompiledChecker`: per-parameter validator closures for basic-type,
semantic-type and range constraints, cross-parameter closures for
control dependencies and value relationships, plus the environment
facts (filesystem, ports, users, hosts) semantic checks consult.
Compilation happens once per inference fingerprint - the fleet layer
caches checkers content-addressed, so re-checking a million configs
never re-infers and never re-compiles.

Two properties make the checker safe to put in front of users:

* **Calibration** - the shipped default config must validate clean.
  Any finding the pristine template itself trips is recorded at
  compile time and suppressed thereafter, so inference false
  positives never page a user whose config matches the vendor's.
* **Conservatism** - a setting is an *error* only when a compiled
  constraint proves it wrong (type, range, relationship, dependency,
  or an environment fact).  Everything weaker is a warning.

Usage::

    from repro.checker import checker_for_system, validate_config
    from repro.systems import get_system

    checker = checker_for_system(get_system("postgresql"))
    report = validate_config(checker, open(path).read())
"""

from __future__ import annotations

import difflib
import math
import re
from dataclasses import dataclass, field
from typing import Callable

from repro.core.constraints import (
    AccessControlConstraint,
    BasicTypeConstraint,
    Behavior,
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    SemanticTypeConstraint,
    ValueRelConstraint,
)
from repro.core.engine import SpexOptions, SpexReport
from repro.inject.ar import ConfigAR, ConfigDialect
from repro.knowledge import SemanticType
from repro.lang import types as ct
from repro.lang.source import Location
from repro.runtime.os_model import node_allows, valid_ipv4
from repro.systems.base import SubjectSystem, decode_bool, decode_size
from repro.checker.validate import (
    ERROR,
    KIND_ACCESS_CONTROL,
    KIND_BASIC,
    KIND_CTRL_DEP,
    KIND_RANGE,
    KIND_SEMANTIC,
    KIND_VALUE_REL,
    WARNING,
    Diagnostic,
    validate_config,
)

# A per-parameter validator: (value text, config line) -> diagnostics.
Validator = Callable[[str, int | None], list[Diagnostic]]
# A cross-parameter validator: {param: (value, line)} -> diagnostics.
PairValidator = Callable[[dict[str, tuple[str, int]]], list[Diagnostic]]

_SUFFIXED = re.compile(r"^[+-]?\d+(?:\.\d+)?\s*[a-zA-Z]+$")


@dataclass(frozen=True)
class EnvView:
    """Immutable snapshot of the deployment environment.

    Checkers validate environment-dependent semantics (paths, ports,
    users, hostnames) against the same `EmulatedOS` state the system
    would boot into, captured once at compile time so validator
    closures stay pure and thread-safe.
    """

    paths: dict[str, bool]  # path -> is_dir
    occupied_ports: frozenset[int]
    users: frozenset[str]
    groups: frozenset[str]
    hosts: frozenset[str]
    # ACL facts for access-control validators; paths absent from these
    # maps fall back to permissive defaults (a bare EnvView without
    # ACL data never *proves* an access denial).
    modes: dict[str, int] = field(default_factory=dict)
    owners: dict[str, str] = field(default_factory=dict)
    read_only: frozenset[str] = frozenset()

    @classmethod
    def from_os(cls, os_model) -> "EnvView":
        return cls(
            paths={
                path: node.is_dir for path, node in os_model.files.items()
            },
            occupied_ports=frozenset(os_model.occupied_ports),
            users=frozenset(os_model.users),
            groups=frozenset(os_model.groups),
            hosts=frozenset(os_model.hosts),
            modes={
                path: node.mode for path, node in os_model.files.items()
            },
            owners={
                path: node.owner for path, node in os_model.files.items()
            },
            read_only=frozenset(
                path
                for path, node in os_model.files.items()
                if not node.writable
            ),
        )

    def exists(self, path: str) -> bool:
        return path in self.paths

    def is_dir(self, path: str) -> bool:
        return self.paths.get(path, False)

    def parent_exists(self, path: str) -> bool:
        parent = path.rsplit("/", 1)[0] or "/"
        return self.paths.get(parent, False)

    def resolves(self, name: str) -> bool:
        return name in self.hosts or valid_ipv4(name)

    def can_read(self, path: str, user: str) -> bool:
        return self._allows(path, user, write=False)

    def can_write(self, path: str, user: str) -> bool:
        return self._allows(path, user, write=True)

    def _allows(self, path: str, user: str, write: bool) -> bool:
        # `node_allows` is the runtime's rule verbatim, so the static
        # checker and the emulated OS agree on every verdict.
        return node_allows(
            self.modes.get(path, 0o777),
            self.owners.get(path, user),
            path not in self.read_only,
            user,
            write,
        )


@dataclass
class CompiledChecker:
    """A `ConstraintSet` compiled into closures, ready to validate.

    Instances are immutable-by-convention after `compile_checker`
    returns (the fleet shares one checker across worker threads).
    """

    system: str
    dialect: ConfigDialect
    known_params: frozenset[str]
    param_validators: dict[str, tuple[Validator, ...]]
    pair_validators: tuple[PairValidator, ...]
    defaults: dict[str, str]
    env: EnvView
    spex_key: str = ""
    constraints_compiled: int = 0
    # (param, code) pairs the pristine default config trips; suppressed
    # in every later validation (see module docstring: calibration).
    suppressed: frozenset[tuple[str, str]] = frozenset()
    calibration: tuple[Diagnostic, ...] = ()

    def check(self, config_text: str):
        """Convenience alias for `validate_config(self, text)`."""
        return validate_config(self, config_text)


def compile_checker(
    spex_report: SpexReport,
    system: SubjectSystem,
    env: EnvView | None = None,
    spex_key: str = "",
) -> CompiledChecker:
    """Compile one system's inferred constraints into a checker."""
    if env is None:
        env = EnvView.from_os(system.make_os())
    template = ConfigAR.parse(system.default_config, system.dialect)
    defaults = {entry.name: entry.value for entry in template.entries}

    per_param: dict[str, list[Validator]] = {}
    pairs: list[PairValidator] = []
    compiled = 0
    seen: set[tuple] = set()
    for constraint in spex_report.constraints:
        identity = _constraint_identity(constraint)
        if identity is None or identity in seen:
            continue
        seen.add(identity)
        built = _compile_one(constraint, env, defaults)
        if built is None:
            continue
        compiled += 1
        if isinstance(
            constraint,
            (
                ControlDepConstraint,
                ValueRelConstraint,
                AccessControlConstraint,
            ),
        ):
            # Access-control checks join the cross-parameter pass: the
            # path verdict can hinge on a second (identity) parameter.
            pairs.append(built)
        else:
            per_param.setdefault(constraint.param, []).append(built)

    known = set(spex_report.parameters) | set(defaults)
    checker = CompiledChecker(
        system=system.name,
        dialect=system.dialect,
        known_params=frozenset(known),
        param_validators={
            param: tuple(validators)
            for param, validators in per_param.items()
        },
        pair_validators=tuple(pairs),
        defaults=defaults,
        env=env,
        spex_key=spex_key,
        constraints_compiled=compiled,
    )
    # Calibrate: whatever the vendor's own template trips is inference
    # noise, not a user mistake; record and suppress it.
    baseline = validate_config(checker, system.default_config)
    checker.calibration = tuple(baseline.diagnostics)
    checker.suppressed = frozenset(
        diagnostic.suppression_key for diagnostic in baseline.diagnostics
    )
    return checker


def checker_for_system(
    system: SubjectSystem,
    options: SpexOptions | None = None,
    caches=None,
    env: EnvView | None = None,
) -> CompiledChecker:
    """Fetch (or infer + compile) the checker for one system.

    With a `PipelineCaches`, inference is served by content fingerprint
    from the shared `InferenceCache` and the compiled checker from the
    `checkers` cache, so repeated fleet runs and `check` invocations
    never re-run SPEX for an unchanged program.
    """
    from repro.inject.campaign import Campaign
    from repro.pipeline.cache import PipelineCaches, checker_fingerprint

    caches = caches or PipelineCaches()
    spex_key = caches.inference.key_for(system, options)
    checker_key = checker_fingerprint(
        spex_key, system.default_config, repr(system.dialect)
    )
    campaign = Campaign(
        system,
        spex_options=options or SpexOptions(),
        inference_cache=caches.inference,
    )
    return caches.checkers.get_or_compute(
        checker_key,
        lambda: compile_checker(
            campaign.run_spex(), system, env=env, spex_key=spex_key
        ),
    )


# -- constraint compilation --------------------------------------------------


def _constraint_identity(constraint) -> tuple | None:
    """Location-free identity, so duplicate inferences (same fact seen
    at two code sites) compile to one validator."""
    if isinstance(constraint, BasicTypeConstraint):
        return (constraint.param, "basic", repr(constraint.type))
    if isinstance(constraint, SemanticTypeConstraint):
        return (
            constraint.param,
            "semantic",
            constraint.semantic,
            constraint.unit,
        )
    if isinstance(constraint, NumericRangeConstraint):
        return (
            constraint.param,
            "nrange",
            constraint.valid_lo,
            constraint.valid_hi,
        )
    if isinstance(constraint, EnumRangeConstraint):
        return (
            constraint.param,
            "erange",
            constraint.values,
            constraint.case_sensitive,
        )
    if isinstance(constraint, ControlDepConstraint):
        return (
            constraint.param,
            "ctrl_dep",
            constraint.dep_param,
            constraint.op,
            constraint.value,
        )
    if isinstance(constraint, ValueRelConstraint):
        normalized = constraint.normalized()
        return (
            normalized.param,
            "value_rel",
            normalized.op,
            normalized.other_param,
        )
    if isinstance(constraint, AccessControlConstraint):
        return (
            constraint.param,
            "access",
            constraint.operation,
            constraint.user_param,
        )
    return None


def _compile_one(constraint, env: EnvView, defaults: dict[str, str]):
    if isinstance(constraint, BasicTypeConstraint):
        return _compile_basic(constraint)
    if isinstance(constraint, SemanticTypeConstraint):
        return _compile_semantic(constraint, env)
    if isinstance(constraint, NumericRangeConstraint):
        return _compile_numeric_range(constraint)
    if isinstance(constraint, EnumRangeConstraint):
        return _compile_enum_range(constraint)
    if isinstance(constraint, ControlDepConstraint):
        return _compile_control_dep(constraint, defaults)
    if isinstance(constraint, ValueRelConstraint):
        return _compile_value_rel(constraint, defaults)
    if isinstance(constraint, AccessControlConstraint):
        return _compile_access_control(constraint, env, defaults)
    return None


def _compile_basic(constraint: BasicTypeConstraint) -> Validator | None:
    param, location, typ = constraint.param, constraint.location, constraint.type
    if isinstance(typ, ct.IntType):
        if typ.signed:
            lo, hi = -(1 << (typ.bits - 1)), (1 << (typ.bits - 1)) - 1
        else:
            lo, hi = 0, (1 << typ.bits) - 1

        def check_int(value: str, line: int | None) -> list[Diagnostic]:
            text = value.strip()
            # Config front ends feed switch words through the same
            # integer slot (vsftpd's YES/NO, squid's on/off); a word
            # the boolean decoder understands is not a type mistake.
            if isinstance(decode_bool(text), int):
                return []
            parsed = _parse_int(text)
            if parsed is not None:
                if parsed < lo or parsed > hi:
                    return [
                        _diag(
                            param, KIND_BASIC, "int-overflow", line, location,
                            f"{parsed} overflows the {typ.bits}-bit storage "
                            f"{param} is kept in (valid: {lo}..{hi})",
                            f"use a value between {lo} and {hi}",
                        )
                    ]
                return []
            fractional = _parse_float(text)
            # Non-finite floats ("nan", "1e999") are not representable
            # integers either way; they fall through to the plain
            # not-a-number diagnostic instead of a rounding suggestion.
            if fractional is not None and math.isfinite(fractional):
                return [
                    _diag(
                        param, KIND_BASIC, "fractional-int", line, location,
                        f"{param} is stored as an integer; {text!r} has a "
                        "fractional part the software cannot represent",
                        f"use a whole number, e.g. {int(fractional)}",
                    )
                ]
            if _SUFFIXED.match(text):
                # The Figure 1 class ("9G" read as 9 bytes): spell out
                # the number the user almost certainly meant.
                intended = decode_size(text)
                fix = (
                    f"write the full number: {intended}"
                    if isinstance(intended, int)
                    else "write the full number without a unit suffix"
                )
                return [
                    _diag(
                        param, KIND_BASIC, "unit-suffix", line, location,
                        f"{param} is parsed as a plain integer; the "
                        f"suffix in {text!r} is not understood and would "
                        "be read as a tiny value or rejected",
                        fix,
                    )
                ]
            return [
                _diag(
                    param, KIND_BASIC, "not-an-integer", line, location,
                    f"{param} is an integer setting; {text!r} is not a "
                    "number",
                    "use a whole number",
                )
            ]

        return check_int
    if isinstance(typ, ct.BoolType):

        def check_bool(value: str, line: int | None) -> list[Diagnostic]:
            if isinstance(decode_bool(value), int):
                return []
            return [
                _diag(
                    param, KIND_BASIC, "not-a-boolean", line, location,
                    f"{param} is an on/off switch; {value.strip()!r} is "
                    "neither",
                    "use one of: yes, no, on, off, true, false, 1, 0",
                )
            ]

        return check_bool
    if isinstance(typ, ct.FloatType):

        def check_float(value: str, line: int | None) -> list[Diagnostic]:
            if _parse_float(value.strip()) is not None:
                return []
            return [
                _diag(
                    param, KIND_BASIC, "not-a-number", line, location,
                    f"{param} is numeric; {value.strip()!r} is not a "
                    "number",
                    "use a numeric value",
                )
            ]

        return check_float
    return None  # strings: any text is type-valid


def _compile_semantic(
    constraint: SemanticTypeConstraint, env: EnvView
) -> Validator | None:
    param, location = constraint.param, constraint.location
    semantic = constraint.semantic

    if semantic is SemanticType.FILE:

        def check_file(value: str, line: int | None) -> list[Diagnostic]:
            path = value.strip()
            if not path.startswith("/"):
                return []
            if env.is_dir(path):
                return [
                    _diag(
                        param, KIND_SEMANTIC, "dir-for-file", line, location,
                        f"{param} expects a file, but {path} is a "
                        "directory",
                        "point it at a regular file",
                    )
                ]
            if not env.exists(path) and not env.parent_exists(path):
                return [
                    _diag(
                        param, KIND_SEMANTIC, "missing-path", line, location,
                        f"neither {path} nor its parent directory exists",
                        "create the directory first, or fix the path",
                    )
                ]
            if not env.exists(path):
                return [
                    _diag(
                        param, KIND_SEMANTIC, "absent-file", line, location,
                        f"{path} does not exist yet (its directory does)",
                        "create the file, or confirm the software "
                        "creates it on first use",
                        severity=WARNING,
                    )
                ]
            return []

        return check_file
    if semantic in (SemanticType.DIRECTORY, SemanticType.PATH):
        want_dir = semantic is SemanticType.DIRECTORY

        def check_dir(value: str, line: int | None) -> list[Diagnostic]:
            path = value.strip()
            if not path.startswith("/"):
                return []
            if env.exists(path):
                if want_dir and not env.is_dir(path):
                    return [
                        _diag(
                            param, KIND_SEMANTIC, "file-for-dir", line,
                            location,
                            f"{param} expects a directory, but {path} is "
                            "a regular file",
                            "point it at a directory",
                        )
                    ]
                return []
            if not env.parent_exists(path):
                return [
                    _diag(
                        param, KIND_SEMANTIC, "missing-path", line, location,
                        f"neither {path} nor its parent directory exists",
                        "create the directory first, or fix the path",
                    )
                ]
            return [
                _diag(
                    param, KIND_SEMANTIC, "absent-dir", line, location,
                    f"{path} does not exist yet (its parent does)",
                    "create it, or confirm the software creates it",
                    severity=WARNING,
                )
            ]

        return check_dir
    if semantic is SemanticType.PORT:

        def check_port(value: str, line: int | None) -> list[Diagnostic]:
            port = _parse_int(value.strip())
            if port is None:
                return []  # the basic-type validator reports this
            if port < 0 or port > 65535:
                return [
                    _diag(
                        param, KIND_SEMANTIC, "port-out-of-range", line,
                        location,
                        f"{port} is not a TCP/UDP port (0..65535)",
                        "use a port number between 1 and 65535",
                    )
                ]
            if port in env.occupied_ports:
                return [
                    _diag(
                        param, KIND_SEMANTIC, "port-in-use", line, location,
                        f"port {port} is already taken by another process "
                        "on this host",
                        "pick a free port or stop the other process",
                    )
                ]
            return []

        return check_port
    if semantic is SemanticType.IP_ADDRESS:

        def check_ip(value: str, line: int | None) -> list[Diagnostic]:
            text = value.strip()
            if not text or valid_ipv4(text):
                return []
            return [
                _diag(
                    param, KIND_SEMANTIC, "malformed-ip", line, location,
                    f"{text!r} is not a valid IPv4 address",
                    "use dotted-quad notation with octets 0..255",
                )
            ]

        return check_ip
    if semantic is SemanticType.HOSTNAME:

        def check_host(value: str, line: int | None) -> list[Diagnostic]:
            name = value.strip()
            if not name or env.resolves(name):
                return []
            return [
                _diag(
                    param, KIND_SEMANTIC, "unresolvable-host", line, location,
                    f"the hostname {name!r} does not resolve from this "
                    "host",
                    "check DNS/hosts entries or use an IP address",
                )
            ]

        return check_host
    if semantic is SemanticType.USER:

        def check_user(value: str, line: int | None) -> list[Diagnostic]:
            name = value.strip()
            if not name or name in env.users:
                return []
            return [
                _diag(
                    param, KIND_SEMANTIC, "unknown-user", line, location,
                    f"no account named {name!r} exists on this host",
                    "create the account or name an existing one",
                )
            ]

        return check_user
    if semantic is SemanticType.GROUP:

        def check_group(value: str, line: int | None) -> list[Diagnostic]:
            name = value.strip()
            if not name or name in env.groups:
                return []
            return [
                _diag(
                    param, KIND_SEMANTIC, "unknown-group", line, location,
                    f"no group named {name!r} exists on this host",
                    "create the group or name an existing one",
                )
            ]

        return check_group
    if semantic in (SemanticType.SIZE, SemanticType.TIME):
        noun = "size" if semantic is SemanticType.SIZE else "duration"
        unit = constraint.unit

        def check_magnitude(value: str, line: int | None) -> list[Diagnostic]:
            number = _parse_int(value.strip())
            if number is None or number >= 0:
                return []
            detail = f" (unit: {unit})" if unit is not None else ""
            return [
                _diag(
                    param, KIND_SEMANTIC, f"negative-{noun}", line, location,
                    f"{param} is a {noun}{detail}; {number} is negative",
                    "use a non-negative value",
                )
            ]

        return check_magnitude
    return None


def _compile_numeric_range(constraint: NumericRangeConstraint) -> Validator:
    param, location = constraint.param, constraint.location

    def check_range(value: str, line: int | None) -> list[Diagnostic]:
        number = _parse_number(value.strip())
        if number is None:
            return []  # the basic-type validator reports this
        if constraint.contains(number):
            return []
        if constraint.valid_lo is not None and number < constraint.valid_lo:
            behavior, bound = constraint.below_behavior, constraint.valid_lo
            code, fix = "below-range", f"use a value of at least {_fmt(bound)}"
        else:
            behavior, bound = constraint.above_behavior, constraint.valid_hi
            code, fix = "above-range", f"use a value of at most {_fmt(bound)}"
        return [
            _diag(
                param, KIND_RANGE, code, line, location,
                f"{_fmt(number)} is outside the range the software "
                f"accepts for {param} "
                f"[{_fmt(constraint.valid_lo, '-inf')}, "
                f"{_fmt(constraint.valid_hi, '+inf')}]"
                f"{_behavior_clause(behavior)}",
                fix,
            )
        ]

    return check_range


def _compile_enum_range(constraint: EnumRangeConstraint) -> Validator:
    param, location = constraint.param, constraint.location
    exact = {str(v) for v in constraint.values}
    by_lower = {str(v).lower(): str(v) for v in constraint.values}
    listing = ", ".join(sorted(str(v) for v in constraint.values))

    def check_enum(value: str, line: int | None) -> list[Diagnostic]:
        text = value.strip()
        if not text:
            return []
        # A value the program would decode to a member (boolean words
        # against a {0, 1} ladder, "08" against 8) is acceptable.
        scalar = _decode_scalar(text)
        if any(scalar == v for v in constraint.values):
            return []
        if constraint.case_sensitive:
            if text in exact:
                return []
            canonical = by_lower.get(text.lower())
            if canonical is not None:
                return [
                    _diag(
                        param, KIND_RANGE, "wrong-case", line, location,
                        f"{param} compares its value case-sensitively: "
                        f"{text!r} is not recognised even though "
                        f"{canonical!r} is",
                        f"write it exactly as {canonical!r}",
                    )
                ]
        elif text.lower() in by_lower:
            return []
        close = difflib.get_close_matches(text, sorted(exact), n=1, cutoff=0.6)
        fix = (
            f"did you mean {close[0]!r}? accepted values: {listing}"
            if close
            else f"use one of: {listing}"
        )
        return [
            _diag(
                param, KIND_RANGE, "invalid-choice", line, location,
                f"{text!r} is not among the values the software accepts "
                f"for {param}"
                + (
                    " (it would be silently overruled)"
                    if constraint.silently_overruled
                    else ""
                ),
                fix,
            )
        ]

    return check_enum


def _compile_control_dep(
    constraint: ControlDepConstraint, defaults: dict[str, str]
) -> PairValidator:
    param, location = constraint.param, constraint.location
    dep, op, gate_value = constraint.dep_param, constraint.op, constraint.value
    default_value = defaults.get(param)

    def check_dep(values: dict[str, tuple[str, int]]) -> list[Diagnostic]:
        if param not in values:
            return []
        value, line = values[param]
        if (
            default_value is not None
            and value.strip() == default_value.strip()
        ):
            # The user merely kept the vendor default; only a value
            # they *chose* can be silently ignored against their
            # intent (vendor templates routinely pre-stage settings
            # behind disabled gates, e.g. ssl_tlsv1 under ssl_enable).
            return []
        dep_text = (
            values[dep][0] if dep in values else defaults.get(dep)
        )
        if dep_text is None:
            return []
        holds = _gate_holds(op, _decode_scalar(dep_text), gate_value)
        if holds is None or holds:
            return []
        return [
            _diag(
                param, KIND_CTRL_DEP, "dependency-disabled", line, location,
                f"{param} has no effect while {dep} is {dep_text.strip()!r} "
                f"(it only takes effect when {dep} {op} {gate_value}); the "
                "software will silently ignore this setting",
                f"set {dep} so that {dep} {op} {gate_value}, or remove "
                f"{param}",
            )
        ]

    return check_dep


def _compile_value_rel(
    constraint: ValueRelConstraint, defaults: dict[str, str]
) -> PairValidator:
    param, location = constraint.param, constraint.location
    op, other = constraint.op, constraint.other_param
    compare = _COMPARATORS.get(op)
    if compare is None:
        return None

    def check_rel(values: dict[str, tuple[str, int]]) -> list[Diagnostic]:
        if param not in values and other not in values:
            return []
        left_text = (
            values[param][0] if param in values else defaults.get(param)
        )
        right_text = (
            values[other][0] if other in values else defaults.get(other)
        )
        if left_text is None or right_text is None:
            return []
        left = _parse_number(left_text.strip())
        right = _parse_number(right_text.strip())
        if left is None or right is None or compare(left, right):
            return []
        line = values[param][1] if param in values else values[other][1]
        return [
            _diag(
                param, KIND_VALUE_REL, "relationship-violated", line,
                location,
                f"the software requires {param} {op} {other}, but "
                f"{param} = {_fmt(left)} and {other} = {_fmt(right)}",
                f"adjust the two settings so that {param} {op} {other}",
            )
        ]

    return check_rel


def _compile_access_control(
    constraint: AccessControlConstraint,
    env: EnvView,
    defaults: dict[str, str],
) -> PairValidator:
    param, location = constraint.param, constraint.location
    operation, user_param = constraint.operation, constraint.user_param

    if operation == "mode":

        def check_mode(
            values: dict[str, tuple[str, int]]
        ) -> list[Diagnostic]:
            if param not in values:
                return []
            value, line = values[param]
            text = value.strip()
            try:
                mode = int(text, 8)
            except ValueError:
                mode = -1
            if mode < 0 or mode > 0o7777:
                return [
                    _diag(
                        param, KIND_ACCESS_CONTROL, "invalid-permission",
                        line, location,
                        f"the software installs {param} verbatim as a "
                        f"permission mode (chmod), and {text!r} is not an "
                        "octal mode",
                        "use an octal permission mode such as 0644 or 0750",
                    )
                ]
            if mode & 0o002:
                return [
                    _diag(
                        param, KIND_ACCESS_CONTROL, "world-writable", line,
                        location,
                        f"mode {text} grants write access to every user "
                        "on the host",
                        "drop the world-writable bit (e.g. use 0755)",
                        severity=WARNING,
                    )
                ]
            return []

        return check_mode

    def check_access(
        values: dict[str, tuple[str, int]]
    ) -> list[Diagnostic]:
        # Only fire when the user actually touched the pair; a config
        # that keeps both vendor defaults is calibration's business.
        if param not in values and (
            not user_param or user_param not in values
        ):
            return []
        path_text = (
            values[param][0] if param in values else defaults.get(param)
        )
        if path_text is None:
            return []
        path = path_text.strip()
        if not path.startswith("/"):
            return []
        user_text = None
        if user_param:
            user_text = (
                values[user_param][0]
                if user_param in values
                else defaults.get(user_param)
            )
        user = (user_text or "root").strip()
        if user not in env.users:
            return []  # the unknown-user semantic validator reports it
        if not env.exists(path):
            return []  # the path semantic validators report it
        allowed = (
            env.can_read(path, user)
            if operation == "read"
            else env.can_write(path, user)
        )
        if allowed:
            return []
        line = (
            values[param][1]
            if param in values
            else values[user_param][1]
        )
        mode = env.modes.get(path)
        owner = env.owners.get(path)
        facts = (
            f" (mode {mode:04o}, owner {owner})"
            if mode is not None and owner is not None
            else ""
        )
        actor = f"user {user!r}"
        if user_param:
            actor += f" (the identity {user_param} selects)"
        return [
            _diag(
                param, KIND_ACCESS_CONTROL,
                f"{operation}-access-denied", line, location,
                f"the software must {operation} {path}, but {actor} has "
                f"no {operation} permission there{facts}",
                f"grant {user!r} {operation} access to {path}, or point "
                f"{param} at a path that identity can {operation}",
            )
        ]

    return check_access


# -- small helpers -----------------------------------------------------------


_COMPARATORS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _diag(
    param: str,
    kind: str,
    code: str,
    line: int | None,
    evidence: Location,
    message: str,
    suggestion: str,
    severity: str = ERROR,
) -> Diagnostic:
    return Diagnostic(
        param=param,
        kind=kind,
        code=code,
        severity=severity,
        message=message,
        suggestion=suggestion,
        evidence=evidence,
        config_line=line,
    )


def _parse_int(text: str) -> int | None:
    try:
        return int(text, 10)
    except ValueError:
        return None


def _parse_float(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


def _parse_number(text: str):
    parsed = _parse_int(text)
    return parsed if parsed is not None else _parse_float(text)


def _decode_scalar(text: str):
    """A config value as the comparison operand the program sees:
    boolean words become 1/0 (`decode_bool`, the same decoder the
    subject systems declare), numbers parse, everything else stays a
    stripped string."""
    decoded = decode_bool(text)
    if isinstance(decoded, int):
        return decoded
    number = _parse_number(text.strip())
    return number if number is not None else text.strip()


def _gate_holds(op: str, left, right) -> bool | None:
    """Evaluate `left op right`; None when the operands are not
    comparable (never guess against the user)."""
    compare = _COMPARATORS.get(op)
    if compare is None:
        return None
    left_num = isinstance(left, (int, float))
    right_num = isinstance(right, (int, float))
    if left_num and right_num:
        return compare(left, right)
    if op in ("==", "!="):
        return compare(str(left), str(right))
    return None


def _behavior_clause(behavior: str) -> str:
    if behavior == Behavior.EXIT:
        return "; the software would refuse to start"
    if behavior == Behavior.ERROR_RETURN:
        return "; the software would fail at runtime"
    if behavior == Behavior.RESET:
        return "; the software would silently replace it"
    return ""


def _fmt(number, none_text: str = "?") -> str:
    if number is None:
        return none_text
    if isinstance(number, float) and number.is_integer():
        return str(int(number))
    return str(number)
