"""Deterministic synthetic user-config fleets.

The ROADMAP's deployment story is millions of user config files, most
fine, some wrong in the ways real users get things wrong.  This module
manufactures that fleet: per system, a seeded stream of rendered
configs where each config is either the vendor template or the
template with one planted mistake, the mistake *kind* sampled from the
Tables 9-10 marginals of `repro.study.cases` (the paper's study of
what real users actually misconfigure) and the concrete erroneous
value drawn from the same Table 2 generation rules the injection
campaigns use.

Generation is content-deterministic: config `i` of a (system, seed)
pair is a pure function of those inputs, so fleet shards can be
regenerated independently in worker processes and any flagged config
can be reproduced exactly for interpreter ground-truthing.

Usage::

    from repro.checker.corpus import corpus_pool, generate_config

    pool = corpus_pool(spex_report, system)
    config = generate_config(system.name, pool, template_text, mix,
                             seed=7, index=42)
    config.text          # rendered config file
    config.mistake       # planted Misconfiguration, or None
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.constraints import (
    AccessControlConstraint,
    BasicTypeConstraint,
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    SemanticTypeConstraint,
    ValueRelConstraint,
)
from repro.core.engine import SpexReport
from repro.checker.compile import _parse_number
from repro.inject.ar import ConfigAR
from repro.inject.generators import Misconfiguration, default_generators
from repro.study.cases import case_corpus
from repro.systems.base import SubjectSystem

DEFAULT_MISTAKE_RATE = 0.5

# Mistake-mix hooks: systems (or tests) may register a custom kind
# distribution; `mistake_mix` falls back to the study marginals.
_MIX_OVERRIDES: dict[str, dict[str, float]] = {}


def register_mistake_mix(system: str, mix: dict[str, float]) -> None:
    """Override the mistake-kind distribution for one system.

    `mix` maps constraint-kind slugs (basic / semantic / range /
    ctrl_dep / value_rel / access_control) to relative weights;
    weights are normalised
    at sampling time.  This is the corpus's extension hook for systems
    whose user population errs differently from the studied four."""
    cleaned = {k: float(v) for k, v in mix.items() if float(v) > 0}
    if not cleaned:
        raise ValueError("mistake mix needs at least one positive weight")
    _MIX_OVERRIDES[system] = cleaned


def clear_mistake_mixes() -> None:
    _MIX_OVERRIDES.clear()


def mistake_mix(system: str) -> dict[str, float]:
    """The mistake-kind marginal for one system.

    Systems with a studied case set (Tables 9-10) use their own
    in-scope kind counts; the rest use the pooled marginal across
    every studied system - the paper's point that user mistakes
    concentrate in the same constraint categories everywhere."""
    if system in _MIX_OVERRIDES:
        return dict(_MIX_OVERRIDES[system])
    corpus = case_corpus()
    cases = corpus.get(system)
    if cases is None:
        cases = [case for case_set in corpus.values() for case in case_set]
    counts: dict[str, float] = {}
    for case in cases:
        if case.in_spex_scope:
            counts[case.kind] = counts.get(case.kind, 0.0) + 1.0
    return counts


def kind_of(constraint) -> str | None:
    """Constraint class -> the study's kind slug."""
    if isinstance(constraint, BasicTypeConstraint):
        return "basic"
    if isinstance(constraint, SemanticTypeConstraint):
        return "semantic"
    if isinstance(constraint, (NumericRangeConstraint, EnumRangeConstraint)):
        return "range"
    if isinstance(constraint, ControlDepConstraint):
        return "ctrl_dep"
    if isinstance(constraint, ValueRelConstraint):
        return "value_rel"
    if isinstance(constraint, AccessControlConstraint):
        return "access_control"
    return None


@dataclass(frozen=True)
class SyntheticConfig:
    """One fleet member: a rendered config plus its ground truth."""

    config_id: str
    system: str
    index: int
    text: str
    mistake: Misconfiguration | None = None
    mistake_kind: str | None = None

    @property
    def is_mistaken(self) -> bool:
        return self.mistake is not None


def corpus_pool(
    spex_report: SpexReport, system: SubjectSystem
) -> dict[str, list[Misconfiguration]]:
    """The plantable mistakes for one system, grouped by kind.

    Drawn from the Table 2 generation rules, then filtered down to
    *actual constraint violations*:

    * the ``extreme-value`` rule is excluded - its values conform to
      every inferred constraint (they probe hard-coded limits, the
      injection harness's job, not a constraint checker's);
    * range-rule injections the constraint itself accepts are excluded
      (e.g. case alternation of an enum value the system compares
      case-insensitively - not a user mistake at all).
    """
    template = system.template_ar()
    pool: dict[str, list[Misconfiguration]] = {}
    for misconf in default_generators().generate(
        spex_report.constraints, template
    ):
        if misconf.rule == "extreme-value":
            continue
        constraint = misconf.constraint
        if isinstance(
            constraint, (NumericRangeConstraint, EnumRangeConstraint)
        ):
            injected = misconf.settings[0][1]
            # Same parser the compiled range validators use, so
            # "plantable mistake" and "checker can flag it" agree.
            number = _parse_number(injected)
            probe = number if (
                isinstance(constraint, NumericRangeConstraint)
                and number is not None
            ) else injected
            if constraint.contains(probe):
                continue
        kind = kind_of(constraint)
        if kind is None:
            continue
        pool.setdefault(kind, []).append(misconf)
    return pool


def pool_digest(pool: dict[str, list[Misconfiguration]]) -> str:
    """Content hash of the plantable-mistake roster.  Worker processes
    that regenerate the pool verify it against the parent's digest, so
    a divergent re-inference (spawn start method, different hash seed)
    fails loudly instead of planting different mistakes."""
    digest = hashlib.sha256()
    for kind in sorted(pool):
        digest.update(kind.encode("utf-8"))
        for misconf in pool[kind]:
            digest.update(b"\x00")
            digest.update(repr((misconf.settings, misconf.rule)).encode())
        digest.update(b"\x01")
    return digest.hexdigest()


def generate_config(
    system_name: str,
    pool: dict[str, list[Misconfiguration]],
    template: ConfigAR,
    mix: dict[str, float],
    seed: int,
    index: int,
    mistake_rate: float = DEFAULT_MISTAKE_RATE,
) -> SyntheticConfig:
    """Config `index` of the (system, seed) fleet - a pure function of
    its arguments, so shards regenerate independently."""
    config_id = f"{system_name}:{seed}:{index:06d}"
    rng = random.Random(f"fleet|{config_id}")
    marker = f"# synthetic fleet config {config_id}\n"
    kinds = sorted(k for k in mix if pool.get(k))
    if not kinds or rng.random() >= mistake_rate:
        return SyntheticConfig(
            config_id=config_id,
            system=system_name,
            index=index,
            text=template.serialize() + marker,
        )
    weights = [mix[k] for k in kinds]
    kind = rng.choices(kinds, weights=weights, k=1)[0]
    mistake = rng.choice(pool[kind])
    ar = template.clone()
    for name, value in mistake.settings:
        ar.set(name, value)
    return SyntheticConfig(
        config_id=config_id,
        system=system_name,
        index=index,
        text=ar.serialize() + marker,
        mistake=mistake,
        mistake_kind=kind,
    )


def iter_corpus(
    system: SubjectSystem,
    pool: dict[str, list[Misconfiguration]],
    size: int,
    seed: int = 0,
    mistake_rate: float = DEFAULT_MISTAKE_RATE,
    mix: dict[str, float] | None = None,
    start: int = 0,
    template: ConfigAR | None = None,
) -> Iterator[SyntheticConfig]:
    """Stream a (slice of a) fleet without materialising it.

    Callers streaming many slices (the fleet's chunk loop) pass the
    parsed `template` once instead of re-parsing it per slice."""
    if template is None:
        template = system.template_ar()
    mix = mix if mix is not None else mistake_mix(system.name)
    for index in range(start, start + size):
        yield generate_config(
            system.name, pool, template, mix, seed, index, mistake_rate
        )
