"""Fleet-scale configuration checking: constraints -> validators.

The third pillar of the reproduction (infer -> inject -> **check**).
Where `repro.core` infers constraints from source and `repro.inject`
proves systems react badly to violations, this package *consumes*
constraints to validate user config files before deployment, with
diagnostics that do not blame the user: every finding cites the code
evidence the constraint came from and proposes a concrete fix.

Layering: `repro.checker` sits above `repro.pipeline` (whose caches
and executors it reuses) and below `repro.reporting` (which renders
fleet reports and exposes the `check` / `fleet` CLI commands).
"""

from repro.checker.compile import (
    CompiledChecker,
    EnvView,
    checker_for_system,
    compile_checker,
)
from repro.checker.corpus import (
    SyntheticConfig,
    corpus_pool,
    generate_config,
    iter_corpus,
    mistake_mix,
    register_mistake_mix,
)
from repro.checker.fleet import (
    AgreementReport,
    ConfigOutcome,
    FleetReport,
    SystemFleetResult,
    run_fleet,
)
from repro.checker.validate import (
    Diagnostic,
    ValidationReport,
    validate_config,
)

__all__ = [
    "AgreementReport",
    "CompiledChecker",
    "ConfigOutcome",
    "Diagnostic",
    "EnvView",
    "FleetReport",
    "SyntheticConfig",
    "SystemFleetResult",
    "ValidationReport",
    "checker_for_system",
    "compile_checker",
    "corpus_pool",
    "generate_config",
    "iter_corpus",
    "mistake_mix",
    "register_mistake_mix",
    "run_fleet",
    "validate_config",
]
