"""Fleet-scale config validation: shard a synthetic corpus over the
pipeline executors.

`run_fleet` is the third pillar's throughput layer (infer -> inject ->
**check**): per system it compiles (or fetches, content-addressed) the
constraint checker, then streams the seeded synthetic corpus through
it in chunks, fanned out over the same serial / thread / process
executor abstraction the campaign pipeline uses.  Each config's
outcome is compared against the corpus's planted ground truth, giving
per-system precision/recall (`repro.core.accuracy.PrecisionRecall`),
and a seeded sample of flagged configs is ground-truthed against the
injection harness: a flag only counts as *confirmed* when the
interpreter observably misbehaves (or pinpoints the mistake) under the
very same config.

Process sharding follows the campaign pipeline's honesty rules: tasks
carry (system name, options, chunk range, pool digest), workers
regenerate their shard deterministically and verify the digest before
validating, and fork-started workers inherit the parent's inference
result through a pre-fork seed so they never re-infer.

Usage::

    from repro.checker import run_fleet

    report = run_fleet(size=1500, executor="process")
    report.total_configs, report.throughput()
    for result in report.results:
        print(result.name, result.scores.precision, result.scores.recall)
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.accuracy import PrecisionRecall, precision_recall
from repro.core.engine import SpexOptions
from repro.checker.compile import CompiledChecker, checker_for_system
from repro.checker.corpus import (
    DEFAULT_MISTAKE_RATE,
    SyntheticConfig,
    corpus_pool,
    generate_config,
    iter_corpus,
    mistake_mix,
    pool_digest,
)
from repro.checker.validate import validate_config
from repro.obs import get_registry, metrics_delta, span

DEFAULT_CHUNK_SIZE = 256


@dataclass(frozen=True)
class ConfigOutcome:
    """What the checker said about one fleet member (compact: this is
    what crosses process boundaries, thousands at a time)."""

    index: int
    config_id: str
    planted_kind: str | None
    flagged: bool
    errors: int
    warnings: int
    error_kinds: tuple[str, ...]

    @property
    def is_mistaken(self) -> bool:
        return self.planted_kind is not None


@dataclass
class SystemFleetResult:
    """One system's slice of a fleet run."""

    name: str
    corpus_size: int
    planted: int
    flagged: int
    errors: int
    warnings: int
    by_kind: dict[str, int]
    scores: PrecisionRecall
    duration: float  # summed chunk-validation time (CPU-side)
    checker_from_cache: bool = False

    def summary_dict(self) -> dict:
        return {
            "name": self.name,
            "corpus_size": self.corpus_size,
            "planted": self.planted,
            "flagged": self.flagged,
            "errors": self.errors,
            "warnings": self.warnings,
            "by_kind": dict(sorted(self.by_kind.items())),
            "scores": self.scores.summary_dict(),
            "duration": self.duration,
            "checker_from_cache": self.checker_from_cache,
        }


@dataclass
class AgreementReport:
    """Interpreter ground-truthing of a flagged-config sample."""

    sampled: int = 0
    confirmed: int = 0  # interpreter misbehaved or pinpointed the flag
    refuted: int = 0  # interpreter accepted the config silently
    details: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def confirmed_fraction(self) -> float:
        return self.confirmed / self.sampled if self.sampled else 0.0

    def summary_dict(self) -> dict:
        return {
            "sampled": self.sampled,
            "confirmed": self.confirmed,
            "refuted": self.refuted,
            "confirmed_fraction": self.confirmed_fraction,
            "details": [list(d) for d in self.details],
        }


@dataclass
class FleetReport:
    """Aggregate outcome of one fleet validation run."""

    results: list[SystemFleetResult]
    executor: str
    # Generation + validation wall clock; the optional interpreter
    # agreement phase is deliberately outside it (see `run_fleet`).
    wall_time: float
    seed: int
    mistake_rate: float
    chunk_size: int
    cache_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    agreement: AgreementReport | None = None

    @property
    def total_configs(self) -> int:
        return sum(r.corpus_size for r in self.results)

    def total_flagged(self) -> int:
        return sum(r.flagged for r in self.results)

    def throughput(self) -> float:
        """Configs validated per wall-clock second."""
        return self.total_configs / self.wall_time if self.wall_time else 0.0

    def scores(self) -> PrecisionRecall:
        total = PrecisionRecall()
        for result in self.results:
            total = total + result.scores
        return total

    def result_for(self, name: str) -> SystemFleetResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    def summary_dict(self) -> dict:
        return {
            "executor": self.executor,
            "wall_time": self.wall_time,
            "seed": self.seed,
            "mistake_rate": self.mistake_rate,
            "chunk_size": self.chunk_size,
            "total_configs": self.total_configs,
            "throughput": self.throughput(),
            "scores": self.scores().summary_dict(),
            "systems": [r.summary_dict() for r in self.results],
            "cache_stats": self.cache_stats,
            "agreement": (
                self.agreement.summary_dict() if self.agreement else None
            ),
        }


@dataclass
class _SystemContext:
    """Parent-side per-system state for one fleet run."""

    system: object
    checker: CompiledChecker
    pool: dict
    digest: str
    mix: dict[str, float]
    template: object
    from_cache: bool


def run_fleet(
    systems: list[str] | None = None,
    size: int = 200,
    seed: int = 0,
    mistake_rate: float = DEFAULT_MISTAKE_RATE,
    executor: str = "serial",
    max_workers: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    spex_options: SpexOptions | None = None,
    caches=None,
    agreement_sample: int = 0,
    engine: str | None = None,
) -> FleetReport:
    """Validate `size` synthetic configs per target system.

    Diagnostics are deterministic for a fixed (seed, systems, size,
    mistake_rate) regardless of executor: chunk results fold back in
    submission order and each config is a pure function of its index.
    """
    from repro.pipeline.cache import PipelineCaches
    from repro.pipeline.executor import ProcessExecutor, resolve_executor
    from repro.systems.registry import iter_systems

    caches = caches if caches is not None else PipelineCaches()
    options = spex_options or SpexOptions()
    chosen = resolve_executor(executor, max_workers)
    chunk_size = max(1, chunk_size)
    get_registry().inc("fleet.runs")
    started = time.perf_counter()

    contexts: dict[str, _SystemContext] = {}
    tasks: list[tuple[str, int, int]] = []  # (system, start, count)
    with span("fleet.compile"):
        for system in iter_systems(systems):
            before = caches.checkers.stats.snapshot()
            checker = checker_for_system(system, options, caches=caches)
            from_cache = caches.checkers.stats.hits > before["hits"]
            # peek, not get: compilation already populated this entry,
            # and the footer's hit counters must reflect avoided
            # inference runs, not this bookkeeping read.
            spex_report = caches.inference.peek(
                caches.inference.key_for(system, options)
            )
            if spex_report is None:  # pragma: no cover - cache contract
                raise RuntimeError(
                    f"inference result for {system.name} missing after "
                    "checker compilation"
                )
            pool = corpus_pool(spex_report, system)
            contexts[system.name] = _SystemContext(
                system=system,
                checker=checker,
                pool=pool,
                digest=pool_digest(pool),
                mix=mistake_mix(system.name),
                template=system.template_ar(),
                from_cache=from_cache,
            )
            for start in range(0, size, chunk_size):
                tasks.append(
                    (system.name, start, min(chunk_size, size - start))
                )

    with span(
        "fleet.validate", executor=chosen.name, chunks=len(tasks)
    ):
        if isinstance(chosen, ProcessExecutor) and len(tasks) > 1:
            chunk_results = _run_chunks_in_processes(
                chosen, contexts, tasks, options, seed, mistake_rate, caches
            )
        else:
            chunk_results = chosen.map(
                lambda task: _validate_chunk_inline(
                    contexts[task[0]], task, seed, mistake_rate
                ),
                tasks,
            )

    # Fold chunk results back in submission order (determinism) while
    # streaming per-system tallies instead of keeping every outcome.
    folds: dict[str, _SystemFold] = {
        name: _SystemFold() for name in contexts
    }
    for (name, _, _), (outcomes, duration) in zip(tasks, chunk_results):
        folds[name].absorb(outcomes, duration)

    results = [
        fold.result(name, contexts[name].from_cache)
        for name, fold in folds.items()
    ]
    # Throughput is a *checking* claim: stop the clock before the
    # optional interpreter ground-truthing, whose harness launches
    # would otherwise dominate small fleets' configs/s.
    wall_time = time.perf_counter() - started
    agreement = None
    if agreement_sample > 0:
        with span("fleet.agreement", sample=agreement_sample):
            agreement = ground_truth_agreement(
                contexts,
                folds,
                seed,
                mistake_rate,
                agreement_sample,
                caches,
                engine=engine,
            )
    return FleetReport(
        results=results,
        executor=chosen.name,
        wall_time=wall_time,
        seed=seed,
        mistake_rate=mistake_rate,
        chunk_size=chunk_size,
        cache_stats=caches.stats(),
        agreement=agreement,
    )


class _SystemFold:
    """Streaming accumulator for one system's chunk results."""

    def __init__(self) -> None:
        self.corpus_size = 0
        self.planted = 0
        self.errors = 0
        self.warnings = 0
        self.by_kind: dict[str, int] = {}
        self.duration = 0.0
        self.flagged_ids: list[str] = []
        self.planted_ids: list[str] = []
        self.flagged_mistaken: list[ConfigOutcome] = []

    def absorb(self, outcomes: list[ConfigOutcome], duration: float) -> None:
        self.duration += duration
        for outcome in outcomes:
            self.corpus_size += 1
            self.errors += outcome.errors
            self.warnings += outcome.warnings
            for kind in outcome.error_kinds:
                self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
            if outcome.is_mistaken:
                self.planted += 1
                self.planted_ids.append(outcome.config_id)
            if outcome.flagged:
                self.flagged_ids.append(outcome.config_id)
                if outcome.is_mistaken:
                    self.flagged_mistaken.append(outcome)

    def result(self, name: str, from_cache: bool) -> SystemFleetResult:
        return SystemFleetResult(
            name=name,
            corpus_size=self.corpus_size,
            planted=self.planted,
            flagged=len(self.flagged_ids),
            errors=self.errors,
            warnings=self.warnings,
            by_kind=self.by_kind,
            scores=precision_recall(self.flagged_ids, self.planted_ids),
            duration=self.duration,
            checker_from_cache=from_cache,
        )


def _outcome_of(config: SyntheticConfig, report) -> ConfigOutcome:
    return ConfigOutcome(
        index=config.index,
        config_id=config.config_id,
        planted_kind=config.mistake_kind,
        flagged=report.flagged,
        errors=len(report.errors()),
        warnings=len(report.warnings()),
        error_kinds=report.kinds_flagged(),
    )


def _validate_chunk_inline(
    context: _SystemContext,
    task: tuple[str, int, int],
    seed: int,
    mistake_rate: float,
) -> tuple[list[ConfigOutcome], float]:
    """Serial/thread chunk task: share the parent's compiled checker
    directly (closures are pure, so threads are safe)."""
    _, start, count = task
    registry = get_registry()
    registry.inc("fleet.chunks")
    begun = time.perf_counter()
    outcomes = []
    for config in iter_corpus(
        context.system,
        context.pool,
        count,
        seed=seed,
        mistake_rate=mistake_rate,
        mix=context.mix,
        start=start,
        template=context.template,
    ):
        outcomes.append(
            _outcome_of(config, validate_config(context.checker, config.text))
        )
    duration = time.perf_counter() - begun
    registry.observe("fleet.chunk_seconds", duration)
    return outcomes, duration


# -- interpreter ground-truthing ---------------------------------------------


def ground_truth_agreement(
    contexts: dict[str, _SystemContext],
    folds: dict[str, "_SystemFold"],
    seed: int,
    mistake_rate: float,
    sample_size: int,
    caches,
    engine: str | None = None,
) -> AgreementReport:
    """Re-test a seeded sample of flagged configs under the injection
    harness.  A flag is *confirmed* when the interpreter observably
    reacts to the planted mistake - a bad reaction (crash, early
    termination, functional failure, silent violation/ignorance) or a
    pinpointing rejection; it is *refuted* only when the system accepts
    the config with no observable effect, meaning the checker cried
    wolf."""
    from repro.inject.harness import InjectionHarness

    candidates: list[tuple[str, ConfigOutcome]] = []
    for name in sorted(folds):
        for outcome in folds[name].flagged_mistaken:
            candidates.append((name, outcome))
    rng = random.Random(f"fleet-agreement|{seed}")
    if len(candidates) > sample_size:
        candidates = rng.sample(candidates, sample_size)

    report = AgreementReport()
    harnesses: dict[str, InjectionHarness] = {}
    for name, outcome in candidates:
        context = contexts[name]
        config = generate_config(
            name,
            context.pool,
            context.template,
            context.mix,
            seed,
            outcome.index,
            mistake_rate,
        )
        if config.mistake is None:  # pragma: no cover - determinism guard
            raise RuntimeError(
                f"regenerated config {outcome.config_id} lost its planted "
                "mistake; corpus generation is no longer deterministic"
            )
        harness = harnesses.get(name)
        if harness is None:
            harness = harnesses[name] = InjectionHarness(
                context.system,
                launch_cache=caches.launches,
                snapshot_cache=caches.snapshots,
                engine=engine,
            )
        verdict = harness.test_misconfiguration(config.mistake)
        misbehaved = (
            verdict.reaction.is_vulnerability or verdict.reaction.pinpointed
        )
        report.sampled += 1
        if misbehaved:
            report.confirmed += 1
        else:
            report.refuted += 1
        report.details.append(
            (
                outcome.config_id,
                str(verdict.reaction.category),
                verdict.reaction.detail,
            )
        )
    return report


# -- process-executor fleet workers ------------------------------------------
#
# Mirrors `repro.inject.campaign`'s worker design: the parent plants
# pure seed data (the inference result) in module state right before
# the pool forks; each worker privately memoizes its rebuilt context
# (checker, pool, template) so serving many chunks pays the rebuild
# once, and verifies the pool digest so a divergent re-inference fails
# loudly instead of planting different mistakes.

_FLEET_SEEDS: dict[tuple[str, str], object] = {}
_FLEET_CONTEXTS: dict[tuple[str, str], tuple] = {}


def _run_chunks_in_processes(
    executor,
    contexts: dict[str, _SystemContext],
    tasks: list[tuple[str, int, int]],
    options: SpexOptions,
    seed: int,
    mistake_rate: float,
    caches,
) -> list[tuple[list[ConfigOutcome], float]]:
    options_fp = options.fingerprint()
    seed_keys = []
    for name, context in contexts.items():
        key = (name, options_fp)
        spex_report = caches.inference.peek(
            caches.inference.key_for(context.system, options)
        )
        _FLEET_SEEDS[key] = spex_report
        seed_keys.append(key)
    worker_tasks = [
        (
            name,
            options,
            seed,
            mistake_rate,
            start,
            count,
            contexts[name].digest,
            tuple(sorted(contexts[name].mix.items())),
        )
        for name, start, count in tasks
    ]
    try:
        raw = executor.map(_validate_chunk_by_name, worker_tasks)
    finally:
        for key in seed_keys:
            _FLEET_SEEDS.pop(key, None)
    out: list[tuple[list[ConfigOutcome], float]] = []
    for outcomes, duration, checker_delta, obs_delta in raw:
        caches.checkers.absorb_stats(checker_delta)
        get_registry().absorb(obs_delta)
        out.append((outcomes, duration))
    return out


def _fleet_worker_context(name: str, options: SpexOptions):
    from repro.inject.campaign import Campaign
    from repro.systems.registry import get_system

    key = (name, options.fingerprint())
    context = _FLEET_CONTEXTS.get(key)
    if context is not None:
        return context + ({"hits": 1},)
    system = get_system(name)
    spex_report = _FLEET_SEEDS.get(key)
    if spex_report is None:
        # Spawn start method (or a cold worker): recompute; the pool
        # digest check below catches any hash-seed divergence.
        spex_report = Campaign(system, spex_options=options).run_spex()
    from repro.checker.compile import compile_checker

    checker = compile_checker(spex_report, system)
    pool = corpus_pool(spex_report, system)
    context = (system, checker, pool, pool_digest(pool), system.template_ar())
    _FLEET_CONTEXTS[key] = context
    return context + ({"misses": 1},)


def _validate_chunk_by_name(task):
    """Process-pool entry point for one corpus chunk.

    Returns (outcomes, chunk duration, checker-cache stats delta,
    metrics delta); outcomes are compact value objects, so no slimming
    is needed.  The metrics delta folds the worker's chunk counters
    and stage-timing histograms into the parent registry."""
    (
        name,
        options,
        seed,
        mistake_rate,
        start,
        count,
        parent_digest,
        mix_items,
    ) = task
    system, checker, pool, digest, template, stats_delta = (
        _fleet_worker_context(name, options)
    )
    if digest != parent_digest:
        raise RuntimeError(
            f"worker rebuilt a divergent mistake pool for {name}: the "
            "plantable misconfigurations do not match what the parent "
            "sampled from (re-inference is sensitive to the interpreter "
            "hash seed; use a fork start method or set PYTHONHASHSEED)"
        )
    registry = get_registry()
    obs_before = registry.snapshot()
    registry.inc("fleet.chunks")
    mix = dict(mix_items)
    begun = time.perf_counter()
    outcomes = []
    for index in range(start, start + count):
        config = generate_config(
            name, pool, template, mix, seed, index, mistake_rate
        )
        outcomes.append(
            _outcome_of(config, validate_config(checker, config.text))
        )
    duration = time.perf_counter() - begun
    registry.observe("fleet.chunk_seconds", duration)
    return (
        outcomes,
        duration,
        stats_delta,
        metrics_delta(obs_before, registry.snapshot()),
    )
