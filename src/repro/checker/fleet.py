"""Fleet-scale config validation: shard a synthetic corpus over the
pipeline executors.

`run_fleet` is the third pillar's throughput layer (infer -> inject ->
**check**): per system it compiles (or fetches, content-addressed) the
constraint checker, then streams the seeded synthetic corpus through
it in chunks, fanned out over the same serial / thread / process
executor abstraction the campaign pipeline uses.  Each config's
outcome is compared against the corpus's planted ground truth, giving
per-system precision/recall (`repro.core.accuracy.PrecisionRecall`),
and a seeded sample of flagged configs is ground-truthed against the
injection harness: a flag only counts as *confirmed* when the
interpreter observably misbehaves (or pinpoints the mistake) under the
very same config.

Process sharding follows the campaign pipeline's honesty rules: tasks
carry (system name, options, chunk range, pool digest), workers
regenerate their shard deterministically and verify the digest before
validating, and fork-started workers inherit the parent's inference
result through a pre-fork seed so they never re-infer.

Usage::

    from repro.checker import run_fleet

    report = run_fleet(size=1500, executor="process")
    report.total_configs, report.throughput()
    for result in report.results:
        print(result.name, result.scores.precision, result.scores.recall)
"""

from __future__ import annotations

import dataclasses
import json
import random
import time
from dataclasses import dataclass, field

from repro.core.accuracy import PrecisionRecall, precision_recall
from repro.core.engine import SpexOptions
from repro.checker.compile import CompiledChecker, checker_for_system
from repro.checker.corpus import (
    DEFAULT_MISTAKE_RATE,
    SyntheticConfig,
    corpus_pool,
    generate_config,
    iter_corpus,
    mistake_mix,
    pool_digest,
)
from repro.checker.validate import validate_config
from repro.obs import get_registry, metrics_delta, span
from repro.resilience import CheckpointStore, FailedShard, RetryPolicy

DEFAULT_CHUNK_SIZE = 256


@dataclass(frozen=True)
class ConfigOutcome:
    """What the checker said about one fleet member (compact: this is
    what crosses process boundaries, thousands at a time)."""

    index: int
    config_id: str
    planted_kind: str | None
    flagged: bool
    errors: int
    warnings: int
    error_kinds: tuple[str, ...]

    @property
    def is_mistaken(self) -> bool:
        return self.planted_kind is not None


@dataclass
class SystemFleetResult:
    """One system's slice of a fleet run."""

    name: str
    corpus_size: int
    planted: int
    flagged: int
    errors: int
    warnings: int
    by_kind: dict[str, int]
    scores: PrecisionRecall
    duration: float  # summed chunk-validation time (CPU-side)
    checker_from_cache: bool = False

    def summary_dict(self) -> dict:
        return {
            "name": self.name,
            "corpus_size": self.corpus_size,
            "planted": self.planted,
            "flagged": self.flagged,
            "errors": self.errors,
            "warnings": self.warnings,
            "by_kind": dict(sorted(self.by_kind.items())),
            "scores": self.scores.summary_dict(),
            "duration": self.duration,
            "checker_from_cache": self.checker_from_cache,
        }


@dataclass
class AgreementReport:
    """Interpreter ground-truthing of a flagged-config sample."""

    sampled: int = 0
    confirmed: int = 0  # interpreter misbehaved or pinpointed the flag
    refuted: int = 0  # interpreter accepted the config silently
    details: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def confirmed_fraction(self) -> float:
        return self.confirmed / self.sampled if self.sampled else 0.0

    def summary_dict(self) -> dict:
        return {
            "sampled": self.sampled,
            "confirmed": self.confirmed,
            "refuted": self.refuted,
            "confirmed_fraction": self.confirmed_fraction,
            "details": [list(d) for d in self.details],
        }


@dataclass
class FleetReport:
    """Aggregate outcome of one fleet validation run."""

    results: list[SystemFleetResult]
    executor: str
    # Generation + validation wall clock; the optional interpreter
    # agreement phase is deliberately outside it (see `run_fleet`).
    wall_time: float
    seed: int
    mistake_rate: float
    chunk_size: int
    cache_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    agreement: AgreementReport | None = None
    # Shards that exhausted their retry budget under a RetryPolicy; a
    # degraded run reports them instead of aborting (their configs are
    # simply absent from the folded tallies).
    failed_shards: list[FailedShard] = field(default_factory=list)

    @property
    def total_configs(self) -> int:
        return sum(r.corpus_size for r in self.results)

    def total_flagged(self) -> int:
        return sum(r.flagged for r in self.results)

    def throughput(self) -> float:
        """Configs validated per wall-clock second."""
        return self.total_configs / self.wall_time if self.wall_time else 0.0

    def scores(self) -> PrecisionRecall:
        total = PrecisionRecall()
        for result in self.results:
            total = total + result.scores
        return total

    def result_for(self, name: str) -> SystemFleetResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)

    def summary_dict(self) -> dict:
        return {
            "executor": self.executor,
            "wall_time": self.wall_time,
            "seed": self.seed,
            "mistake_rate": self.mistake_rate,
            "chunk_size": self.chunk_size,
            "total_configs": self.total_configs,
            "throughput": self.throughput(),
            "scores": self.scores().summary_dict(),
            "systems": [r.summary_dict() for r in self.results],
            "cache_stats": self.cache_stats,
            "agreement": (
                self.agreement.summary_dict() if self.agreement else None
            ),
            "failed_shards": [
                shard.summary_dict() for shard in self.failed_shards
            ],
        }


@dataclass
class _SystemContext:
    """Parent-side per-system state for one fleet run."""

    system: object
    checker: CompiledChecker
    pool: dict
    digest: str
    mix: dict[str, float]
    template: object
    from_cache: bool


def run_fleet(
    systems: list[str] | None = None,
    size: int = 200,
    seed: int = 0,
    mistake_rate: float = DEFAULT_MISTAKE_RATE,
    executor: str = "serial",
    max_workers: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    spex_options: SpexOptions | None = None,
    caches=None,
    agreement_sample: int = 0,
    engine: str | None = None,
    retry_policy: RetryPolicy | None = None,
    chaos=None,
    checkpoint: CheckpointStore | None = None,
) -> FleetReport:
    """Validate `size` synthetic configs per target system.

    Diagnostics are deterministic for a fixed (seed, systems, size,
    mistake_rate) regardless of executor: chunk results fold back in
    submission order and each config is a pure function of its index.

    `retry_policy` supervises chunk execution (worker-crash recovery,
    watchdog timeouts, quarantine into `failed_shards`); `chaos` is a
    `repro.chaos.ChaosSchedule` injecting faults into chunk tasks;
    `checkpoint` persists every completed chunk so a killed run
    resumes from its last checkpoint — the run key content-addresses
    the full spec (systems, size, seed, rates, option fingerprints,
    pool digests), so a checkpoint can never leak across specs.
    """
    from repro.pipeline.cache import PipelineCaches
    from repro.pipeline.executor import ProcessExecutor, resolve_executor
    from repro.systems.registry import iter_systems

    caches = caches if caches is not None else PipelineCaches()
    options = spex_options or SpexOptions()
    chosen = resolve_executor(executor, max_workers)
    chunk_size = max(1, chunk_size)
    get_registry().inc("fleet.runs")
    started = time.perf_counter()

    contexts: dict[str, _SystemContext] = {}
    tasks: list[tuple[str, int, int]] = []  # (system, start, count)
    with span("fleet.compile"):
        for system in iter_systems(systems):
            before = caches.checkers.stats.snapshot()
            checker = checker_for_system(system, options, caches=caches)
            from_cache = caches.checkers.stats.hits > before["hits"]
            # peek, not get: compilation already populated this entry,
            # and the footer's hit counters must reflect avoided
            # inference runs, not this bookkeeping read.
            spex_report = caches.inference.peek(
                caches.inference.key_for(system, options)
            )
            if spex_report is None:  # pragma: no cover - cache contract
                raise RuntimeError(
                    f"inference result for {system.name} missing after "
                    "checker compilation"
                )
            pool = corpus_pool(spex_report, system)
            contexts[system.name] = _SystemContext(
                system=system,
                checker=checker,
                pool=pool,
                digest=pool_digest(pool),
                mix=mistake_mix(system.name),
                template=system.template_ar(),
                from_cache=from_cache,
            )
            for start in range(0, size, chunk_size):
                tasks.append(
                    (system.name, start, min(chunk_size, size - start))
                )

    run_key = _fleet_run_key(
        contexts, size, seed, mistake_rate, chunk_size, options
    )
    restored: dict[int, tuple[list[ConfigOutcome], float]] = {}
    pending: list[tuple[int, tuple[str, int, int]]] = []
    if checkpoint is not None:
        registry = get_registry()
        for position, task in enumerate(tasks):
            blob = checkpoint.load(run_key, _task_shard_key(task))
            decoded = _decode_chunk_payload(blob) if blob else None
            if decoded is not None:
                restored[position] = decoded
                registry.inc("resilience.checkpoint_hits")
            else:
                pending.append((position, task))
    else:
        pending = list(enumerate(tasks))

    failed_shards: list[FailedShard] = []
    executed: dict[int, tuple[list[ConfigOutcome], float]] = {}
    if pending:
        pending_tasks = [task for _, task in pending]
        with span(
            "fleet.validate", executor=chosen.name, chunks=len(pending_tasks)
        ):
            if isinstance(chosen, ProcessExecutor) and len(pending_tasks) > 1:
                chunk_results, failures = _run_chunks_in_processes(
                    chosen,
                    contexts,
                    pending_tasks,
                    options,
                    seed,
                    mistake_rate,
                    caches,
                    retry_policy=retry_policy,
                    chaos=chaos,
                    checkpoint=checkpoint,
                    run_key=run_key,
                )
            else:
                chunk_results, failures = _run_chunks_inline(
                    chosen,
                    contexts,
                    pending_tasks,
                    seed,
                    mistake_rate,
                    retry_policy=retry_policy,
                    chaos=chaos,
                    checkpoint=checkpoint,
                    run_key=run_key,
                )
        for (position, task), result in zip(pending, chunk_results):
            if result is not None:
                executed[position] = result
        # Re-anchor quarantine records on the shard's stable identity
        # (system:start), not its position in this run's pending list.
        for failure in failures:
            _, task = pending[failure.index]
            failed_shards.append(
                dataclasses.replace(failure, label=_task_shard_key(task))
            )

    # Fold chunk results back in submission order (determinism) while
    # streaming per-system tallies instead of keeping every outcome.
    folds: dict[str, _SystemFold] = {
        name: _SystemFold() for name in contexts
    }
    for position, (name, _, _) in enumerate(tasks):
        result = restored.get(position) or executed.get(position)
        if result is not None:
            folds[name].absorb(*result)

    results = [
        fold.result(name, contexts[name].from_cache)
        for name, fold in folds.items()
    ]
    # Throughput is a *checking* claim: stop the clock before the
    # optional interpreter ground-truthing, whose harness launches
    # would otherwise dominate small fleets' configs/s.
    wall_time = time.perf_counter() - started
    agreement = None
    if agreement_sample > 0:
        with span("fleet.agreement", sample=agreement_sample):
            agreement = ground_truth_agreement(
                contexts,
                folds,
                seed,
                mistake_rate,
                agreement_sample,
                caches,
                engine=engine,
            )
    return FleetReport(
        results=results,
        executor=chosen.name,
        wall_time=wall_time,
        seed=seed,
        mistake_rate=mistake_rate,
        chunk_size=chunk_size,
        cache_stats=caches.stats(),
        agreement=agreement,
        failed_shards=failed_shards,
    )


# -- checkpointing ------------------------------------------------------------


def _fleet_run_key(
    contexts: dict[str, _SystemContext],
    size: int,
    seed: int,
    mistake_rate: float,
    chunk_size: int,
    options: SpexOptions,
) -> str:
    """Content-address the full run spec: any change to the targeted
    systems, corpus shape, seeds, inference options or mistake pools
    yields a different key, so stale checkpoints can never fold in."""
    digests = "|".join(
        f"{name}:{contexts[name].digest}" for name in sorted(contexts)
    )
    return (
        f"fleet|{size}|{seed}|{mistake_rate!r}|{chunk_size}|"
        f"{options.fingerprint()}|{digests}"
    )


def _task_shard_key(task: tuple[str, int, int]) -> str:
    name, start, count = task
    return f"{name}:{start}:{count}"


def _encode_chunk_payload(
    outcomes: list[ConfigOutcome], duration: float
) -> bytes:
    """JSON-frame one chunk's outcomes.  Floats round-trip exactly
    through json (repr-based), so a resumed fold is bit-identical."""
    return json.dumps(
        {
            "duration": duration,
            "outcomes": [
                [
                    o.index,
                    o.config_id,
                    o.planted_kind,
                    o.flagged,
                    o.errors,
                    o.warnings,
                    list(o.error_kinds),
                ]
                for o in outcomes
            ],
        },
        sort_keys=True,
    ).encode("utf-8")


def _decode_chunk_payload(
    blob: bytes | None,
) -> tuple[list[ConfigOutcome], float] | None:
    """Inverse of `_encode_chunk_payload`; None on any malformed blob
    (the store already digest-verifies, this guards schema drift)."""
    if blob is None:
        return None
    try:
        data = json.loads(blob.decode("utf-8"))
        outcomes = [
            ConfigOutcome(
                index=index,
                config_id=config_id,
                planted_kind=planted_kind,
                flagged=flagged,
                errors=errors,
                warnings=warnings,
                error_kinds=tuple(error_kinds),
            )
            for (
                index,
                config_id,
                planted_kind,
                flagged,
                errors,
                warnings,
                error_kinds,
            ) in data["outcomes"]
        ]
        return outcomes, data["duration"]
    except (KeyError, TypeError, ValueError):
        return None


def _save_chunk_checkpoint(
    checkpoint: CheckpointStore | None,
    run_key: str,
    task: tuple[str, int, int],
    outcomes: list[ConfigOutcome],
    duration: float,
) -> None:
    if checkpoint is None:
        return
    checkpoint.save(
        run_key,
        _task_shard_key(task),
        _encode_chunk_payload(outcomes, duration),
    )
    get_registry().inc("resilience.checkpoint_saves")


def _run_chunks_inline(
    executor,
    contexts: dict[str, _SystemContext],
    tasks: list[tuple[str, int, int]],
    seed: int,
    mistake_rate: float,
    retry_policy: RetryPolicy | None,
    chaos,
    checkpoint: CheckpointStore | None,
    run_key: str,
) -> tuple[list, list[FailedShard]]:
    """Serial/thread chunk execution, with per-chunk checkpoint saves
    *inside* the task so completed chunks survive a mid-run kill."""
    from repro.pipeline.executor import _chaos_invoke

    def task_fn(task):
        outcomes, duration = _validate_chunk_inline(
            contexts[task[0]], task, seed, mistake_rate
        )
        _save_chunk_checkpoint(
            checkpoint, run_key, task, outcomes, duration
        )
        return outcomes, duration

    if retry_policy is not None:
        supervised = executor.map_resilient(
            task_fn, tasks, retry_policy, chaos=chaos, label="fleet"
        )
        return supervised.results, supervised.failures
    if chaos is not None:
        # Chaos with no retry budget: faults abort the run (the
        # checkpointed chunks are what the resume test recovers from).
        return (
            executor.map(
                lambda indexed: _chaos_invoke(
                    task_fn,
                    indexed[1],
                    chaos,
                    f"fleet:{indexed[0]}|a1",
                    False,
                ),
                list(enumerate(tasks)),
            ),
            [],
        )
    return executor.map(task_fn, tasks), []


class _SystemFold:
    """Streaming accumulator for one system's chunk results."""

    def __init__(self) -> None:
        self.corpus_size = 0
        self.planted = 0
        self.errors = 0
        self.warnings = 0
        self.by_kind: dict[str, int] = {}
        self.duration = 0.0
        self.flagged_ids: list[str] = []
        self.planted_ids: list[str] = []
        self.flagged_mistaken: list[ConfigOutcome] = []

    def absorb(self, outcomes: list[ConfigOutcome], duration: float) -> None:
        self.duration += duration
        for outcome in outcomes:
            self.corpus_size += 1
            self.errors += outcome.errors
            self.warnings += outcome.warnings
            for kind in outcome.error_kinds:
                self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
            if outcome.is_mistaken:
                self.planted += 1
                self.planted_ids.append(outcome.config_id)
            if outcome.flagged:
                self.flagged_ids.append(outcome.config_id)
                if outcome.is_mistaken:
                    self.flagged_mistaken.append(outcome)

    def result(self, name: str, from_cache: bool) -> SystemFleetResult:
        return SystemFleetResult(
            name=name,
            corpus_size=self.corpus_size,
            planted=self.planted,
            flagged=len(self.flagged_ids),
            errors=self.errors,
            warnings=self.warnings,
            by_kind=self.by_kind,
            scores=precision_recall(self.flagged_ids, self.planted_ids),
            duration=self.duration,
            checker_from_cache=from_cache,
        )


def _outcome_of(config: SyntheticConfig, report) -> ConfigOutcome:
    return ConfigOutcome(
        index=config.index,
        config_id=config.config_id,
        planted_kind=config.mistake_kind,
        flagged=report.flagged,
        errors=len(report.errors()),
        warnings=len(report.warnings()),
        error_kinds=report.kinds_flagged(),
    )


def _validate_chunk_inline(
    context: _SystemContext,
    task: tuple[str, int, int],
    seed: int,
    mistake_rate: float,
) -> tuple[list[ConfigOutcome], float]:
    """Serial/thread chunk task: share the parent's compiled checker
    directly (closures are pure, so threads are safe)."""
    _, start, count = task
    registry = get_registry()
    registry.inc("fleet.chunks")
    begun = time.perf_counter()
    outcomes = []
    for config in iter_corpus(
        context.system,
        context.pool,
        count,
        seed=seed,
        mistake_rate=mistake_rate,
        mix=context.mix,
        start=start,
        template=context.template,
    ):
        outcomes.append(
            _outcome_of(config, validate_config(context.checker, config.text))
        )
    duration = time.perf_counter() - begun
    registry.observe("fleet.chunk_seconds", duration)
    return outcomes, duration


# -- interpreter ground-truthing ---------------------------------------------


def ground_truth_agreement(
    contexts: dict[str, _SystemContext],
    folds: dict[str, "_SystemFold"],
    seed: int,
    mistake_rate: float,
    sample_size: int,
    caches,
    engine: str | None = None,
) -> AgreementReport:
    """Re-test a seeded sample of flagged configs under the injection
    harness.  A flag is *confirmed* when the interpreter observably
    reacts to the planted mistake - a bad reaction (crash, early
    termination, functional failure, silent violation/ignorance) or a
    pinpointing rejection; it is *refuted* only when the system accepts
    the config with no observable effect, meaning the checker cried
    wolf."""
    from repro.inject.harness import InjectionHarness

    candidates: list[tuple[str, ConfigOutcome]] = []
    for name in sorted(folds):
        for outcome in folds[name].flagged_mistaken:
            candidates.append((name, outcome))
    rng = random.Random(f"fleet-agreement|{seed}")
    if len(candidates) > sample_size:
        candidates = rng.sample(candidates, sample_size)

    report = AgreementReport()
    harnesses: dict[str, InjectionHarness] = {}
    for name, outcome in candidates:
        context = contexts[name]
        config = generate_config(
            name,
            context.pool,
            context.template,
            context.mix,
            seed,
            outcome.index,
            mistake_rate,
        )
        if config.mistake is None:  # pragma: no cover - determinism guard
            raise RuntimeError(
                f"regenerated config {outcome.config_id} lost its planted "
                "mistake; corpus generation is no longer deterministic"
            )
        harness = harnesses.get(name)
        if harness is None:
            harness = harnesses[name] = InjectionHarness(
                context.system,
                launch_cache=caches.launches,
                snapshot_cache=caches.snapshots,
                engine=engine,
            )
        verdict = harness.test_misconfiguration(config.mistake)
        misbehaved = (
            verdict.reaction.is_vulnerability or verdict.reaction.pinpointed
        )
        report.sampled += 1
        if misbehaved:
            report.confirmed += 1
        else:
            report.refuted += 1
        report.details.append(
            (
                outcome.config_id,
                str(verdict.reaction.category),
                verdict.reaction.detail,
            )
        )
    return report


# -- process-executor fleet workers ------------------------------------------
#
# Mirrors `repro.inject.campaign`'s worker design: the parent plants
# pure seed data (the inference result) in module state right before
# the pool forks; each worker privately memoizes its rebuilt context
# (checker, pool, template) so serving many chunks pays the rebuild
# once, and verifies the pool digest so a divergent re-inference fails
# loudly instead of planting different mistakes.

_FLEET_SEEDS: dict[tuple[str, str], object] = {}
_FLEET_CONTEXTS: dict[tuple[str, str], tuple] = {}


def _run_chunks_in_processes(
    executor,
    contexts: dict[str, _SystemContext],
    tasks: list[tuple[str, int, int]],
    options: SpexOptions,
    seed: int,
    mistake_rate: float,
    caches,
    retry_policy: RetryPolicy | None = None,
    chaos=None,
    checkpoint: CheckpointStore | None = None,
    run_key: str = "",
) -> tuple[list, list[FailedShard]]:
    from repro.pipeline.executor import _chaos_call

    options_fp = options.fingerprint()
    seed_keys = []
    for name, context in contexts.items():
        key = (name, options_fp)
        spex_report = caches.inference.peek(
            caches.inference.key_for(context.system, options)
        )
        _FLEET_SEEDS[key] = spex_report
        seed_keys.append(key)
    ckpt_root = str(checkpoint.root) if checkpoint is not None else None
    worker_tasks = [
        (
            name,
            options,
            seed,
            mistake_rate,
            start,
            count,
            contexts[name].digest,
            tuple(sorted(contexts[name].mix.items())),
            # Workers checkpoint their own completed chunks, so a
            # mid-run kill of the parent loses nothing already folded.
            (ckpt_root, run_key, _task_shard_key((name, start, count)))
            if ckpt_root is not None
            else None,
        )
        for name, start, count in tasks
    ]
    failures: list[FailedShard] = []
    try:
        if retry_policy is not None:
            supervised = executor.map_resilient(
                _validate_chunk_by_name,
                worker_tasks,
                retry_policy,
                chaos=chaos,
                label="fleet",
            )
            raw = supervised.results
            failures = supervised.failures
        elif chaos is not None:
            raw = executor.map(
                _chaos_call,
                [
                    (
                        _validate_chunk_by_name,
                        task,
                        chaos,
                        f"fleet:{position}|a1",
                        True,
                    )
                    for position, task in enumerate(worker_tasks)
                ],
            )
        else:
            raw = executor.map(_validate_chunk_by_name, worker_tasks)
    finally:
        for key in seed_keys:
            _FLEET_SEEDS.pop(key, None)
    out: list = []
    for entry in raw:
        if entry is None:  # quarantined shard
            out.append(None)
            continue
        outcomes, duration, checker_delta, obs_delta = entry
        caches.checkers.absorb_stats(checker_delta)
        get_registry().absorb(obs_delta)
        out.append((outcomes, duration))
    return out, failures


def _fleet_worker_context(name: str, options: SpexOptions):
    from repro.inject.campaign import Campaign
    from repro.systems.registry import get_system

    key = (name, options.fingerprint())
    context = _FLEET_CONTEXTS.get(key)
    if context is not None:
        return context + ({"hits": 1},)
    system = get_system(name)
    spex_report = _FLEET_SEEDS.get(key)
    if spex_report is None:
        # Spawn start method (or a cold worker): recompute; the pool
        # digest check below catches any hash-seed divergence.
        spex_report = Campaign(system, spex_options=options).run_spex()
    from repro.checker.compile import compile_checker

    checker = compile_checker(spex_report, system)
    pool = corpus_pool(spex_report, system)
    context = (system, checker, pool, pool_digest(pool), system.template_ar())
    _FLEET_CONTEXTS[key] = context
    return context + ({"misses": 1},)


def _validate_chunk_by_name(task):
    """Process-pool entry point for one corpus chunk.

    Returns (outcomes, chunk duration, checker-cache stats delta,
    metrics delta); outcomes are compact value objects, so no slimming
    is needed.  The metrics delta folds the worker's chunk counters
    and stage-timing histograms into the parent registry."""
    (
        name,
        options,
        seed,
        mistake_rate,
        start,
        count,
        parent_digest,
        mix_items,
        ckpt_spec,
    ) = task
    system, checker, pool, digest, template, stats_delta = (
        _fleet_worker_context(name, options)
    )
    if digest != parent_digest:
        raise RuntimeError(
            f"worker rebuilt a divergent mistake pool for {name}: the "
            "plantable misconfigurations do not match what the parent "
            "sampled from (re-inference is sensitive to the interpreter "
            "hash seed; use a fork start method or set PYTHONHASHSEED)"
        )
    registry = get_registry()
    obs_before = registry.snapshot()
    registry.inc("fleet.chunks")
    mix = dict(mix_items)
    begun = time.perf_counter()
    outcomes = []
    for index in range(start, start + count):
        config = generate_config(
            name, pool, template, mix, seed, index, mistake_rate
        )
        outcomes.append(
            _outcome_of(config, validate_config(checker, config.text))
        )
    duration = time.perf_counter() - begun
    registry.observe("fleet.chunk_seconds", duration)
    if ckpt_spec is not None:
        ckpt_root, run_key, shard_key = ckpt_spec
        CheckpointStore(ckpt_root).save(
            run_key, shard_key, _encode_chunk_payload(outcomes, duration)
        )
        registry.inc("resilience.checkpoint_saves")
    return (
        outcomes,
        duration,
        stats_delta,
        metrics_delta(obs_before, registry.snapshot()),
    )
