"""Validate one rendered configuration against a compiled checker.

This is the deployment half of the paper's argument: constraints
inferred from source code (`repro.core`) are worth nothing to a user
until something *checks their config file* against them before the
system boots and misbehaves.  `validate_config` parses a config text
with the system's own dialect, runs every compiled per-parameter and
cross-parameter validator, and returns structured `Diagnostic`s.

Diagnostics follow the paper's title: they never blame the user.
Every message states what the *software* requires (with the code
location the constraint was inferred from as evidence) and every
diagnostic carries a concrete, actionable suggestion.

Usage::

    from repro.checker import checker_for_system, validate_config
    from repro.systems import get_system

    checker = checker_for_system(get_system("mysql"))
    report = validate_config(checker, "ft_min_word_len = 99\n")
    for diagnostic in report.errors():
        print(diagnostic.describe())
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from repro.inject.ar import ConfigAR
from repro.lang.source import Location

# Severity levels.  "error" marks a setting the constraints prove
# wrong (the fleet's precision/recall currency); "warning" marks a
# setting the checker cannot prove wrong but has evidence against.
ERROR = "error"
WARNING = "warning"

# Diagnostic kind slugs - the constraint-category vocabulary shared
# with `repro.study.cases` (Tables 9-10) and `repro.checker.corpus`.
KIND_BASIC = "basic"
KIND_SEMANTIC = "semantic"
KIND_RANGE = "range"
KIND_CTRL_DEP = "ctrl_dep"
KIND_VALUE_REL = "value_rel"
KIND_ACCESS_CONTROL = "access_control"
KIND_UNKNOWN_PARAM = "unknown"

CONSTRAINT_KINDS = (
    KIND_BASIC,
    KIND_SEMANTIC,
    KIND_RANGE,
    KIND_CTRL_DEP,
    KIND_VALUE_REL,
    KIND_ACCESS_CONTROL,
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding about one configuration setting.

    `code` is a stable slug identifying the *check* (not the value),
    so calibration can suppress findings the shipped default config
    itself trips, and tooling can group findings across fleets.
    `evidence` points at the source line the constraint was inferred
    from - the proof that the requirement is the software's, not an
    arbitrary opinion about the user's input.
    """

    param: str
    kind: str  # one of the kind slugs above
    code: str
    severity: str  # ERROR | WARNING
    message: str
    suggestion: str
    evidence: Location
    config_line: int | None = None

    def describe(self) -> str:
        where = f" (line {self.config_line})" if self.config_line else ""
        return (
            f"[{self.severity}] {self.param}{where}: {self.message}\n"
            f"    fix: {self.suggestion}\n"
            f"    evidence: {self.evidence}"
        )

    def summary_dict(self) -> dict:
        return {
            "param": self.param,
            "kind": self.kind,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "suggestion": self.suggestion,
            "evidence": str(self.evidence),
            "config_line": self.config_line,
        }

    @property
    def suppression_key(self) -> tuple[str, str]:
        return (self.param, self.code)


@dataclass
class ValidationReport:
    """Every diagnostic for one config file, plus coverage counts."""

    system: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    parameters_checked: int = 0
    parameters_present: int = 0

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def flagged(self) -> bool:
        """Does the checker consider this config provably wrong?"""
        return any(d.severity == ERROR for d in self.diagnostics)

    def kinds_flagged(self) -> tuple[str, ...]:
        out: list[str] = []
        for diagnostic in self.diagnostics:
            if diagnostic.severity == ERROR and diagnostic.kind not in out:
                out.append(diagnostic.kind)
        return tuple(out)

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.kind] = counts.get(diagnostic.kind, 0) + 1
        return counts

    def summary_dict(self) -> dict:
        return {
            "system": self.system,
            "flagged": self.flagged,
            "parameters_present": self.parameters_present,
            "parameters_checked": self.parameters_checked,
            "diagnostics": [d.summary_dict() for d in self.diagnostics],
        }


def validate_config(checker, config_text: str) -> ValidationReport:
    """Check one rendered config against a `CompiledChecker`.

    Parsing uses the system's own config dialect, so line numbers in
    diagnostics match what the user sees in their editor.  Validators
    run in deterministic order: per-parameter checks in file order,
    then cross-parameter checks in compile order, then unknown-name
    detection; calibration suppression (findings the shipped default
    config itself trips) applies last.
    """
    ar = ConfigAR.parse(config_text, checker.dialect)
    # First occurrence wins, matching `ConfigAR.get` semantics; the
    # insertion-ordered dict preserves file order for the pass below.
    values: dict[str, tuple[str, int]] = {}
    for entry in ar.entries:
        values.setdefault(entry.name, (entry.value, entry.lineno))

    report = ValidationReport(
        system=checker.system, parameters_present=len(values)
    )
    for name, (value, lineno) in values.items():
        validators = checker.param_validators.get(name)
        if validators is None:
            continue
        report.parameters_checked += 1
        for validator in validators:
            report.diagnostics.extend(validator(value, lineno))
    for pair_validator in checker.pair_validators:
        report.diagnostics.extend(pair_validator(values))
    report.diagnostics.extend(_unknown_params(checker, values))
    if checker.suppressed:
        report.diagnostics = [
            d
            for d in report.diagnostics
            if d.suppression_key not in checker.suppressed
        ]
    return report


def _unknown_params(checker, values: dict[str, tuple[str, int]]):
    """Names the inference never saw: likely typos.  Warning-level -
    an unknown name proves nothing by itself, but the near-miss
    suggestion is exactly what a blameless error message should say."""
    out = []
    for name, (_, lineno) in values.items():
        if name in checker.known_params:
            continue
        close = difflib.get_close_matches(
            name, sorted(checker.known_params), n=1, cutoff=0.8
        )
        suggestion = (
            f"did you mean {close[0]!r}?"
            if close
            else f"remove the line or check the {checker.system} manual"
        )
        out.append(
            Diagnostic(
                param=name,
                kind=KIND_UNKNOWN_PARAM,
                code="unknown-parameter",
                severity=WARNING,
                message=(
                    f"{checker.system} never reads a parameter named "
                    f"{name!r}"
                ),
                suggestion=suggestion,
                evidence=Location("<mapping>", 0, 0),
                config_line=lineno,
            )
        )
    return out
