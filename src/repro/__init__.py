"""Reproduction of SPEX: "Do Not Blame Users for Misconfigurations"
(Xu et al., SOSP 2013).

Package map:

* :mod:`repro.lang`      - MiniC, the C-like subject language
* :mod:`repro.ir`        - three-address IR, CFG, dominators (LLVM stand-in)
* :mod:`repro.analysis`  - inter-procedural, field-sensitive dataflow
* :mod:`repro.knowledge` - library-API knowledge base
* :mod:`repro.core`      - SPEX constraint inference (the contribution)
* :mod:`repro.inject`    - SPEX-INJ misconfiguration injection testing
* :mod:`repro.lint`      - error-prone configuration design detection
* :mod:`repro.runtime`   - MiniC interpreter over an emulated OS
* :mod:`repro.systems`   - the seven miniature subject systems
* :mod:`repro.study`     - historical misconfiguration case replay
* :mod:`repro.reporting` - regenerates every table/figure of the paper's §4

Quick start::

    from repro.core import SpexEngine
    from repro.lang.program import Program

    program = Program.from_sources({"app.c": SOURCE})
    report = SpexEngine(program, ANNOTATIONS).run()
    for constraint in report.constraints:
        print(constraint.describe())
"""

__version__ = "1.0.0"
