"""Real-world misconfiguration case study (§4.2, Tables 9 and 10).

The paper replays 423 historical cases (246 from Storage-A's customer
issue database, 177 from forums/mailing lists/ServerFault) against the
inferred constraints.  The reproduction substitutes a synthetic corpus
generated to the published per-category marginals; the *replay* then
recomputes avoidability from the actually-inferred constraints rather
than reading the labels back.
"""

from repro.study.cases import HistoricalCase, case_corpus
from repro.study.replay import ReplayReport, replay_cases

__all__ = ["HistoricalCase", "ReplayReport", "case_corpus", "replay_cases"]
