"""Replay historical cases against live SPEX constraints.

A case is *potentially avoided* (Table 9) when the reproduction really
infers a constraint of the case's kind for the case's parameter -
i.e. SPEX-INJ would have exposed the bad reaction, or the lint pass
the design flaw, before any user hit it.  Cases that cannot benefit
are broken down as in Table 10: single-software inference
incapability, cross-software correlation, settings that conform to all
constraints but miss the user's intention, and reactions that were
already good.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import (
    BasicTypeConstraint,
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    SemanticTypeConstraint,
    ValueRelConstraint,
)
from repro.core.engine import SpexReport
from repro.study.cases import HistoricalCase


@dataclass
class ReplayReport:
    system: str
    sampled: int = 0
    avoidable: list[HistoricalCase] = field(default_factory=list)
    single_sw_incapability: list[HistoricalCase] = field(default_factory=list)
    cross_software: list[HistoricalCase] = field(default_factory=list)
    conform_to_constraints: list[HistoricalCase] = field(default_factory=list)
    good_reactions: list[HistoricalCase] = field(default_factory=list)

    @property
    def avoidable_fraction(self) -> float:
        return len(self.avoidable) / self.sampled if self.sampled else 0.0

    def bucket_counts(self) -> dict[str, int]:
        return {
            "avoidable": len(self.avoidable),
            "single_sw": len(self.single_sw_incapability),
            "cross_sw": len(self.cross_software),
            "conform": len(self.conform_to_constraints),
            "good": len(self.good_reactions),
        }


_KIND_TO_TYPES = {
    "basic": (BasicTypeConstraint,),
    "semantic": (SemanticTypeConstraint,),
    "range": (NumericRangeConstraint, EnumRangeConstraint),
    "ctrl_dep": (ControlDepConstraint,),
    "value_rel": (ValueRelConstraint,),
}


def _constraint_covers(report: SpexReport, case: HistoricalCase) -> bool:
    if case.param is None:
        return False
    wanted = _KIND_TO_TYPES.get(case.kind)
    if wanted is None:
        return False
    for constraint in report.constraints.for_param(case.param):
        if isinstance(constraint, wanted):
            return True
    if isinstance(wanted[0], type) and case.kind == "value_rel":
        # Relations are symmetric: the case's param may be the partner.
        for constraint in report.constraints.value_rels():
            if constraint.other_param == case.param:
                return True
    # Case-sensitivity mistakes are covered by the sensitivity map
    # even without an enum constraint.
    if case.kind == "range" and report.case_sensitivity.get(case.param):
        return True
    return False


def replay_cases(
    system_name: str,
    cases: list[HistoricalCase],
    report: SpexReport,
) -> ReplayReport:
    out = ReplayReport(system=system_name, sampled=len(cases))
    for case in cases:
        if case.kind == "cross_software":
            out.cross_software.append(case)
        elif case.kind == "conform":
            out.conform_to_constraints.append(case)
        elif case.kind == "good_reaction":
            out.good_reactions.append(case)
        elif case.in_spex_scope and _constraint_covers(report, case):
            out.avoidable.append(case)
        else:
            # format constraints and missed inferences both land here
            out.single_sw_incapability.append(case)
    return out
