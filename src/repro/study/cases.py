"""Synthetic historical misconfiguration cases.

Each case names the misconfigured parameter (when one exists), what
the user did, and which constraint kind the mistake violates.  The
four studied systems get case sets whose category mix follows the
paper's Tables 9-10 marginals; the replay classifies every case
against the live SPEX constraints, so a case is only counted
"avoidable" if the reproduction actually infers a matching constraint.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HistoricalCase:
    """One user-reported misconfiguration."""

    case_id: str
    system: str
    param: str | None
    description: str
    # The kind of mistake: basic | semantic | range | ctrl_dep |
    # value_rel | format | cross_software | conform | good_reaction
    kind: str

    @property
    def in_spex_scope(self) -> bool:
        return self.kind in ("basic", "semantic", "range", "ctrl_dep", "value_rel")


def _cases(system: str, specs: list[tuple[str | None, str, str]]) -> list[HistoricalCase]:
    return [
        HistoricalCase(f"{system}-{i:03d}", system, param, desc, kind)
        for i, (param, kind, desc) in enumerate(specs, start=1)
    ]


def storage_a_cases() -> list[HistoricalCase]:
    """29 sampled Storage-A customer cases (paper: 246, 27.6% avoidable)."""
    return _cases(
        "storage_a",
        [
            # -- within SPEX scope (8 expected avoidable) --
            ("log.filesize", "basic", "set log.filesize to 9G; 9 bytes used"),
            ("log.filesize", "range", "log.filesize far below working minimum"),
            ("iscsi.initiator.name", "range", "initiator name typed in capitals (TARGET)"),
            ("cleanup.msec", "semantic", "cleanup interval given in seconds, unit is msec"),
            ("wafl.cache.mb", "range", "cache size beyond platform maximum"),
            ("takeover.sec", "semantic", "takeover window given in minutes"),
            ("iscsi.max.connections", "ctrl_dep", "connection cap set with iscsi.enable off"),
            ("autosupport.mailhost", "ctrl_dep", "mailhost set while autosupport disabled"),
            # -- single-software inference incapability (format etc.) --
            ("iscsi.initiator.name", "format", "IQN string missing the date field"),
            (None, "format", "schedule string in cron syntax rejected"),
            ("security.admin.mode", "format", "mode list given comma-separated"),
            # -- cross-software --
            (None, "cross_software", "client multipath settings conflict with array"),
            (None, "cross_software", "Windows host iSCSI timeout below array takeover"),
            (None, "cross_software", "backup software expects NFSv3, filer exports v4"),
            (None, "cross_software", "DNS server returns stale name for mailhost"),
            (None, "cross_software", "switch MTU mismatch with filer interface"),
            (None, "cross_software", "AD domain controller clock skew breaks CIFS"),
            # -- conform to constraints but wrong intention --
            ("snapshot.reserve.gb", "conform", "reserve valid but too small for workload"),
            ("nfs.tcp.xfersize", "conform", "transfer size valid but suboptimal"),
            ("dedupe.schedule.min", "conform", "schedule valid but overlaps backup window"),
            ("wafl.cache.mb", "conform", "cache valid but starves other volumes"),
            ("heartbeat.sec", "conform", "heartbeat valid but too aggressive for WAN"),
            ("log.rotate.count", "conform", "rotation count valid but fills disk"),
            ("scrub.interval.hour", "conform", "scrub interval valid but during peak load"),
            # -- good reactions, still reported --
            ("security.admin.mode", "good_reaction", "error printed, user confused by wording"),
            ("cifs.enable", "good_reaction", "on/off error printed, ticket filed anyway"),
            ("nfs.enable", "good_reaction", "clear message, user asked support to confirm"),
            ("autosupport.enable", "good_reaction", "message understood late"),
            ("takeover.sec", "good_reaction", "range message printed, user disbelieved it"),
        ],
    )


def apache_cases() -> list[HistoricalCase]:
    """16 sampled Apache cases (paper: 50, 38.0% avoidable)."""
    return _cases(
        "apache",
        [
            ("MaxMemFree", "semantic", "assumed bytes; directive is KBytes"),
            ("ThreadLimit", "basic", "huge ThreadLimit aborts at startup"),
            ("Listen", "semantic", "port already taken by another server"),
            ("DocumentRoot", "semantic", "path points to a file, not a directory"),
            ("KeepAliveTimeout", "ctrl_dep", "timeout tuned while KeepAlive off"),
            ("User", "semantic", "nonexistent account in User directive"),
            ("HostnameLookups", "range", "value 'enable' silently treated as off"),
            (None, "format", "Include pattern with unsupported glob"),
            (None, "format", "rewrite rule regex flavour mismatch"),
            (None, "cross_software", "PHP module built for different MPM"),
            (None, "cross_software", "SELinux denies DocumentRoot access"),
            (None, "cross_software", "load balancer health check path missing"),
            ("SendBufferSize", "conform", "valid size, kernel clamps it silently"),
            ("ThreadsPerChild", "conform", "valid count, too low for the load"),
            ("LogLevel", "good_reaction", "clear invalid-level message, still reported"),
            ("KeepAlive", "good_reaction", "On/Off error clear, user filed bug"),
        ],
    )


def mysql_cases() -> list[HistoricalCase]:
    """15 sampled MySQL cases (paper: 47, 29.8% avoidable)."""
    return _cases(
        "mysql",
        [
            ("ft_min_word_len", "value_rel", "min word length set above max"),
            ("ft_stopword_file", "semantic", "stopword path is a directory"),
            ("performance_schema_events_waits_history_size", "basic",
             "history size 0 crashes the server"),
            ("innodb_file_format_check", "range", "'barracuda' lowercase not accepted"),
            ("max_allowed_packet", "range", "packet size beyond table maximum"),
            (None, "format", "sql_mode list with misspelled flag"),
            (None, "format", "charset collation pair invalid"),
            (None, "format", "my.cnf section header misplaced"),
            (None, "cross_software", "client library caps packet below server"),
            (None, "cross_software", "AppArmor denies datadir relocation"),
            (None, "cross_software", "replication peer version mismatch"),
            ("wait_timeout", "conform", "valid timeout, pool recycles too late"),
            ("key_buffer_size", "conform", "valid size, starves InnoDB pool"),
            ("table_open_cache", "conform", "valid but below workload needs"),
            ("port", "good_reaction", "bind error names the port, reported anyway"),
        ],
    )


def openldap_cases() -> list[HistoricalCase]:
    """12 sampled OpenLDAP cases (paper: 49, 24.5% avoidable)."""
    return _cases(
        "openldap",
        [
            ("listener-threads", "basic", "listener-threads 32 segfaults at startup"),
            ("index_intlen", "range", "index length 300 silently clamped"),
            ("sockbuf_max_incoming", "semantic", "PDU cap too small, clients dropped"),
            (None, "format", "ACL 'by' clause ordering invalid"),
            (None, "format", "DN syntax error in suffix"),
            (None, "format", "schema attribute OID collision"),
            (None, "cross_software", "client libldap TLS defaults differ"),
            (None, "cross_software", "SASL library missing mechanism"),
            ("cachesize", "conform", "valid cache size, thrashing anyway"),
            ("sizelimit", "conform", "valid limit, apps expect more entries"),
            ("threads", "good_reaction", "range message printed, ticket anyway"),
            ("readonly", "good_reaction", "on/off message clear, reported anyway"),
        ],
    )


def case_corpus() -> dict[str, list[HistoricalCase]]:
    return {
        "storage_a": storage_a_cases(),
        "apache": apache_cases(),
        "mysql": mysql_cases(),
        "openldap": openldap_cases(),
    }
