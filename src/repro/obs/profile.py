"""Sampled profiling hooks for the launch engine.

Per-statement instrumentation would dwarf the compiled engine's wins,
so the profiler samples whole *launches*: every ``sample_every``-th
launch (the first one included, so short runs still produce data) has
its boot and replay phases timed and its step-budget consumption
recorded as histograms on the metrics registry.  Off-sample launches
pay one lock-protected increment; ``repro.obs.set_enabled(False)``
reduces even that to a boolean check.
"""

from __future__ import annotations

import threading

from repro.obs import metrics as _metrics
from repro.obs.metrics import MetricsRegistry, get_registry

SAMPLE_EVERY = 32

# Step-budget buckets: the default budget is 400_000 steps.
STEP_BUCKETS = (
    100.0, 500.0, 1_000.0, 5_000.0, 10_000.0,
    50_000.0, 100_000.0, 400_000.0,
)


class LaunchProfiler:
    """Decides which launches to time and records their phases."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sample_every: int = SAMPLE_EVERY,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.sample_every = max(1, sample_every)
        self._lock = threading.Lock()
        self._seen = 0

    def should_sample(self) -> bool:
        """Count one launch; true on the 1st, N+1th, 2N+1th, ..."""
        if not _metrics.enabled():
            return False
        with self._lock:
            self._seen += 1
            return self._seen % self.sample_every == 1 or self.sample_every == 1

    def record_phase(self, phase: str, seconds: float) -> None:
        """``phase`` is ``boot``, ``resume`` or ``replay``."""
        self.registry.observe(f"launch.{phase}_seconds", seconds)

    def record_steps(self, steps: int) -> None:
        self.registry.observe("launch.steps", steps, buckets=STEP_BUCKETS)


_PROFILER = LaunchProfiler()


def default_profiler() -> LaunchProfiler:
    """The process-wide profiler the injection harness samples with."""
    return _PROFILER
