"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry mirrors the pipeline cache-stats protocol exactly:
``snapshot()`` returns plain nested dicts, ``metrics_delta(before,
after)`` subtracts two snapshots, and ``absorb(delta)`` folds a delta
in.  Process-executor workers snapshot at task start, do their work,
and ship ``metrics_delta(before, registry.snapshot())`` back over the
pickle boundary; the parent absorbs it — the same fold the launch and
boot caches already perform, so thread workers (which share the
registry) never double-count.

Histograms are *fixed-bucket*: the bucket edges are chosen at first
``observe`` and become part of the histogram's identity.  Two
snapshots only delta/absorb when their edges agree, which keeps the
merge a pure element-wise sum.

``set_enabled(False)`` is the kill switch for the always-on side:
``inc`` and ``observe`` become no-ops on every registry in the
process.  Gauges are exempt — they carry state the reporting layer
reads back out (cache counters for the pipeline footer), so disabling
telemetry must not blank them.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

# Latency-flavoured defaults (seconds): wide enough for a 79us warm
# launch and a multi-second cold campaign in one scheme.
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

_ENABLED = True


def enabled() -> bool:
    """True when counters/histograms record (gauges always do)."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Flip the process-wide telemetry switch; returns the old value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


class MetricsRegistry:
    """Thread-safe named counters, gauges and fixed-bucket histograms.

    Metric names are dotted strings (``"launch.boot_seconds"``); the
    taxonomy is documented in docs/OBSERVABILITY.md.  All mutation
    happens under one lock — the hot paths sample (``LaunchProfiler``)
    or batch, so contention stays negligible.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict] = {}

    # -- recording ----------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(
        self, name: str, value: float, buckets: tuple = DEFAULT_BUCKETS
    ) -> None:
        if not _ENABLED:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = {
                    "buckets": list(buckets),
                    "counts": [0] * (len(buckets) + 1),
                    "count": 0,
                    "sum": 0.0,
                }
                self._histograms[name] = hist
            hist["counts"][bisect_left(hist["buckets"], value)] += 1
            hist["count"] += 1
            hist["sum"] += value

    # -- reading ------------------------------------------------------

    def counter_value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def snapshot(self) -> dict:
        """Deep plain-dict copy: ``{"counters", "gauges", "histograms"}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "buckets": list(hist["buckets"]),
                        "counts": list(hist["counts"]),
                        "count": hist["count"],
                        "sum": hist["sum"],
                    }
                    for name, hist in self._histograms.items()
                },
            }

    # -- folding ------------------------------------------------------

    def absorb(self, delta: dict) -> None:
        """Fold a ``metrics_delta`` from a worker into this registry."""
        with self._lock:
            for name, amount in delta.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + amount
            for name, value in delta.get("gauges", {}).items():
                self._gauges[name] = value
            for name, incoming in delta.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    self._histograms[name] = {
                        "buckets": list(incoming["buckets"]),
                        "counts": list(incoming["counts"]),
                        "count": incoming["count"],
                        "sum": incoming["sum"],
                    }
                    continue
                if hist["buckets"] != list(incoming["buckets"]):
                    raise ValueError(
                        f"histogram {name!r}: bucket edges disagree"
                    )
                hist["counts"] = [
                    mine + theirs
                    for mine, theirs in zip(hist["counts"], incoming["counts"])
                ]
                hist["count"] += incoming["count"]
                hist["sum"] += incoming["sum"]

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def metrics_delta(before: dict, after: dict) -> dict:
    """What happened between two snapshots, as an absorbable delta.

    Counters and histograms subtract element-wise (keys only ever
    grow, mirroring ``CacheStats`` deltas).  Gauges are point-in-time
    *process-local* state — a forked worker inherits the parent's
    values, so shipping them back would overwrite fresher parent state
    with stale copies; deltas therefore never carry gauges (the
    reporting layer re-publishes them at read time).
    """
    counters = {
        name: value - before.get("counters", {}).get(name, 0)
        for name, value in after.get("counters", {}).items()
    }
    histograms = {}
    for name, hist in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name)
        if prior is None:
            histograms[name] = hist
            continue
        if prior["buckets"] != hist["buckets"]:
            raise ValueError(f"histogram {name!r}: bucket edges disagree")
        histograms[name] = {
            "buckets": list(hist["buckets"]),
            "counts": [
                now - then
                for now, then in zip(hist["counts"], prior["counts"])
            ],
            "count": hist["count"] - prior["count"],
            "sum": hist["sum"] - prior["sum"],
        }
    return {
        "counters": counters,
        "gauges": {},
        "histograms": histograms,
    }


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (pillars record here)."""
    return _REGISTRY
