"""Unified telemetry: metrics, spans, and sampled profiling hooks.

The stack's only visibility used to be cache counters surfaced in
report footers.  ``repro.obs`` makes telemetry a first-class,
zero-dependency layer:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  of named counters, gauges and fixed-bucket histograms with the same
  thread-safe ``snapshot()`` / delta / ``absorb()`` protocol the
  pipeline's ``CacheStats`` already uses, so process-executor workers
  fold their metrics into the parent exactly like cache deltas.
* :mod:`repro.obs.trace` — hierarchical spans with monotonic timings,
  parent ids and an NDJSON exporter.  The clock is injected so traces
  stay deterministic in tests; the default tracer is disabled and the
  disabled path costs one attribute check.
* :mod:`repro.obs.profile` — :class:`LaunchProfiler`, the sampled
  (every Nth launch, never per-statement) boot/replay/step-budget
  profiling hook the launch engine calls into.

``set_enabled(False)`` turns the always-on metrics side off entirely;
``benchmarks/test_obs_overhead.py`` pins the enabled-vs-disabled warm
launch throughput gap at <=5%.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    enabled,
    get_registry,
    metrics_delta,
    set_enabled,
)
from repro.obs.profile import LaunchProfiler, default_profiler
from repro.obs.trace import (
    NdjsonSink,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "LaunchProfiler",
    "MetricsRegistry",
    "NdjsonSink",
    "Span",
    "Tracer",
    "default_profiler",
    "enabled",
    "get_registry",
    "get_tracer",
    "metrics_delta",
    "set_enabled",
    "set_tracer",
    "span",
]
