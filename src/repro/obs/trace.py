"""Hierarchical spans with injected clocks and NDJSON export.

A :class:`Tracer` hands out spans through ``with tracer.span("name",
key=value):``.  Parent links come from a per-thread stack, ids from a
process-wide counter, and timestamps from the tracer's *injected*
clock — tests pass a fake monotonic counter so exported traces are
byte-deterministic; production uses ``time.perf_counter``.

The default process tracer is **disabled** (``sink=None``): a span on
the disabled path costs one attribute check and yields ``None``.  Hot
paths that cannot afford even a context-manager frame (the launch
engine) additionally guard on ``get_tracer().enabled``.

Export is one JSON object per finished span, one per line (NDJSON),
written in span-*completion* order; ``parent_id`` reconstructs the
hierarchy.  The format is pinned in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed operation; ``attrs`` carry dimensions (system, op)."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class NdjsonSink:
    """Span sink writing one sorted-key JSON object per line."""

    def __init__(self, stream) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def __call__(self, span: Span) -> None:
        line = json.dumps(span.as_dict(), sort_keys=True)
        with self._lock:
            self._stream.write(line + "\n")


class Tracer:
    """Span factory; disabled (no sink) unless explicitly wired up."""

    def __init__(self, sink=None, clock=time.perf_counter) -> None:
        self.sink = sink
        self.clock = clock
        self._lock = threading.Lock()
        self._last_id = 0
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        return self.sink is not None

    def _next_id(self) -> int:
        with self._lock:
            self._last_id += 1
            return self._last_id

    def current_span(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs):
        if self.sink is None:
            yield None
            return
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        parent = stack[-1].span_id if stack else None
        record = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=parent,
            start=self.clock(),
            attrs=attrs,
        )
        stack.append(record)
        try:
            yield record
        finally:
            stack.pop()
            record.end = self.clock()
            self.sink(record)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install a tracer process-wide; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def span(name: str, **attrs):
    """``with span("campaign.batch", system=...):`` on the tracer."""
    return _TRACER.span(name, **attrs)
