"""IR instruction set.

The instruction vocabulary is chosen so every pattern SPEX searches for
is a first-class fact:

* ``Cast``          -> basic-type constraints ("first cast" rule)
* ``Call``          -> semantic types, units, case sensitivity, unsafety
* ``Branch``/``SwitchInst`` conditions -> range constraints
* ``BinOp`` comparisons -> value relationships
* ``LoadField``/``StoreField`` with *field paths* -> field sensitivity
* ``AddrOf``/``LoadDeref``/``StoreDeref`` -> pointer use; deliberately
  not alias-analysed, reproducing the paper's OpenLDAP inaccuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import types as ct
from repro.lang.source import Location
from repro.ir.values import Const, Operand, Temp, Variable


class Instruction:
    """Base class; every instruction knows its source location."""

    location: Location

    def uses(self) -> list[Operand]:
        """Operands read by this instruction."""
        return []

    def defs(self) -> list[Operand]:
        """Operands written by this instruction."""
        return []


class Terminator(Instruction):
    """Last instruction of a block."""

    def successors(self) -> list[str]:
        return []


# -- data movement --------------------------------------------------------


@dataclass
class Assign(Instruction):
    """dest := src (loads and stores of named variables included)."""

    dest: Operand  # Temp or Variable
    src: Operand
    location: Location

    def uses(self):
        return [self.src]

    def defs(self):
        return [self.dest]

    def __str__(self):
        return f"{self.dest} = {self.src}"


@dataclass
class BinOp(Instruction):
    dest: Temp
    op: str
    left: Operand
    right: Operand
    location: Location

    def uses(self):
        return [self.left, self.right]

    def defs(self):
        return [self.dest]

    @property
    def is_comparison(self) -> bool:
        return self.op in ("<", ">", "<=", ">=", "==", "!=")

    def __str__(self):
        return f"{self.dest} = {self.left} {self.op} {self.right}"


@dataclass
class UnOp(Instruction):
    dest: Temp
    op: str
    operand: Operand
    location: Location

    def uses(self):
        return [self.operand]

    def defs(self):
        return [self.dest]

    def __str__(self):
        return f"{self.dest} = {self.op}{self.operand}"


@dataclass
class Cast(Instruction):
    dest: Temp
    type: ct.CType
    src: Operand
    location: Location
    explicit: bool = True

    def uses(self):
        return [self.src]

    def defs(self):
        return [self.dest]

    def __str__(self):
        return f"{self.dest} = ({self.type}) {self.src}"


# -- aggregate access --------------------------------------------------------


@dataclass
class LoadField(Instruction):
    """dest := base.path (path is a tuple of field names)."""

    dest: Temp
    base: Operand  # Variable (named struct) or Temp (pointer value)
    path: tuple[str, ...]
    location: Location

    def uses(self):
        return [self.base]

    def defs(self):
        return [self.dest]

    def __str__(self):
        return f"{self.dest} = {self.base}.{'.'.join(self.path)}"


@dataclass
class StoreField(Instruction):
    base: Operand
    path: tuple[str, ...]
    src: Operand
    location: Location

    def uses(self):
        return [self.base, self.src]

    def __str__(self):
        return f"{self.base}.{'.'.join(self.path)} = {self.src}"


@dataclass
class LoadIndex(Instruction):
    dest: Temp
    base: Operand
    index: Operand
    location: Location

    def uses(self):
        return [self.base, self.index]

    def defs(self):
        return [self.dest]

    def __str__(self):
        return f"{self.dest} = {self.base}[{self.index}]"


@dataclass
class StoreIndex(Instruction):
    base: Operand
    index: Operand
    src: Operand
    location: Location

    def uses(self):
        return [self.base, self.index, self.src]

    def __str__(self):
        return f"{self.base}[{self.index}] = {self.src}"


# -- pointers --------------------------------------------------------------


@dataclass
class AddrOf(Instruction):
    """dest := &var or &var.path (address taken)."""

    dest: Temp
    var: Variable
    path: tuple[str, ...]
    location: Location

    def uses(self):
        return [self.var]

    def defs(self):
        return [self.dest]

    def __str__(self):
        suffix = "." + ".".join(self.path) if self.path else ""
        return f"{self.dest} = &{self.var}{suffix}"


@dataclass
class LoadDeref(Instruction):
    dest: Temp
    ptr: Operand
    location: Location

    def uses(self):
        return [self.ptr]

    def defs(self):
        return [self.dest]

    def __str__(self):
        return f"{self.dest} = *{self.ptr}"


@dataclass
class StoreDeref(Instruction):
    ptr: Operand
    src: Operand
    location: Location

    def uses(self):
        return [self.ptr, self.src]

    def __str__(self):
        return f"*{self.ptr} = {self.src}"


# -- calls -----------------------------------------------------------------


@dataclass
class Call(Instruction):
    dest: Temp | None
    callee: str
    args: list[Operand]
    location: Location

    def uses(self):
        return list(self.args)

    def defs(self):
        return [self.dest] if self.dest is not None else []

    def __str__(self):
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dest} = " if self.dest is not None else ""
        return f"{prefix}call {self.callee}({args})"


@dataclass
class CallIndirect(Instruction):
    """Call through a function pointer; opaque to analysis."""

    dest: Temp | None
    func: Operand
    args: list[Operand]
    location: Location

    def uses(self):
        return [self.func, *self.args]

    def defs(self):
        return [self.dest] if self.dest is not None else []

    def __str__(self):
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dest} = " if self.dest is not None else ""
        return f"{prefix}call_indirect {self.func}({args})"


# -- terminators -------------------------------------------------------------


@dataclass
class Branch(Terminator):
    """Conditional branch; `cond_info` preserves the source comparison
    (operand ⋄ operand) when the condition is a comparison, which range
    and control-dependency inference key on."""

    cond: Operand
    true_label: str
    false_label: str
    location: Location
    cond_info: "CompareInfo | None" = None

    def uses(self):
        return [self.cond]

    def successors(self):
        return [self.true_label, self.false_label]

    def __str__(self):
        return f"br {self.cond} ? {self.true_label} : {self.false_label}"


@dataclass
class Jump(Terminator):
    target: str
    location: Location

    def successors(self):
        return [self.target]

    def __str__(self):
        return f"jmp {self.target}"


@dataclass
class SwitchInst(Terminator):
    subject: Operand
    cases: list[tuple[Const, str]]
    default_label: str | None
    location: Location

    def uses(self):
        return [self.subject]

    def successors(self):
        out = [label for _, label in self.cases]
        if self.default_label is not None:
            out.append(self.default_label)
        return out

    def __str__(self):
        arms = ", ".join(f"{c} -> {lbl}" for c, lbl in self.cases)
        return f"switch {self.subject} [{arms}] default {self.default_label}"


@dataclass
class Ret(Terminator):
    value: Operand | None
    location: Location

    def uses(self):
        return [self.value] if self.value is not None else []

    def __str__(self):
        return f"ret {self.value}" if self.value is not None else "ret"


@dataclass
class Unreachable(Terminator):
    location: Location

    def __str__(self):
        return "unreachable"


@dataclass(frozen=True)
class CompareInfo:
    """The comparison backing a Branch condition: left ⋄ right."""

    op: str
    left: Operand
    right: Operand

    def flipped(self) -> "CompareInfo":
        flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}
        return CompareInfo(flip[self.op], self.right, self.left)

    def negated(self) -> "CompareInfo":
        neg = {"<": ">=", ">": "<=", "<=": ">", ">=": "<", "==": "!=", "!=": "=="}
        return CompareInfo(neg[self.op], self.left, self.right)
