"""IR containers: basic blocks, functions, modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import types as ct
from repro.lang.source import Location
from repro.ir.instructions import Instruction, Terminator
from repro.ir.values import Variable


@dataclass
class BasicBlock:
    label: str
    instructions: list[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Terminator | None:
        if self.instructions and isinstance(self.instructions[-1], Terminator):
            return self.instructions[-1]
        return None

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return self.instructions

    def successors(self) -> list[str]:
        term = self.terminator
        return term.successors() if term is not None else []

    def append(self, inst: Instruction) -> None:
        self.instructions.append(inst)

    @property
    def terminated(self) -> bool:
        return self.terminator is not None


@dataclass
class IRFunction:
    name: str
    return_type: ct.CType
    params: list[Variable]
    location: Location
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    entry_label: str = "entry"
    locals: dict[str, Variable] = field(default_factory=dict)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_label]

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    def block_order(self) -> list[BasicBlock]:
        """Blocks in insertion order (deterministic)."""
        return list(self.blocks.values())

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {label: [] for label in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors():
                preds[succ].append(block.label)
        return preds

    def instructions(self):
        for block in self.blocks.values():
            yield from block.instructions

    def find_block_of(self, inst: Instruction) -> BasicBlock | None:
        for block in self.blocks.values():
            if inst in block.instructions:
                return block
        return None


@dataclass
class IRModule:
    """Whole-program IR plus shared symbol metadata."""

    name: str
    functions: dict[str, IRFunction] = field(default_factory=dict)
    globals: dict[str, Variable] = field(default_factory=dict)
    # Global initializer expressions kept at AST level: mapping-table
    # extraction reads them structurally (Figure 4 annotations).
    global_inits: dict[str, object] = field(default_factory=dict)
    structs: dict[str, ct.StructDef] = field(default_factory=dict)

    def function(self, name: str) -> IRFunction:
        return self.functions[name]

    def has_function(self, name: str) -> bool:
        return name in self.functions
