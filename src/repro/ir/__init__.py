"""Three-address intermediate representation for MiniC.

This package substitutes for LLVM IR in the reproduction.  The paper's
SPEX "works on LLVM's intermediate code representation ... in the
static single assignment form" (§2.3); here, expression temporaries are
single-assignment while named variables are explicit storage, which
gives the same def-use and dominance facts SPEX consumes without a full
mem2reg pass.

Layout:

* :mod:`repro.ir.values`       - operands (temps, constants, variables)
* :mod:`repro.ir.instructions` - the instruction set
* :mod:`repro.ir.function`     - IRFunction / BasicBlock containers
* :mod:`repro.ir.builder`      - AST -> IR lowering
* :mod:`repro.ir.cfg`          - dominators, postdominators, control deps
* :mod:`repro.ir.callgraph`    - direct-call graph
* :mod:`repro.ir.printer`      - textual IR for debugging
"""

from repro.ir.builder import build_ir
from repro.ir.function import BasicBlock, IRFunction, IRModule
from repro.ir.printer import format_function, format_module

__all__ = [
    "BasicBlock",
    "IRFunction",
    "IRModule",
    "build_ir",
    "format_function",
    "format_module",
]
