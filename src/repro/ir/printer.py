"""Textual IR rendering for debugging and golden tests."""

from __future__ import annotations

from repro.ir.function import IRFunction, IRModule


def format_function(fn: IRFunction) -> str:
    params = ", ".join(f"{p.type} %{p.name}" for p in fn.params)
    lines = [f"define {fn.return_type} @{fn.name}({params}) {{"]
    for block in fn.block_order():
        lines.append(f"{block.label}:")
        for inst in block.instructions:
            lines.append(f"  {inst}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: IRModule) -> str:
    parts = []
    for name, var in module.globals.items():
        parts.append(f"global {var.type} @{name}")
    for fn in module.functions.values():
        parts.append(format_function(fn))
    return "\n\n".join(parts)
