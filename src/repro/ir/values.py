"""IR operand model.

Temps are single-assignment; Variables name declared storage and are
the loci of taint labels in `repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import types as ct


class Operand:
    """Base class for instruction operands."""


@dataclass(frozen=True)
class Temp(Operand):
    """A single-assignment expression temporary."""

    id: int
    function: str

    def __str__(self) -> str:
        return f"%t{self.id}"


@dataclass(frozen=True)
class Const(Operand):
    """A literal constant (int, float, str, or None for NULL)."""

    value: object

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)

    @property
    def is_int(self) -> bool:
        return isinstance(self.value, int) and not isinstance(self.value, bool)

    @property
    def is_string(self) -> bool:
        return isinstance(self.value, str)


@dataclass(frozen=True)
class Variable(Operand):
    """Named storage: a global, a function local, or a parameter."""

    name: str
    scope: str  # "global" or the owning function's name
    kind: str  # "global" | "local" | "param" | "static"
    type: ct.CType | None = None
    param_index: int = -1

    def __str__(self) -> str:
        if self.kind == "global":
            return f"@{self.name}"
        return f"%{self.name}"

    @property
    def key(self) -> tuple[str, str]:
        """Stable identity for taint maps."""
        return (self.scope, self.name)


@dataclass(frozen=True)
class FuncRef(Operand):
    """A function used as a value (stored in dispatch tables)."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"
