"""AST -> IR lowering.

Lowering choices that matter to the analyses:

* Conditions of ``if``/``while``/``for``/ternary are lowered with
  branch-style short-circuiting so every source comparison survives as
  a `Branch` with `CompareInfo` (range and control-dep inference read
  these, like SPEX reads LLVM ``icmp``+``br`` pairs).
* Named-variable loads/stores are explicit instructions, giving the
  taint engine a def-use event per access.
* Field accesses keep *paths* rooted at named variables when possible
  (field sensitivity); pointer-mediated stores stay opaque - SPEX has
  no alias analysis (§4.3) and neither do we, by design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import types as ct
from repro.lang.ast_nodes import (
    Assign as AstAssign,
    Binary,
    Block,
    BoolLiteral,
    Break,
    Call as AstCall,
    CallIndirect as AstCallIndirect,
    Cast as AstCast,
    CharLiteral,
    Conditional,
    Continue,
    DoWhile,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    FunctionDef,
    Identifier,
    If,
    IncDec,
    Index,
    InitList,
    IntLiteral,
    Member,
    NullLiteral,
    Return,
    SizeOf,
    Stmt,
    StringLiteral,
    Switch,
    Unary,
    VarDecl,
    While,
)
from repro.lang.program import Program
from repro.lang.source import UNKNOWN_LOCATION, Location
from repro.ir.function import BasicBlock, IRFunction, IRModule
from repro.ir.instructions import (
    AddrOf,
    Assign,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Cast,
    CompareInfo,
    Jump,
    LoadDeref,
    LoadField,
    LoadIndex,
    Ret,
    StoreDeref,
    StoreField,
    StoreIndex,
    SwitchInst,
    UnOp,
)
from repro.ir.values import Const, FuncRef, Operand, Temp, Variable


@dataclass
class _VarPlace:
    var: Variable


@dataclass
class _FieldPlace:
    base: Operand  # Variable (named root) or Temp (computed pointer)
    path: tuple[str, ...]


@dataclass
class _IndexPlace:
    base: Operand
    index: Operand


@dataclass
class _DerefPlace:
    ptr: Operand


class FunctionBuilder:
    """Lowers one FunctionDef into an IRFunction."""

    def __init__(self, program: Program, module: IRModule, fn: FunctionDef):
        self.program = program
        self.module = module
        self.fn = fn
        self.ir = IRFunction(
            name=fn.name,
            return_type=fn.return_type,
            params=[],
            location=fn.location,
        )
        self.temp_counter = 0
        self.block_counter = 0
        self.synth_counter = 0
        self.scopes: list[dict[str, Variable]] = [{}]
        self.loop_stack: list[tuple[str, str]] = []  # (continue, break)
        self.current: BasicBlock = self._new_block("entry")

        for i, param in enumerate(fn.params):
            var = Variable(param.name, fn.name, "param", param.type, i)
            self.ir.params.append(var)
            self.scopes[0][param.name] = var
            self.ir.locals[param.name] = var

    # -- plumbing ----------------------------------------------------------

    def _new_block(self, hint: str) -> BasicBlock:
        label = hint if hint == "entry" else f"{hint}.{self.block_counter}"
        self.block_counter += 1
        block = BasicBlock(label)
        self.ir.blocks[label] = block
        return block

    def _switch_to(self, block: BasicBlock) -> None:
        self.current = block

    def _emit(self, inst) -> None:
        if not self.current.terminated:
            self.current.append(inst)

    def _temp(self) -> Temp:
        self.temp_counter += 1
        return Temp(self.temp_counter, self.fn.name)

    def _declare_local(self, name: str, typ: ct.CType, kind: str = "local") -> Variable:
        unique = name
        n = 1
        while unique in self.ir.locals:
            unique = f"{name}.{n}"
            n += 1
        var = Variable(unique, self.fn.name, kind, typ)
        self.scopes[-1][name] = var
        self.ir.locals[unique] = var
        return var

    def _synthetic(self, hint: str, typ: ct.CType | None = None) -> Variable:
        self.synth_counter += 1
        name = f".{hint}{self.synth_counter}"
        var = Variable(name, self.fn.name, "local", typ)
        self.ir.locals[name] = var
        return var

    def _lookup(self, name: str) -> Variable | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.module.globals.get(name)

    # -- entry ----------------------------------------------------------------

    def build(self) -> IRFunction:
        from repro.ir.instructions import Unreachable

        assert self.fn.body is not None
        self._lower_block(self.fn.body)
        # Fallthrough off the end of the body returns void; blocks named
        # dead.* only exist to absorb code after return/break/continue.
        if not self.current.terminated and not self.current.label.startswith("dead"):
            self._emit(Ret(None, self.fn.location))
        # Terminate any leftover dead blocks so CFG algorithms see a
        # well-formed graph.
        for block in self.ir.blocks.values():
            if not block.terminated:
                block.append(Unreachable(self.fn.location))
        return self.ir

    # -- statements -------------------------------------------------------------

    def _lower_block(self, block: Block) -> None:
        self.scopes.append({})
        for stmt in block.statements:
            self._lower_stmt(stmt)
        self.scopes.pop()

    def _lower_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, VarDecl):
            kind = "static" if stmt.is_static else "local"
            var = self._declare_local(stmt.name, stmt.type, kind)
            if stmt.init is not None and not isinstance(stmt.init, InitList):
                value = self._lower_expr(stmt.init)
                self._emit(Assign(var, value, stmt.location))
            elif isinstance(stmt.init, InitList):
                for i, item in enumerate(stmt.init.items):
                    value = self._lower_expr(item)
                    self._emit(
                        StoreIndex(var, Const(i), value, stmt.location)
                    )
        elif isinstance(stmt, Block):
            self._lower_block(stmt)
        elif isinstance(stmt, If):
            self._lower_if(stmt)
        elif isinstance(stmt, While):
            self._lower_while(stmt)
        elif isinstance(stmt, DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, For):
            self._lower_for(stmt)
        elif isinstance(stmt, Switch):
            self._lower_switch(stmt)
        elif isinstance(stmt, Break):
            if self.loop_stack:
                self._emit(Jump(self.loop_stack[-1][1], stmt.location))
            self._switch_to(self._new_block("dead"))
        elif isinstance(stmt, Continue):
            if self.loop_stack:
                self._emit(Jump(self.loop_stack[-1][0], stmt.location))
            self._switch_to(self._new_block("dead"))
        elif isinstance(stmt, Return):
            value = self._lower_expr(stmt.value) if stmt.value is not None else None
            self._emit(Ret(value, stmt.location))
            self._switch_to(self._new_block("dead"))
        else:
            raise TypeError(f"unhandled statement {type(stmt).__name__}")

    def _lower_if(self, stmt: If) -> None:
        then_bb = self._new_block("if.then")
        merge_bb = self._new_block("if.end")
        else_bb = self._new_block("if.else") if stmt.other is not None else merge_bb
        self._lower_cond(stmt.cond, then_bb.label, else_bb.label)
        self._switch_to(then_bb)
        self._lower_stmt(stmt.then)
        self._emit(Jump(merge_bb.label, stmt.location))
        if stmt.other is not None:
            self._switch_to(else_bb)
            self._lower_stmt(stmt.other)
            self._emit(Jump(merge_bb.label, stmt.location))
        self._switch_to(merge_bb)

    def _lower_while(self, stmt: While) -> None:
        header = self._new_block("while.cond")
        body = self._new_block("while.body")
        exit_bb = self._new_block("while.end")
        self._emit(Jump(header.label, stmt.location))
        self._switch_to(header)
        self._lower_cond(stmt.cond, body.label, exit_bb.label)
        self.loop_stack.append((header.label, exit_bb.label))
        self._switch_to(body)
        self._lower_stmt(stmt.body)
        self._emit(Jump(header.label, stmt.location))
        self.loop_stack.pop()
        self._switch_to(exit_bb)

    def _lower_do_while(self, stmt: DoWhile) -> None:
        body = self._new_block("do.body")
        header = self._new_block("do.cond")
        exit_bb = self._new_block("do.end")
        self._emit(Jump(body.label, stmt.location))
        self.loop_stack.append((header.label, exit_bb.label))
        self._switch_to(body)
        self._lower_stmt(stmt.body)
        self._emit(Jump(header.label, stmt.location))
        self.loop_stack.pop()
        self._switch_to(header)
        self._lower_cond(stmt.cond, body.label, exit_bb.label)
        self._switch_to(exit_bb)

    def _lower_for(self, stmt: For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self._new_block("for.cond")
        body = self._new_block("for.body")
        step = self._new_block("for.step")
        exit_bb = self._new_block("for.end")
        self._emit(Jump(header.label, stmt.location))
        self._switch_to(header)
        if stmt.cond is not None:
            self._lower_cond(stmt.cond, body.label, exit_bb.label)
        else:
            self._emit(Jump(body.label, stmt.location))
        self.loop_stack.append((step.label, exit_bb.label))
        self._switch_to(body)
        self._lower_stmt(stmt.body)
        self._emit(Jump(step.label, stmt.location))
        self.loop_stack.pop()
        self._switch_to(step)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self._emit(Jump(header.label, stmt.location))
        self._switch_to(exit_bb)
        self.scopes.pop()

    def _lower_switch(self, stmt: Switch) -> None:
        subject = self._lower_expr(stmt.subject)
        exit_bb = self._new_block("switch.end")
        case_blocks: list[BasicBlock] = []
        for i, _case in enumerate(stmt.cases):
            case_blocks.append(self._new_block(f"case{i}"))
        cases: list[tuple[Const, str]] = []
        default_label: str | None = None
        for case, block in zip(stmt.cases, case_blocks):
            if case.value is None:
                default_label = block.label
            else:
                value = case.value
                const = (
                    Const(value.value)
                    if isinstance(value, (IntLiteral, StringLiteral))
                    else Const(0)
                )
                cases.append((const, block.label))
        self._emit(
            SwitchInst(
                subject,
                cases,
                default_label if default_label is not None else exit_bb.label,
                stmt.location,
            )
        )
        self.loop_stack.append((exit_bb.label, exit_bb.label))
        for i, (case, block) in enumerate(zip(stmt.cases, case_blocks)):
            self._switch_to(block)
            for inner in case.body:
                self._lower_stmt(inner)
            # Fallthrough into the next case body, or the exit.
            next_label = (
                case_blocks[i + 1].label if i + 1 < len(case_blocks) else exit_bb.label
            )
            self._emit(Jump(next_label, case.location))
        self.loop_stack.pop()
        self._switch_to(exit_bb)

    # -- conditions --------------------------------------------------------

    def _lower_cond(self, expr: Expr, true_label: str, false_label: str) -> None:
        if isinstance(expr, Binary) and expr.op == "&&":
            mid = self._new_block("land")
            self._lower_cond(expr.left, mid.label, false_label)
            self._switch_to(mid)
            self._lower_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, Binary) and expr.op == "||":
            mid = self._new_block("lor")
            self._lower_cond(expr.left, true_label, mid.label)
            self._switch_to(mid)
            self._lower_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, Unary) and expr.op == "!":
            self._lower_cond(expr.operand, false_label, true_label)
            return
        if isinstance(expr, Binary) and expr.op in ("<", ">", "<=", ">=", "==", "!="):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            temp = self._temp()
            self._emit(BinOp(temp, expr.op, left, right, expr.location))
            self._emit(
                Branch(
                    temp,
                    true_label,
                    false_label,
                    expr.location,
                    cond_info=CompareInfo(expr.op, left, right),
                )
            )
            return
        operand = self._lower_expr(expr)
        self._emit(
            Branch(
                operand,
                true_label,
                false_label,
                expr.location,
                cond_info=CompareInfo("!=", operand, Const(0)),
            )
        )

    # -- expressions --------------------------------------------------------

    def _lower_expr(self, expr: Expr) -> Operand:
        if isinstance(expr, IntLiteral):
            return Const(expr.value)
        if isinstance(expr, FloatLiteral):
            return Const(expr.value)
        if isinstance(expr, StringLiteral):
            return Const(expr.value)
        if isinstance(expr, CharLiteral):
            return Const(expr.value)
        if isinstance(expr, BoolLiteral):
            return Const(1 if expr.value else 0)
        if isinstance(expr, NullLiteral):
            return Const(None)
        if isinstance(expr, SizeOf):
            return Const(8)
        if isinstance(expr, Identifier):
            var = self._lookup(expr.name)
            if var is not None:
                temp = self._temp()
                self._emit(Assign(temp, var, expr.location))
                return temp
            return FuncRef(expr.name)
        if isinstance(expr, Unary):
            return self._lower_unary(expr)
        if isinstance(expr, IncDec):
            return self._lower_incdec(expr)
        if isinstance(expr, Binary):
            return self._lower_binary(expr)
        if isinstance(expr, Conditional):
            return self._lower_ternary(expr)
        if isinstance(expr, AstAssign):
            return self._lower_assign(expr)
        if isinstance(expr, AstCall):
            args = [self._lower_expr(a) for a in expr.args]
            dest = self._temp()
            self._emit(Call(dest, expr.callee, args, expr.location))
            return dest
        if isinstance(expr, AstCallIndirect):
            func = self._lower_expr(expr.func)
            args = [self._lower_expr(a) for a in expr.args]
            dest = self._temp()
            self._emit(CallIndirect(dest, func, args, expr.location))
            return dest
        if isinstance(expr, AstCast):
            src = self._lower_expr(expr.operand)
            dest = self._temp()
            self._emit(Cast(dest, expr.type, src, expr.location))
            return dest
        if isinstance(expr, Member):
            return self._load_place(self._lower_place(expr), expr.location)
        if isinstance(expr, Index):
            return self._load_place(self._lower_place(expr), expr.location)
        if isinstance(expr, InitList):
            for item in expr.items:
                self._lower_expr(item)
            return Const(None)
        raise TypeError(f"unhandled expression {type(expr).__name__}")

    def _lower_unary(self, expr: Unary) -> Operand:
        if expr.op == "&":
            place = self._lower_place(expr.operand)
            dest = self._temp()
            if isinstance(place, _VarPlace):
                self._emit(AddrOf(dest, place.var, (), expr.location))
            elif isinstance(place, _FieldPlace) and isinstance(place.base, Variable):
                self._emit(AddrOf(dest, place.base, place.path, expr.location))
            else:
                # Address of a computed place: opaque to analysis.
                operand = self._load_place(place, expr.location)
                self._emit(UnOp(dest, "&", operand, expr.location))
            return dest
        if expr.op == "*":
            ptr = self._lower_expr(expr.operand)
            dest = self._temp()
            self._emit(LoadDeref(dest, ptr, expr.location))
            return dest
        operand = self._lower_expr(expr.operand)
        dest = self._temp()
        self._emit(UnOp(dest, expr.op, operand, expr.location))
        return dest

    def _lower_incdec(self, expr: IncDec) -> Operand:
        place = self._lower_place(expr.operand)
        old = self._load_place(place, expr.location)
        new = self._temp()
        op = "+" if expr.op == "++" else "-"
        self._emit(BinOp(new, op, old, Const(1), expr.location))
        self._store_place(place, new, expr.location)
        return new if expr.prefix else old

    def _lower_binary(self, expr: Binary) -> Operand:
        # Value-context && / || lower through control flow so the
        # comparisons stay visible as branches.
        if expr.op in ("&&", "||"):
            result = self._synthetic("bool", ct.INT)
            true_bb = self._new_block("val.true")
            false_bb = self._new_block("val.false")
            merge = self._new_block("val.end")
            self._lower_cond(expr, true_bb.label, false_bb.label)
            self._switch_to(true_bb)
            self._emit(Assign(result, Const(1), expr.location))
            self._emit(Jump(merge.label, expr.location))
            self._switch_to(false_bb)
            self._emit(Assign(result, Const(0), expr.location))
            self._emit(Jump(merge.label, expr.location))
            self._switch_to(merge)
            dest = self._temp()
            self._emit(Assign(dest, result, expr.location))
            return dest
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        dest = self._temp()
        self._emit(BinOp(dest, expr.op, left, right, expr.location))
        return dest

    def _lower_ternary(self, expr: Conditional) -> Operand:
        result = self._synthetic("sel")
        then_bb = self._new_block("sel.then")
        else_bb = self._new_block("sel.else")
        merge = self._new_block("sel.end")
        self._lower_cond(expr.cond, then_bb.label, else_bb.label)
        self._switch_to(then_bb)
        value = self._lower_expr(expr.then)
        self._emit(Assign(result, value, expr.location))
        self._emit(Jump(merge.label, expr.location))
        self._switch_to(else_bb)
        value = self._lower_expr(expr.other)
        self._emit(Assign(result, value, expr.location))
        self._emit(Jump(merge.label, expr.location))
        self._switch_to(merge)
        dest = self._temp()
        self._emit(Assign(dest, result, expr.location))
        return dest

    def _lower_assign(self, expr: AstAssign) -> Operand:
        place = self._lower_place(expr.target)
        value = self._lower_expr(expr.value)
        if expr.op != "=":
            current = self._load_place(place, expr.location)
            combined = self._temp()
            self._emit(
                BinOp(combined, expr.op[:-1], current, value, expr.location)
            )
            value = combined
        self._store_place(place, value, expr.location)
        return value

    # -- places ------------------------------------------------------------

    def _lower_place(self, expr: Expr):
        if isinstance(expr, Identifier):
            var = self._lookup(expr.name)
            if var is None:
                var = self._declare_local(expr.name, None)
            return _VarPlace(var)
        if isinstance(expr, Member):
            base = expr.base
            path = [expr.field_name]
            while isinstance(base, Member):
                path.append(base.field_name)
                base = base.base
            path.reverse()
            if isinstance(base, Identifier):
                var = self._lookup(base.name)
                if var is not None:
                    return _FieldPlace(var, tuple(path))
            base_op = self._lower_expr(base)
            return _FieldPlace(base_op, tuple(path))
        if isinstance(expr, Index):
            base_op = self._lower_expr(expr.base)
            index_op = self._lower_expr(expr.index)
            return _IndexPlace(base_op, index_op)
        if isinstance(expr, Unary) and expr.op == "*":
            ptr = self._lower_expr(expr.operand)
            return _DerefPlace(ptr)
        # Fallback: evaluate and treat as opaque deref target.
        ptr = self._lower_expr(expr)
        return _DerefPlace(ptr)

    def _load_place(self, place, location: Location) -> Operand:
        dest = self._temp()
        if isinstance(place, _VarPlace):
            self._emit(Assign(dest, place.var, location))
        elif isinstance(place, _FieldPlace):
            self._emit(LoadField(dest, place.base, place.path, location))
        elif isinstance(place, _IndexPlace):
            self._emit(LoadIndex(dest, place.base, place.index, location))
        elif isinstance(place, _DerefPlace):
            self._emit(LoadDeref(dest, place.ptr, location))
        else:
            raise TypeError(f"unhandled place {place!r}")
        return dest

    def _store_place(self, place, value: Operand, location: Location) -> None:
        if isinstance(place, _VarPlace):
            self._emit(Assign(place.var, value, location))
        elif isinstance(place, _FieldPlace):
            self._emit(StoreField(place.base, place.path, value, location))
        elif isinstance(place, _IndexPlace):
            self._emit(StoreIndex(place.base, place.index, value, location))
        elif isinstance(place, _DerefPlace):
            self._emit(StoreDeref(place.ptr, value, location))
        else:
            raise TypeError(f"unhandled place {place!r}")


def build_ir(program: Program) -> IRModule:
    """Lower a linked program into an IR module."""
    module = IRModule(name=program.name)
    module.structs = dict(program.structs)
    for name, decl in program.globals.items():
        module.globals[name] = Variable(name, "global", "global", decl.type)
        if decl.init is not None:
            module.global_inits[name] = decl.init
    for name, fn in program.functions.items():
        if fn.body is None:
            continue
        builder = FunctionBuilder(program, module, fn)
        module.functions[name] = builder.build()
    return module
