"""Direct-call graph over an IR module."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import IRModule
from repro.ir.instructions import Call
from repro.lang.source import Location


@dataclass(frozen=True)
class CallSite:
    caller: str
    callee: str
    block: str
    location: Location


@dataclass
class CallGraph:
    module: IRModule
    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)
    sites: list[CallSite] = field(default_factory=list)

    @classmethod
    def build(cls, module: IRModule) -> "CallGraph":
        graph = cls(module)
        for fn in module.functions.values():
            graph.callees.setdefault(fn.name, set())
            for block in fn.blocks.values():
                for inst in block.instructions:
                    if isinstance(inst, Call):
                        graph.callees[fn.name].add(inst.callee)
                        graph.callers.setdefault(inst.callee, set()).add(fn.name)
                        graph.sites.append(
                            CallSite(fn.name, inst.callee, block.label, inst.location)
                        )
        return graph

    def call_sites_of(self, callee: str) -> list[CallSite]:
        return [s for s in self.sites if s.callee == callee]

    def calls_from(self, caller: str) -> set[str]:
        return self.callees.get(caller, set())

    def is_reachable(self, src: str, dst: str, max_depth: int = 32) -> bool:
        """Is `dst` transitively callable from `src`?"""
        seen = set()
        stack = [(src, 0)]
        while stack:
            node, depth = stack.pop()
            if node == dst:
                return True
            if node in seen or depth >= max_depth:
                continue
            seen.add(node)
            for nxt in self.callees.get(node, ()):
                stack.append((nxt, depth + 1))
        return False
