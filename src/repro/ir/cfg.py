"""CFG analyses: reachability, dominators, postdominators, control
dependence.

Control dependence is the backbone of two SPEX passes: range-validity
(what happens *inside* the guarded region - exit/abort/reset?) and
control-dependency constraints ((P,V,⋄) -> Q).  Implemented with the
classic Ferrante-Ottenstein-Warren construction on the postdominator
tree of the reversed CFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import BasicBlock, IRFunction
from repro.ir.instructions import Branch, SwitchInst

_VIRTUAL_EXIT = "__exit__"


def reachable_blocks(fn: IRFunction) -> list[str]:
    """Labels reachable from entry, in DFS order."""
    seen: list[str] = []
    seen_set: set[str] = set()
    stack = [fn.entry_label]
    while stack:
        label = stack.pop()
        if label in seen_set:
            continue
        seen_set.add(label)
        seen.append(label)
        for succ in reversed(fn.blocks[label].successors()):
            stack.append(succ)
    return seen


def compute_dominators(fn: IRFunction) -> dict[str, set[str]]:
    """dom[b] = set of blocks dominating b (including b)."""
    blocks = reachable_blocks(fn)
    preds = fn.predecessors()
    all_blocks = set(blocks)
    dom: dict[str, set[str]] = {b: set(all_blocks) for b in blocks}
    dom[fn.entry_label] = {fn.entry_label}
    changed = True
    while changed:
        changed = False
        for b in blocks:
            if b == fn.entry_label:
                continue
            real_preds = [p for p in preds[b] if p in all_blocks]
            if real_preds:
                new = set.intersection(*(dom[p] for p in real_preds))
            else:
                new = set()
            new.add(b)
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


def immediate_dominators(fn: IRFunction) -> dict[str, str | None]:
    dom = compute_dominators(fn)
    idom: dict[str, str | None] = {}
    for b, dominators in dom.items():
        strict = dominators - {b}
        idom[b] = None
        # The immediate dominator is the strict dominator dominated by
        # all other strict dominators.
        for cand in strict:
            if all(cand in dom[other] or other == cand for other in strict):
                idom[b] = cand
                break
    return idom


def compute_postdominators(fn: IRFunction) -> dict[str, set[str]]:
    """pdom[b] over the reversed CFG with a virtual unified exit."""
    blocks = reachable_blocks(fn)
    block_set = set(blocks)
    succs: dict[str, list[str]] = {}
    for label in blocks:
        succs[label] = [s for s in fn.blocks[label].successors() if s in block_set]
    # Exit nodes: no successors (ret/unreachable) -> virtual exit.
    rev_preds: dict[str, list[str]] = {b: [] for b in blocks}
    rev_preds[_VIRTUAL_EXIT] = []
    for label in blocks:
        if not succs[label]:
            rev_preds[_VIRTUAL_EXIT].append(label)
    # Postdominance = dominance on reverse edges from virtual exit.
    all_nodes = blocks + [_VIRTUAL_EXIT]
    pdom: dict[str, set[str]] = {b: set(all_nodes) for b in all_nodes}
    pdom[_VIRTUAL_EXIT] = {_VIRTUAL_EXIT}
    # successors in the reverse graph = predecessors in the forward graph
    fwd_preds = {b: [] for b in all_nodes}
    for label in blocks:
        for s in succs[label]:
            fwd_preds[s].append(label)

    def reverse_preds(node: str) -> list[str]:
        """Predecessors of `node` in the reversed CFG = fwd successors."""
        if node == _VIRTUAL_EXIT:
            return rev_preds[_VIRTUAL_EXIT]
        out = list(succs[node])
        return out

    changed = True
    while changed:
        changed = False
        for b in blocks:
            rp = reverse_preds(b)
            if rp:
                new = set.intersection(*(pdom[p] for p in rp))
            else:
                new = set()
            new.add(b)
            if new != pdom[b]:
                pdom[b] = new
                changed = True
    for b in pdom:
        pdom[b].discard(_VIRTUAL_EXIT)
    return pdom


@dataclass(frozen=True)
class ControlDep:
    """Block `dependent` executes only when `branch_block` takes
    `edge_label` (a successor label of the branch)."""

    branch_block: str
    edge_label: str


def compute_control_dependence(fn: IRFunction) -> dict[str, set[ControlDep]]:
    """For each block, the set of controlling (branch, edge) pairs.

    Edge (A -> B): every block on the postdominator-tree path from B up
    to but excluding ipdom(A) is control-dependent on A via that edge.
    """
    blocks = reachable_blocks(fn)
    block_set = set(blocks)
    pdom = compute_postdominators(fn)
    result: dict[str, set[ControlDep]] = {b: set() for b in blocks}

    for a in blocks:
        term = fn.blocks[a].terminator
        if not isinstance(term, (Branch, SwitchInst)):
            continue
        for b in fn.blocks[a].successors():
            if b not in block_set:
                continue
            if b in pdom[a]:
                continue  # b postdominates a: taking this edge decides nothing
            # All nodes that postdominate b but do not strictly
            # postdominate a are control-dependent on edge (a, b); this
            # includes a itself for loop back-edges.
            for node in blocks:
                if node in _pdoms_of(pdom, b) and node not in _strict_pdoms_of(pdom, a):
                    result[node].add(ControlDep(a, b))
    return result


def _pdoms_of(pdom: dict[str, set[str]], b: str) -> set[str]:
    return pdom.get(b, set())


def _strict_pdoms_of(pdom: dict[str, set[str]], a: str) -> set[str]:
    return pdom.get(a, set()) - {a}


def blocks_controlled_by_edge(
    fn: IRFunction, branch_block: str, edge_label: str
) -> set[str]:
    """All blocks that execute only when `branch_block` takes the edge."""
    cdeps = compute_control_dependence(fn)
    return {
        label
        for label, deps in cdeps.items()
        if ControlDep(branch_block, edge_label) in deps
    }


@dataclass
class CfgInfo:
    """Memoized CFG facts for one function."""

    fn: IRFunction
    dominators: dict[str, set[str]] = field(default_factory=dict)
    postdominators: dict[str, set[str]] = field(default_factory=dict)
    control_deps: dict[str, set[ControlDep]] = field(default_factory=dict)

    @classmethod
    def for_function(cls, fn: IRFunction) -> "CfgInfo":
        return cls(
            fn=fn,
            dominators=compute_dominators(fn),
            postdominators=compute_postdominators(fn),
            control_deps=compute_control_dependence(fn),
        )

    def controlled_by(self, branch_block: str, edge_label: str) -> set[str]:
        dep = ControlDep(branch_block, edge_label)
        return {
            label for label, deps in self.control_deps.items() if dep in deps
        }

    def region_of_edge(self, branch_block: str, edge_label: str) -> set[str]:
        """Transitive closure of `controlled_by`: every block that can
        only execute when the edge was taken, through any further
        nesting.  (FOW control dependence is immediate-level only.)"""
        region = self.controlled_by(branch_block, edge_label)
        changed = True
        while changed:
            changed = False
            for label, deps in self.control_deps.items():
                if label in region:
                    continue
                if any(d.branch_block in region for d in deps):
                    region.add(label)
                    changed = True
        return region

    def controlling_branches(self, label: str) -> set[ControlDep]:
        return self.control_deps.get(label, set())

    def transitive_controlling(self, label: str) -> set[ControlDep]:
        """All branches controlling `label`, through any nesting depth
        (FOW control dependence is immediate-level only; a usage three
        ifs deep is guarded by all three conditions)."""
        out: set[ControlDep] = set()
        frontier = [label]
        seen_blocks: set[str] = set()
        while frontier:
            block = frontier.pop()
            if block in seen_blocks:
                continue
            seen_blocks.add(block)
            for dep in self.control_deps.get(block, set()):
                if dep not in out:
                    out.add(dep)
                    frontier.append(dep.branch_block)
        return out
