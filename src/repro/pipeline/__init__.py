"""Parallel batched campaign pipeline with inference caching.

The paper's evaluation (Table 5) sweeps injection campaigns over
seven subject systems; this package turns that sweep into a
first-class workload: campaigns fan out across a pluggable executor,
SPEX inference results are cached by content hash so re-runs and
ablation sweeps skip re-inference, and whole campaign reports are
reused when nothing they depend on changed.

Layering: `repro.pipeline` sits above `repro.inject` (the single-
system primitive) and `repro.systems` (the registry), and below
`repro.reporting` (which renders the aggregate report and exposes the
`pipeline` CLI command).
"""

from repro.pipeline.cache import (
    CacheStats,
    ContentCache,
    InferenceCache,
    LaunchCache,
    PipelineCaches,
    campaign_fingerprint,
    checker_fingerprint,
    launch_fingerprint,
    spex_fingerprint,
)
from repro.pipeline.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_names,
    resolve_executor,
)
from repro.pipeline.runner import (
    CampaignPipeline,
    PipelineReport,
    SystemRun,
    run_pipeline,
)

__all__ = [
    "CacheStats",
    "CampaignPipeline",
    "ContentCache",
    "Executor",
    "InferenceCache",
    "LaunchCache",
    "PipelineCaches",
    "PipelineReport",
    "ProcessExecutor",
    "SerialExecutor",
    "SystemRun",
    "ThreadExecutor",
    "campaign_fingerprint",
    "checker_fingerprint",
    "executor_names",
    "launch_fingerprint",
    "resolve_executor",
    "run_pipeline",
    "spex_fingerprint",
]
