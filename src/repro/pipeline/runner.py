"""The campaign pipeline: batched multi-system sweeps with caching.

`CampaignPipeline` is the throughput layer over the per-system
`repro.inject.Campaign` primitive.  One pipeline run:

1. enumerates target systems through the registry's bulk API;
2. serves whole campaigns from the campaign cache when the content
   fingerprint (sources + annotations + options + generation rules)
   is unchanged;
3. fans the remaining campaigns out over a pluggable executor
   (serial / thread / process), and optionally shards each campaign's
   own injection batches over a second, inner executor
   (`batch_executor`);
4. shares one `InferenceCache` so ablation sweeps over harness or
   generator settings never re-run SPEX inference for an unchanged
   program, and one `LaunchCache` so identical interpreter launches
   (same system, rendered config, requests, interpreter options) run
   once across campaigns and re-runs.

Usage::

    from repro.pipeline import CampaignPipeline

    pipeline = CampaignPipeline(executor="process")
    report = pipeline.run()              # cold: infer + inject everything
    again = pipeline.run()               # warm: served from the caches
    report.total_vulnerabilities()
    report.vulnerability_sets()          # identical across executors
"""

from __future__ import annotations

import dataclasses
import pickle
import time
from dataclasses import dataclass, field

from repro.core import SpexOptions
from repro.inject.campaign import (
    Campaign,
    CampaignReport,
    Vulnerability,
    slim_verdicts,
)
from repro.inject.generators import GeneratorRegistry, default_generators
from repro.inject.reactions import ReactionCategory
from repro.obs import get_registry, metrics_delta, span
from repro.pipeline.cache import (
    LaunchCache,
    PipelineCaches,
    SnapshotCache,
    campaign_fingerprint,
)
from repro.pipeline.executor import (
    Executor,
    ProcessExecutor,
    ThreadExecutor,
    _chaos_call,
    resolve_executor,
)
from repro.resilience import CheckpointStore, FailedShard, RetryPolicy
from repro.systems.registry import get_system, iter_systems, system_names


@dataclass
class SystemRun:
    """One system's slot in a pipeline run."""

    name: str
    report: CampaignReport
    duration: float  # seconds spent producing the report; 0 if cached
    from_cache: bool = False
    from_checkpoint: bool = False  # restored from a resumable-run store


@dataclass
class PipelineReport:
    """Aggregate outcome of one pipeline run."""

    runs: list[SystemRun]
    executor: str
    wall_time: float
    cache_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    # Campaigns that exhausted their retry budget under a RetryPolicy;
    # a degraded run reports them instead of aborting (their systems
    # are simply absent from `runs`).
    failed_shards: list[FailedShard] = field(default_factory=list)

    def report_for(self, name: str) -> CampaignReport:
        for run in self.runs:
            if run.name == name:
                return run.report
        raise KeyError(name)

    def total_misconfigurations(self) -> int:
        return sum(r.report.misconfigurations_tested for r in self.runs)

    def total_vulnerabilities(self) -> int:
        return sum(r.report.total() for r in self.runs)

    def counts_by_category(self) -> dict[ReactionCategory, int]:
        counts: dict[ReactionCategory, int] = {}
        for run in self.runs:
            for category, n in run.report.counts_by_category().items():
                counts[category] = counts.get(category, 0) + n
        return counts

    def vulnerability_sets(self) -> dict[str, frozenset[Vulnerability]]:
        """Per-system vulnerability sets - executor parity's currency:
        every executor must produce exactly these sets."""
        return {
            run.name: frozenset(run.report.vulnerabilities)
            for run in self.runs
        }

    def cached_count(self) -> int:
        return sum(1 for run in self.runs if run.from_cache)

    def summary_dict(self) -> dict:
        """JSON-able aggregate (for manifests and the CLI footer)."""
        return {
            "executor": self.executor,
            "wall_time": self.wall_time,
            "systems": [
                {
                    "name": run.name,
                    "misconfigurations_tested": (
                        run.report.misconfigurations_tested
                    ),
                    "vulnerabilities": run.report.total(),
                    "duration": run.duration,
                    "from_cache": run.from_cache,
                    "from_checkpoint": run.from_checkpoint,
                }
                for run in self.runs
            ],
            "cache_stats": self.cache_stats,
            "failed_shards": [
                shard.summary_dict() for shard in self.failed_shards
            ],
        }


def _save_campaign_checkpoint(
    ckpt_spec: tuple[str, str, str] | None, report: CampaignReport
) -> None:
    """Persist one finished (slimmed) campaign report, keyed by the
    campaign fingerprint within the sweep's run key.  Runs inside the
    task (worker or inline), so completed campaigns survive a mid-run
    kill of the sweep."""
    if ckpt_spec is None:
        return
    root, run_key, shard_key = ckpt_spec
    CheckpointStore(root).save(run_key, shard_key, pickle.dumps(report))
    get_registry().inc("resilience.checkpoint_saves")


def _run_campaign_by_name(
    task: tuple[
        str,
        SpexOptions,
        str,
        int | None,
        str | None,
        tuple[str, str, str] | None,
    ]
):
    """Process-pool entry point: rebuild the system in the worker (the
    task crosses a pickle boundary, the `SubjectSystem` does not)."""
    name, spex_options, batch_executor, max_workers, engine, ckpt_spec = task
    started = time.perf_counter()
    # Worker processes never nest another process pool: batch-level
    # "process" sharding degrades to serial inside a system-level
    # process worker (the cores are already busy with sibling systems).
    if batch_executor == "process":
        batch_executor = "serial"
    launch_cache = LaunchCache()
    snapshot_cache = SnapshotCache()
    obs_before = get_registry().snapshot()
    campaign = Campaign(
        get_system(name),
        spex_options=spex_options,
        executor=batch_executor,
        max_workers=max_workers,
        launch_cache=launch_cache,
        snapshot_cache=snapshot_cache,
        engine=engine,
    )
    report = campaign.run()
    slim_verdicts(report.verdicts)
    _save_campaign_checkpoint(ckpt_spec, report)
    return (
        name,
        report,
        time.perf_counter() - started,
        launch_cache.stats.snapshot(),
        snapshot_cache.boot_stats.snapshot(),
        metrics_delta(obs_before, get_registry().snapshot()),
    )


@dataclass
class CampaignPipeline:
    """Fan injection campaigns out across systems, with caching.

    `systems` limits the sweep (None = every registered system);
    `executor` is a name ("serial", "thread", "process") or an
    `Executor` instance; `caches` may be shared between pipelines so
    e.g. a parity re-run under a different executor still reuses
    inference results.  `reuse_campaigns=False` disables the
    whole-campaign cache (inference stays cached) - ablation sweeps
    that vary harness behaviour want exactly that.
    """

    systems: list[str] | None = None
    spex_options: SpexOptions = field(default_factory=SpexOptions)
    generators: GeneratorRegistry = field(default_factory=default_generators)
    executor: str | Executor = "serial"
    max_workers: int | None = None
    caches: PipelineCaches = field(default_factory=PipelineCaches)
    reuse_campaigns: bool = True
    # How each campaign shards its own injection batches (None keeps
    # the in-campaign loop serial).  A "process" batch executor
    # degrades to serial inside system-level process workers (pools
    # never nest) and under a thread system executor (forking from a
    # multithreaded parent is unsafe).
    batch_executor: str | Executor | None = None
    # Launch-engine override for every campaign of the sweep ("tree" |
    # "compiled" | "codegen"); a plain string, so it survives the
    # process-executor pickle boundary.  None keeps the default.
    engine: str | None = None
    # Resilience (see docs/ROBUSTNESS.md).  `retry_policy` supervises
    # campaign tasks: worker crashes and watchdog timeouts re-enqueue
    # with backoff, exhausted campaigns quarantine into
    # `PipelineReport.failed_shards`.  `chaos` is a
    # `repro.chaos.ChaosSchedule` injecting faults into campaign tasks.
    # `checkpoint` persists every finished campaign so a killed sweep
    # resumes from its last checkpoint with bit-identical reports.
    retry_policy: RetryPolicy | None = None
    chaos: object = None
    checkpoint: CheckpointStore | None = None

    def run(
        self,
        names: list[str] | None = None,
        executor: str | Executor | None = None,
    ) -> PipelineReport:
        """Run the sweep; `names`/`executor` override the configured
        targets/strategy for this call only."""
        chosen = resolve_executor(
            self.executor if executor is None else executor, self.max_workers
        )
        if self._batch_executor_name() == "process" and not isinstance(
            chosen, ThreadExecutor
        ):
            # Fail before any campaign runs, not when the first
            # multi-batch campaign reaches its own process guard.
            # (Under a thread system executor batch-process sharding
            # degrades to serial, so nothing crosses a pickle boundary
            # and custom generators remain fine.)
            self._check_process_compatible()
        targets = names if names is not None else self.systems
        systems = list(iter_systems(targets))
        get_registry().inc("pipeline.runs")
        started = time.perf_counter()

        runs: dict[str, SystemRun] = {}
        # (system name, spex key, campaign key) for every target; the
        # run key content-addresses the sweep, so a checkpoint can only
        # resume the exact same spec.
        keyed: list[tuple[str, str, str]] = []
        for system in systems:
            spex_key = self.caches.inference.key_for(
                system, self.spex_options
            )
            campaign_key = campaign_fingerprint(
                spex_key, self.generators.roster()
            )
            keyed.append((system.name, spex_key, campaign_key))
        run_key = "pipeline|" + "|".join(
            sorted(key for _, _, key in keyed)
        )

        pending: list[tuple[str, str, str]] = []
        for name, spex_key, campaign_key in keyed:
            cached = (
                self.caches.campaigns.get(campaign_key)
                if self.reuse_campaigns
                else None
            )
            if cached is not None:
                runs[name] = SystemRun(name, cached, 0.0, from_cache=True)
                continue
            restored = self._restore_checkpoint(run_key, campaign_key)
            if restored is not None:
                if self.reuse_campaigns:
                    self.caches.campaigns.put(campaign_key, restored)
                self._warm_inference_cache(spex_key, restored)
                runs[name] = SystemRun(
                    name, restored, 0.0, from_checkpoint=True
                )
                continue
            pending.append((name, spex_key, campaign_key))

        failed_shards: list[FailedShard] = []
        if pending:
            with span(
                "pipeline.execute",
                executor=chosen.name,
                campaigns=len(pending),
            ):
                executed, failures = self._execute(chosen, pending, run_key)
            for (name, spex_key, campaign_key), entry in zip(
                pending, executed
            ):
                if entry is None:  # quarantined campaign
                    continue
                report, duration = entry
                if self.reuse_campaigns:
                    self.caches.campaigns.put(campaign_key, report)
                self._warm_inference_cache(spex_key, report)
                runs[name] = SystemRun(name, report, duration)
            # Re-anchor quarantine records on the system's name, not
            # its position in this run's pending list.
            for failure in failures:
                failed_shards.append(
                    dataclasses.replace(
                        failure, label=pending[failure.index][0]
                    )
                )

        ordered = [
            runs[system.name]
            for system in systems
            if system.name in runs
        ]
        return PipelineReport(
            runs=ordered,
            executor=chosen.name,
            wall_time=time.perf_counter() - started,
            cache_stats=self.caches.stats(),
            failed_shards=failed_shards,
        )

    # -- execution strategies ------------------------------------------------

    def _restore_checkpoint(
        self, run_key: str, campaign_key: str
    ) -> CampaignReport | None:
        """A checkpointed campaign report, or None (no store, missing
        shard, or a payload that no longer unpickles — schema drift
        between the writer's code and ours reads as a plain miss)."""
        if self.checkpoint is None:
            return None
        blob = self.checkpoint.load(run_key, campaign_key)
        if blob is None:
            return None
        try:
            report = pickle.loads(blob)
        except Exception:
            return None
        if not isinstance(report, CampaignReport):
            return None
        get_registry().inc("resilience.checkpoint_hits")
        return report

    def _execute(
        self,
        executor: Executor,
        pending: list[tuple[str, str, str]],
        run_key: str,
    ) -> tuple[list, list[FailedShard]]:
        names = [name for name, _, _ in pending]
        ckpt_root = (
            str(self.checkpoint.root) if self.checkpoint is not None else None
        )
        ckpt_specs = [
            (ckpt_root, run_key, campaign_key)
            if ckpt_root is not None
            else None
            for _, _, campaign_key in pending
        ]
        if isinstance(executor, ProcessExecutor):
            self._check_process_compatible()
            # Only names cross the pickle boundary: an Executor
            # *instance* is reduced to its strategy name and workers
            # rebuild it (with this pipeline's max_workers).
            batch_name = self._batch_executor_name()
            tasks = [
                (
                    name,
                    self.spex_options,
                    batch_name,
                    self.max_workers,
                    self.engine,
                    spec,
                )
                for name, spec in zip(names, ckpt_specs)
            ]
            raw, failures = self._dispatch(
                executor, _run_campaign_by_name, tasks, allow_kill=True
            )
            out = []
            for entry in raw:
                if entry is None:  # quarantined campaign
                    out.append(None)
                    continue
                (
                    _,
                    report,
                    duration,
                    launch_stats,
                    boot_stats,
                    obs_delta,
                ) = entry
                # Worker launch/snapshot caches die with the worker;
                # their counters still belong in the report footer.
                # Worker telemetry folds into the parent registry the
                # same way.
                self.caches.launches.absorb_stats(launch_stats)
                self.caches.snapshots.absorb_boot_stats(boot_stats)
                get_registry().absorb(obs_delta)
                out.append((report, duration))
            return out, failures
        batch_spec = self.batch_executor or "serial"
        if isinstance(executor, ThreadExecutor) and (
            batch_spec == "process" or isinstance(batch_spec, ProcessExecutor)
        ):
            # Forking a process pool from a multithreaded parent can
            # inherit mid-held locks into the children; campaigns
            # fanned out on threads shard their batches in-line.
            batch_spec = "serial"

        def task_fn(indexed):
            index, name = indexed
            report, duration = self._run_one(name, batch_spec)
            if ckpt_specs[index] is not None:
                slim_verdicts(report.verdicts)
                _save_campaign_checkpoint(ckpt_specs[index], report)
            return report, duration

        return self._dispatch(
            executor, task_fn, list(enumerate(names)), allow_kill=False
        )

    def _dispatch(
        self, executor: Executor, fn, tasks: list, allow_kill: bool
    ) -> tuple[list, list[FailedShard]]:
        """Fan campaign tasks out under the configured resilience mode:
        supervised (`retry_policy`), chaos-exposed (faults abort — the
        checkpoint store is what a resume recovers from), or plain."""
        if self.retry_policy is not None:
            supervised = executor.map_resilient(
                fn,
                tasks,
                self.retry_policy,
                chaos=self.chaos,
                label="pipeline",
            )
            return supervised.results, supervised.failures
        if self.chaos is not None:
            # ProcessExecutor.map degrades to in-parent execution for a
            # single task, where a SIGKILL would take down the sweep.
            kill_ok = allow_kill and len(tasks) > 1
            return (
                executor.map(
                    _chaos_call,
                    [
                        (
                            fn,
                            task,
                            self.chaos,
                            f"pipeline:{position}|a1",
                            kill_ok,
                        )
                        for position, task in enumerate(tasks)
                    ],
                ),
                [],
            )
        return executor.map(fn, tasks), []

    def _batch_executor_name(self) -> str:
        if self.batch_executor is None:
            return "serial"
        if isinstance(self.batch_executor, Executor):
            return self.batch_executor.name
        return self.batch_executor

    def _run_one(
        self, name: str, batch_executor: str | Executor = "serial"
    ) -> tuple[CampaignReport, float]:
        """In-process task (serial and thread executors): campaigns
        share the pipeline's inference and launch caches directly."""
        started = time.perf_counter()
        campaign = Campaign(
            get_system(name),
            generators=self.generators,
            spex_options=self.spex_options,
            inference_cache=self.caches.inference,
            executor=batch_executor,
            max_workers=self.max_workers,
            launch_cache=self.caches.launches,
            snapshot_cache=self.caches.snapshots,
            engine=self.engine,
        )
        report = campaign.run()
        return report, time.perf_counter() - started

    def _warm_inference_cache(
        self, spex_key: str, report: CampaignReport
    ) -> None:
        """Keep the parent-side inference cache warm even for results
        computed in worker processes, so a later in-process run (any
        executor) skips inference."""
        if report.spex_report is None:
            return
        if spex_key not in self.caches.inference:
            self.caches.inference.put(spex_key, report.spex_report)

    def _check_process_compatible(self) -> None:
        if self.generators.roster() != default_generators().roster():
            raise ValueError(
                "the process executor rebuilds campaigns in worker "
                "processes and cannot ship a customised generator "
                "registry; use the serial or thread executor"
            )


def run_pipeline(
    systems: list[str] | None = None,
    executor: str | Executor = "serial",
    **kwargs,
) -> PipelineReport:
    """One-shot convenience over `CampaignPipeline`."""
    return CampaignPipeline(
        systems=systems, executor=executor, **kwargs
    ).run()


__all__ = [
    "CampaignPipeline",
    "PipelineReport",
    "SystemRun",
    "run_pipeline",
    "system_names",
]
