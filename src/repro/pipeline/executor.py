"""Pluggable executors: how the pipeline fans campaign tasks out.

Three strategies cover the deployment spectrum:

* `SerialExecutor` - one task at a time, in submission order.  The
  reference semantics every other executor must match (the parity
  tests compare their `Vulnerability` sets against it).
* `ThreadExecutor` - a thread pool.  Campaign work is pure Python, so
  threads mostly help when system emulation waits on the (emulated)
  OS; it is also the cheapest way to exercise the cache's thread
  safety.
* `ProcessExecutor` - a process pool (`fork` where available).  Real
  multi-core speedup; tasks and results cross a pickle boundary, so
  process tasks are dispatched by system *name* and rebuilt in the
  worker rather than shipped as closures.

All executors preserve input order in their results, so downstream
aggregation never depends on scheduling.
"""

from __future__ import annotations

import gc
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def _default_workers() -> int:
    return max(2, min(8, (os.cpu_count() or 2)))


class Executor:
    """Strategy interface: apply `fn` to each item, results in order."""

    name = "base"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


class SerialExecutor(Executor):
    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or _default_workers()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items))


def _freeze_inherited_heap() -> None:
    """Worker initializer: move every object inherited from the parent
    (programs, caches, prior results) into the permanent generation.
    Without this, each GC collection in a worker walks the parent's
    whole heap, which can make forked campaigns slower than serial."""
    gc.freeze()


class ProcessExecutor(Executor):
    """Process-pool fan-out.  `fn` and every item/result must pickle;
    the pipeline honours this by sending system names, not systems."""

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        # Campaign work is CPU-bound: more workers than cores only adds
        # scheduling and fork overhead (unlike the thread pool, where
        # oversubscription is harmless).
        self.max_workers = max_workers or max(1, os.cpu_count() or 1)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        workers = min(self.max_workers, len(items))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_freeze_inherited_heap
        ) as pool:
            return list(pool.map(fn, items))


_EXECUTORS: dict[str, Callable[[int | None], Executor]] = {
    "serial": lambda workers: SerialExecutor(),
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def executor_names() -> Sequence[str]:
    return tuple(_EXECUTORS)


def resolve_executor(
    spec: str | Executor, max_workers: int | None = None
) -> Executor:
    """Accept either an `Executor` instance or one of the registered
    names ("serial", "thread", "process")."""
    if isinstance(spec, Executor):
        return spec
    try:
        factory = _EXECUTORS[spec]
    except KeyError:
        raise ValueError(
            f"unknown executor {spec!r}; choose from {', '.join(_EXECUTORS)}"
        ) from None
    return factory(max_workers)
